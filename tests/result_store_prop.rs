//! Property suite for the corpus service's program-hash result store.
//!
//! Two invariants carry the whole design:
//!
//! 1. **Replay ≡ recompute.** For any generated program and any
//!    mode/encoding/`MetaPath` perturbation, a warm [`CorpusService`]
//!    answering from its result store returns the byte-identical
//!    [`RunOutcome`] — full `ExecStats` and `HierarchyStats` included —
//!    that a cold service (and the direct engine path) computes.
//! 2. **Invalidation is exact.** Mutating one program invalidates exactly
//!    its keys: after `invalidate_program`, that image's cells re-execute
//!    while every other program's cells still replay, and the store drops
//!    precisely the invalidated program's entries.

use hardbound::compiler::Mode;
use hardbound::core::{Machine, MachineConfig, MetaPath, PointerEncoding, RunOutcome};
use hardbound::exec::service::Job;
use hardbound::exec::{CorpusService, Engine, ProgramId};
use hardbound::isa::{layout, FunctionBuilder, Program, Reg, Width};
use hardbound::runtime::machine_config;
use proptest::prelude::*;

/// One generated op over a small bounded working region (a compact cousin
/// of the metadata-fast-path generator: pointer spills, tag-clearing
/// integer/byte stores, loads).
#[derive(Clone, Copy, Debug)]
enum MOp {
    StoreInt(u32, u32),
    StorePtr { slot: u32, target: u32, size: u32 },
    StoreByte(u32, u8),
    LoadWord(u32),
}

const REGION_WORDS: u32 = 2 * 1024 + 1;
const REGION_BYTES: u32 = REGION_WORDS * 4;

fn op() -> impl Strategy<Value = MOp> {
    prop_oneof![
        (0u32..REGION_WORDS, any::<u32>()).prop_map(|(s, v)| MOp::StoreInt(s, v)),
        (
            0u32..REGION_WORDS,
            0u32..REGION_WORDS,
            prop_oneof![4u32..64, 4000u32..6000],
        )
            .prop_map(|(slot, target, size)| MOp::StorePtr { slot, target, size }),
        (0u32..REGION_WORDS, any::<u8>()).prop_map(|(s, v)| MOp::StoreByte(s, v)),
        (0u32..REGION_WORDS).prop_map(MOp::LoadWord),
    ]
}

fn build_program(ops: &[MOp]) -> Program {
    let mut f = FunctionBuilder::new("generated", 0);
    f.li(Reg::A0, layout::HEAP_BASE);
    f.setbound_imm(Reg::A0, Reg::A0, REGION_BYTES as i32);
    for &o in ops {
        match o {
            MOp::StoreInt(slot, v) => {
                f.li(Reg::A1, v);
                f.store(Width::Word, Reg::A1, Reg::A0, (slot * 4) as i32);
            }
            MOp::StorePtr { slot, target, size } => {
                f.li(Reg::A1, layout::HEAP_BASE + target * 4);
                f.setbound_imm(Reg::A1, Reg::A1, size as i32);
                f.store(Width::Word, Reg::A1, Reg::A0, (slot * 4) as i32);
            }
            MOp::StoreByte(slot, v) => {
                f.li(Reg::A1, u32::from(v));
                f.store(Width::Byte, Reg::A1, Reg::A0, (slot * 4) as i32);
            }
            MOp::LoadWord(slot) => {
                f.load(Width::Word, Reg::A2, Reg::A0, (slot * 4) as i32);
            }
        }
    }
    f.li(Reg::A0, 0);
    f.halt();
    Program::with_entry(vec![f.finish()])
}

/// The perturbation axes of one cell: every knob that participates in the
/// result-store key.
fn config_axis() -> impl Strategy<Value = (Mode, PointerEncoding, MetaPath)> {
    (
        prop_oneof![
            Just(Mode::Baseline),
            Just(Mode::MallocOnly),
            Just(Mode::HardBound),
        ],
        prop_oneof![
            Just(PointerEncoding::Extern4),
            Just(PointerEncoding::Intern4),
            Just(PointerEncoding::Intern11),
        ],
        prop_oneof![
            Just(MetaPath::Summary),
            Just(MetaPath::Walk),
            Just(MetaPath::Charge),
        ],
    )
}

fn cell(program: &Program, mode: Mode, encoding: PointerEncoding, meta: MetaPath) -> Job<Mode> {
    Job {
        program: program.clone(),
        config: machine_config(mode, encoding).with_meta_path(meta),
        salt: mode as u64,
        tag: mode,
    }
}

fn build(program: Program, cfg: MachineConfig, _mode: &Mode) -> Machine {
    // Generated programs are raw ISA images (no object table modes in the
    // axis), so construction is plain.
    Machine::new(program, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: a warm service replay is byte-identical to a cold
    /// recompute — and to the direct engine path — across perturbations.
    #[test]
    fn warm_replay_is_byte_identical_to_cold_recompute(
        ops in prop::collection::vec(op(), 1..40),
        axes in prop::collection::vec(config_axis(), 1..6),
    ) {
        let program = build_program(&ops);
        let jobs: Vec<Job<Mode>> = axes
            .iter()
            .map(|&(mode, encoding, meta)| cell(&program, mode, encoding, meta))
            .collect();

        let mut svc = CorpusService::new(2);
        let cold = svc.run_batch(&jobs, build);
        let warm = svc.run_batch(&jobs, build);
        prop_assert_eq!(&cold, &warm, "replay differs from recompute");
        let stats = svc.stats();
        prop_assert!(
            stats.store.hits >= jobs.len() as u64,
            "warm pass must be served by the store: {:?}", stats
        );

        // Cold recompute on a fresh store-less service, and the direct
        // engine path: all byte-identical.
        let mut bare = CorpusService::new(1);
        bare.set_result_cache(false);
        let recompute = bare.run_batch(&jobs, build);
        prop_assert_eq!(&cold, &recompute, "store on/off differ");
        for (job, out) in jobs.iter().zip(&cold) {
            let direct: RunOutcome =
                Engine::new(Machine::new(job.program.clone(), job.config.clone())).run();
            prop_assert_eq!(out, &direct, "service differs from the direct engine");
        }
    }

    /// Invariant 2: mutating one program invalidates exactly its keys.
    #[test]
    fn mutation_invalidates_exactly_the_mutated_programs_keys(
        ops_a in prop::collection::vec(op(), 1..30),
        ops_b in prop::collection::vec(op(), 1..30),
        axes in prop::collection::vec(config_axis(), 1..4),
    ) {
        let a = build_program(&ops_a);
        // Ensure b is a distinct image even if the generators coincide.
        let mut ops_b = ops_b;
        ops_b.push(MOp::StoreInt(0, 0xb));
        let b = build_program(&ops_b);

        let jobs: Vec<Job<Mode>> = axes
            .iter()
            .flat_map(|&(mode, encoding, meta)| {
                [cell(&a, mode, encoding, meta), cell(&b, mode, encoding, meta)]
            })
            .collect();
        let mut svc = CorpusService::new(2);
        let first = svc.run_batch(&jobs, build);
        let stored = svc.store().len();
        let a_keys: std::collections::HashSet<_> = jobs
            .iter()
            .filter(|j| j.program == a)
            .map(Job::key)
            .collect();

        // "Mutate" a: drop its cells, as a re-compiled image's new
        // ProgramIds would leave them stranded. One image owns one
        // ProgramId *per decode identity* (the HardBound extension and the
        // metadata path are part of it), so a full mutation invalidates
        // each of them.
        prop_assert_eq!(ProgramId::of(&a, &jobs[0].config), jobs[0].key().0);
        let pids: std::collections::HashSet<ProgramId> =
            a_keys.iter().map(|&(pid, _)| pid).collect();
        let mut dropped = 0;
        for &pid in &pids {
            dropped += svc.invalidate_program(pid).0;
        }
        prop_assert_eq!(
            dropped, a_keys.len(),
            "exactly a's stored cells die (one per distinct key)"
        );
        prop_assert_eq!(svc.store().len(), stored - dropped, "b's cells survive");

        let before = svc.stats().store;
        let second = svc.run_batch(&jobs, build);
        prop_assert_eq!(&first, &second, "re-run after invalidation changes nothing");
        let after = svc.stats().store;
        prop_assert_eq!(
            after.misses - before.misses,
            a_keys.len() as u64,
            "only a's distinct cells re-execute"
        );
    }
}
