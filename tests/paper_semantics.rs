//! Integration tests for the paper's worked semantic examples, end to end
//! through the facade crate: source → compiler → machine.

use hardbound::compiler::Mode;
use hardbound::core::{PointerEncoding, Trap};
use hardbound::runtime::compile_and_run;

/// Paper §6.1's complete cast walkthrough:
///
/// ```c
/// int x = 17;
/// char y = (char) x;      // legal cast (just a mov)
/// char *z = (char *)&x;   // compiler inserts bounds on z
/// int a = (int)z;         // a inherits z's bounds
/// (*(int *)a) = 42;       // legal update (x is now 42)
/// int *w = (int *)0x1000; // no bounds info for w
/// *w = 42;                // illegal write detected
/// ```
#[test]
fn section_6_1_cast_walkthrough() {
    let prologue = r#"
        int main() {
            int x = 17;
            char y = (char)x;
            char *z = (char*)&x;
            int a = (int)z;
            (*(int*)a) = 42;
            print_int(x);
            print_int(y);
    "#;
    // First: everything up to the illegal write succeeds and x == 42.
    let ok_src = format!("{prologue}\n return 0; }}");
    let out = compile_and_run(&ok_src, Mode::HardBound, PointerEncoding::Intern4).unwrap();
    assert_eq!(out.trap, None, "{:?}", out.trap);
    assert_eq!(
        out.ints,
        vec![42, 17],
        "x updated through the cast chain; y = (char)17"
    );

    // Then: the manufactured pointer fails.
    let bad_src = format!("{prologue}\n int *w = (int*)0x1000;\n *w = 42;\n return 0; }}");
    let out = compile_and_run(&bad_src, Mode::HardBound, PointerEncoding::Intern4).unwrap();
    assert!(
        matches!(out.trap, Some(Trap::NonPointerDereference { .. })),
        "line 7 of the §6.1 example must raise the non-pointer exception: {:?}",
        out.trap
    );
}

/// Paper §2.2/§3.2: the `node.str` strcpy example, in all three variants
/// the paper discusses.
#[test]
fn node_str_overflow_story() {
    let src = r#"
        struct node { char str[5]; int x; };
        int main() {
            struct node n;
            n.x = 1;
            char *ptr = n.str;
            strcpy(ptr, "overflow");    // overwrites node.x
            return n.x;
        }
    "#;
    // Unprotected: silent corruption of n.x.
    let base = compile_and_run(src, Mode::Baseline, PointerEncoding::Intern4).unwrap();
    assert_eq!(base.trap, None);
    assert_ne!(base.exit_code, Some(1));

    // HardBound: the compiler narrows ptr to node.str's extent (§3.2), so
    // the violation is detected *inside* strcpy.
    let hb = compile_and_run(src, Mode::HardBound, PointerEncoding::Intern4).unwrap();
    assert!(
        matches!(hb.trap, Some(Trap::BoundsViolation { .. })),
        "{:?}",
        hb.trap
    );

    // Object table: indistinguishable pointers, single table entry — the
    // overflow is invisible (§2.2's criticism).
    let ot = compile_and_run(src, Mode::ObjectTable, PointerEncoding::Intern4).unwrap();
    assert_eq!(ot.trap, None, "object granularity cannot see this");
}

/// Paper §3.2: bounds survive arbitrary propagation — parameter passing,
/// storage in data structures, reload, and pointer arithmetic.
#[test]
fn bounds_propagate_through_data_structures() {
    let src = r#"
        struct holder { int *p; };
        int *stash(struct holder *h, int *p) { h->p = p; return h->p; }
        int main() {
            struct holder h;
            int *a = (int*)malloc(4 * sizeof(int));
            int *back = stash(&h, a + 1);
            back[2] = 5;            // a[3]: last element, fine
            print_int(back[2]);
            back[3] = 6;            // a[4]: out of bounds
            return 0;
        }
    "#;
    for enc in PointerEncoding::ALL {
        let out = compile_and_run(src, Mode::HardBound, enc).unwrap();
        assert_eq!(out.ints, vec![5], "{enc}");
        assert!(
            matches!(out.trap, Some(Trap::BoundsViolation { .. })),
            "{enc}: {:?}",
            out.trap
        );
    }
}

/// The §3.2 escape hatch passes all checks; `readbase`/`readbound`
/// expose the sidecar metadata to software (§3.1 footnote 1).
#[test]
fn escape_hatch_and_metadata_introspection() {
    let src = r#"
        int main() {
            int *a = (int*)malloc(24);
            print_int(__readbound(a) - __readbase(a));   // 24
            int *u = __unbound(a);
            u[100] = 1;                                   // unchecked
            print_int(__readbase(u));                     // 0
            return 0;
        }
    "#;
    let out = compile_and_run(src, Mode::HardBound, PointerEncoding::Intern4).unwrap();
    assert_eq!(out.trap, None, "{:?}", out.trap);
    assert_eq!(out.ints, vec![24, 0]);
}

/// Spatial-only: HardBound deliberately does not catch temporal errors
/// (§6.2) — a dangling pointer to recycled memory reads the new data.
#[test]
fn temporal_errors_out_of_scope() {
    let src = r#"
        int main() {
            int *a = (int*)malloc(16);
            a[0] = 111;
            free(a);
            int *b = (int*)malloc(16);
            b[0] = 222;
            print_int(a[0]);   // dangling read sees b's data
            return 0;
        }
    "#;
    let out = compile_and_run(src, Mode::HardBound, PointerEncoding::Intern4).unwrap();
    assert_eq!(out.trap, None, "spatial safety only (§6.2): {:?}", out.trap);
    assert_eq!(out.ints, vec![222]);
}
