//! The figure-pipeline half of the corpus-service differential: every
//! rendered table must come out byte-identical with the service on
//! (`HB_SERVICE=1`, the default) and off (`HB_SERVICE=0`, the direct
//! path) — and identical again on a warm second pass served from the
//! result store, which must report replays.
//!
//! This binary intentionally holds **exactly one `#[test]`**: it flips
//! process-global environment variables, and a sibling test reading the
//! environment concurrently (every driver consults `HB_*` flags) would
//! race `setenv` against `getenv` — undefined behaviour on glibc. Keep it
//! that way; new service tests belong in `tests/service_differential.rs`.

use hardbound::core::PointerEncoding;
use hardbound::report::{ablation_check_uop, fig5, fig6, fig7, granularity, render};
use hardbound::workloads::Scale;

/// Renders every figure artefact the drivers produce into one string.
fn render_all(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&render::fig5_table(&fig5(scale)));
    out.push_str(&render::fig6_table(&fig6(scale)));
    out.push_str(&render::fig7_table(&fig7(scale)));
    out.push_str(&render::ablation_table(&ablation_check_uop(scale)));
    out.push_str(&render::granularity_table(&granularity(
        PointerEncoding::Intern4,
    )));
    out
}

#[test]
fn figure_pipelines_are_byte_identical_with_and_without_the_service() {
    std::env::set_var("HB_SERVICE", "0");
    let direct = render_all(Scale::Smoke);
    std::env::set_var("HB_SERVICE", "1");
    let service_cold = render_all(Scale::Smoke);
    let after_cold = hardbound::runtime::service_stats();
    let service_warm = render_all(Scale::Smoke);
    let after_warm = hardbound::runtime::service_stats();
    std::env::remove_var("HB_SERVICE");

    assert_eq!(
        direct, service_cold,
        "service-routed figures must be byte-identical to the direct path"
    );
    assert_eq!(
        service_cold, service_warm,
        "warm replays must reproduce the figures byte-for-byte"
    );
    assert!(
        after_cold.store.hits > 0,
        "the figure grids share (program, config) cells — the cold pass \
         itself must already replay some: {after_cold:?}"
    );
    assert!(
        after_warm.store.hits > after_cold.store.hits,
        "the warm pass must replay from the store: {after_warm:?}"
    );
    assert!(
        after_warm.store.misses == after_cold.store.misses,
        "the warm pass must execute nothing new: {after_warm:?} vs {after_cold:?}"
    );
}
