//! Property suite for the metadata fast path: per-page tag summaries must
//! never change a single statistic relative to the unsummarized walk.
//!
//! Generated programs mix pointer spills (which tag pages), integer and
//! byte stores (which clear tags), unaligned stores, and loads, over a
//! multi-page region — in a *tag-sparse* flavour (pointer ops rare, most
//! pages never tagged: the fast path's home turf) and a *tag-dense* one
//! (pointer ops everywhere: the fast path must constantly re-decide).
//! Every generated program runs under all **15 mode × encoding
//! configurations**, on the interpreter and the block engine, under
//! `MetaPath::Summary` and `MetaPath::Walk`; the full `RunOutcome` —
//! `ExecStats` and `HierarchyStats` down to the last counter — must be
//! byte-identical between the summary and the walk on both execution
//! paths.

use hardbound::compiler::Mode;
use hardbound::core::{Machine, MetaPath, PointerEncoding, RunOutcome};
use hardbound::exec::Engine;
use hardbound::isa::{layout, FunctionBuilder, Program, Reg, Width};
use hardbound::runtime::machine_config;
use proptest::prelude::*;

const ALL_MODES: [Mode; 5] = [
    Mode::Baseline,
    Mode::MallocOnly,
    Mode::HardBound,
    Mode::SoftBound,
    Mode::ObjectTable,
];

/// Words in the generated programs' working region (3 pages + one word so
/// page-transition behaviour is exercised at both boundaries).
const REGION_WORDS: u32 = 3 * 1024 + 1;
const REGION_BYTES: u32 = REGION_WORDS * 4;

/// One generated memory operation over the bounded working region.
#[derive(Clone, Copy, Debug)]
enum MOp {
    /// Store an integer word at `slot`.
    StoreInt(u32, u32),
    /// Store a pointer (bounds `[HEAP + 4 * target, … + size)`) at `slot`;
    /// small sizes compress, large ones spill to the shadow space.
    StorePtr { slot: u32, target: u32, size: u32 },
    /// Store one byte into word `slot` (clears its tag).
    StoreByte(u32, u8),
    /// Store an unaligned word at `slot * 4 + 1` (clears two tags).
    StoreUnaligned(u32, u32),
    /// Load the word at `slot`.
    LoadWord(u32),
    /// Load one byte of word `slot`.
    LoadByte(u32),
}

fn slot() -> impl Strategy<Value = u32> {
    // Bias toward page-boundary slots so summaries flip where it hurts.
    prop_oneof![
        0u32..REGION_WORDS,
        0u32..REGION_WORDS,
        0u32..REGION_WORDS,
        1020u32..1030,
        2044u32..2054,
    ]
}

/// Weighted op mix; `ptr_weight` copies of the pointer-spill arm emulate
/// weighting on top of the vendored uniform union (tag-sparse callers pass
/// 1 against ~13 other arms; tag-dense callers pass 8).
fn op(ptr_weight: usize) -> impl Strategy<Value = MOp> {
    let mut arms: Vec<BoxedStrategy<MOp>> = Vec::new();
    for _ in 0..4 {
        arms.push(
            (slot(), any::<u32>())
                .prop_map(|(s, v)| MOp::StoreInt(s, v))
                .boxed(),
        );
    }
    for _ in 0..ptr_weight {
        arms.push(
            (
                slot(),
                0u32..REGION_WORDS,
                prop_oneof![4u32..64, 4000u32..6000],
            )
                .prop_map(|(slot, target, size)| MOp::StorePtr { slot, target, size })
                .boxed(),
        );
    }
    for _ in 0..2 {
        arms.push(
            (slot(), any::<u8>())
                .prop_map(|(s, v)| MOp::StoreByte(s, v))
                .boxed(),
        );
    }
    arms.push(
        (0u32..REGION_WORDS - 2, any::<u32>())
            .prop_map(|(s, v)| MOp::StoreUnaligned(s, v))
            .boxed(),
    );
    for _ in 0..4 {
        arms.push(slot().prop_map(MOp::LoadWord).boxed());
    }
    for _ in 0..2 {
        arms.push(slot().prop_map(MOp::LoadByte).boxed());
    }
    Union::new(arms)
}

/// Lowers an op list to a program: `A0` holds the region pointer the whole
/// time, `A1` is the scratch value/pointer register, `A2` the load sink.
fn build_program(ops: &[MOp]) -> Program {
    let mut f = FunctionBuilder::new("generated", 0);
    f.li(Reg::A0, layout::HEAP_BASE);
    f.setbound_imm(Reg::A0, Reg::A0, REGION_BYTES as i32);
    for &o in ops {
        match o {
            MOp::StoreInt(slot, v) => {
                f.li(Reg::A1, v);
                f.store(Width::Word, Reg::A1, Reg::A0, (slot * 4) as i32);
            }
            MOp::StorePtr { slot, target, size } => {
                f.li(Reg::A1, layout::HEAP_BASE + target * 4);
                f.setbound_imm(Reg::A1, Reg::A1, size as i32);
                f.store(Width::Word, Reg::A1, Reg::A0, (slot * 4) as i32);
            }
            MOp::StoreByte(slot, v) => {
                f.li(Reg::A1, u32::from(v));
                f.store(Width::Byte, Reg::A1, Reg::A0, (slot * 4) as i32);
            }
            MOp::StoreUnaligned(slot, v) => {
                f.li(Reg::A1, v);
                f.store(Width::Word, Reg::A1, Reg::A0, (slot * 4 + 1) as i32);
            }
            MOp::LoadWord(slot) => {
                f.load(Width::Word, Reg::A2, Reg::A0, (slot * 4) as i32);
            }
            MOp::LoadByte(slot) => {
                f.load(Width::Byte, Reg::A2, Reg::A0, (slot * 4) as i32);
            }
        }
    }
    f.li(Reg::A0, 0);
    f.halt();
    Program::with_entry(vec![f.finish()])
}

fn assert_identical(label: &str, a: &RunOutcome, b: &RunOutcome) {
    assert_eq!(a.exit_code, b.exit_code, "{label}: exit code");
    assert_eq!(a.trap, b.trap, "{label}: trap");
    assert_eq!(a.output, b.output, "{label}: output");
    assert_eq!(
        a.stats, b.stats,
        "{label}: ExecStats/HierarchyStats must be byte-identical"
    );
}

/// Runs `program` under every mode × encoding, asserting the summary and
/// the walk agree on both execution paths.
fn check_all_configs(program: &Program) {
    for mode in ALL_MODES {
        for encoding in PointerEncoding::ALL {
            let cfg = machine_config(mode, encoding).with_fuel(2_000_000);
            let run = |meta: MetaPath, engine: bool| {
                let machine = Machine::new(program.clone(), cfg.clone().with_meta_path(meta));
                if engine {
                    Engine::new(machine).run()
                } else {
                    let mut m = machine;
                    m.run()
                }
            };
            let interp_summary = run(MetaPath::Summary, false);
            let interp_walk = run(MetaPath::Walk, false);
            let engine_summary = run(MetaPath::Summary, true);
            let engine_walk = run(MetaPath::Walk, true);
            let label = format!("{mode}/{encoding}");
            assert_identical(&format!("{label}/interp"), &interp_summary, &interp_walk);
            assert_identical(&format!("{label}/engine"), &engine_summary, &engine_walk);
            assert_identical(
                &format!("{label}/interp-vs-engine"),
                &interp_summary,
                &engine_summary,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tag-sparse programs: pointer spills are rare, so most accesses ride
    /// the fast path — the summary must skip exactly where the walk skips.
    #[test]
    fn tag_sparse_programs_summary_never_changes_stats(
        ops in prop::collection::vec(op(1), 1..60),
    ) {
        check_all_configs(&build_program(&ops));
    }

    /// Tag-dense programs: pointers land on every page, pages flip between
    /// tagged and tag-free as stores overwrite them — the bookkeeping must
    /// track every transition.
    #[test]
    fn tag_dense_programs_summary_never_changes_stats(
        ops in prop::collection::vec(op(8), 1..60),
    ) {
        check_all_configs(&build_program(&ops));
    }
}

/// A deterministic worst case on top of the random sweep: one page tagged
/// and fully untagged again, repeatedly, interleaved with loads — the
/// summary memo must notice every flip (a stale memo here is the bug class
/// this suite exists to catch).
#[test]
fn page_flip_stress_matches_walk() {
    let mut ops = Vec::new();
    for round in 0..12u32 {
        let slot = (round % 3) * 1024 + round;
        ops.push(MOp::StorePtr {
            slot,
            target: 0,
            size: 16,
        });
        ops.push(MOp::LoadWord(slot));
        ops.push(MOp::StoreInt(slot, round));
        ops.push(MOp::LoadWord(slot));
        ops.push(MOp::LoadWord(slot + 1));
    }
    check_all_configs(&build_program(&ops));
}
