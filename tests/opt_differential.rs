//! The optimizer differential suite: the engine with the static
//! bounds-check optimizer (`HB_OPT`) must remain observationally identical
//! to the interpreter — same output, same traps at the same program
//! counters (site *and* kind), and the same `ExecStats` down to every
//! counter — across benign programs, the **full** violation corpus,
//! compiled workloads, the unstructured fuzz stream, and the loop-heavy
//! fuzz family that actually drives the hoisting and coalescing passes.
//!
//! Every leg also runs under `OptConfig::AUDIT`, which re-executes each
//! eliminated check shadow-side and panics on a would-have-trapped
//! divergence: a green suite means every deleted check was *proved*
//! redundant, not merely observed to be.

use hardbound::compiler::Mode;
use hardbound::core::{Machine, MachineConfig, MetaPath, PointerEncoding, RunOutcome};
use hardbound::exec::{decode_block, optimize, Engine, OptConfig};
use hardbound::isa::{fuzz, layout, FuncId, FunctionBuilder, Program, Reg, Width};
use hardbound::runtime::{build_machine_with_config, compile, machine_config};
use hardbound::workloads::{by_name, Scale};
use proptest::prelude::*;

const ALL_MODES: [Mode; 5] = [
    Mode::Baseline,
    Mode::MallocOnly,
    Mode::HardBound,
    Mode::SoftBound,
    Mode::ObjectTable,
];

fn all_configs() -> impl Iterator<Item = (Mode, PointerEncoding)> {
    ALL_MODES
        .into_iter()
        .flat_map(|m| PointerEncoding::ALL.into_iter().map(move |e| (m, e)))
}

fn assert_identical(label: &str, interp: &RunOutcome, opt: &RunOutcome) {
    assert_eq!(opt.exit_code, interp.exit_code, "{label}: exit code");
    assert_eq!(opt.trap, interp.trap, "{label}: trap site and kind");
    assert_eq!(opt.output, interp.output, "{label}: console output");
    assert_eq!(opt.ints, interp.ints, "{label}: print_int stream");
    assert_eq!(opt.stats, interp.stats, "{label}: ExecStats");
}

/// Interpreter vs engine+opt vs engine+opt+audit on one prebuilt machine
/// configuration.
fn check_program(label: &str, program: &Program, cfg: &MachineConfig) {
    let interp = Machine::new(program.clone(), cfg.clone()).run();
    for (opt, leg) in [(OptConfig::ON, "opt"), (OptConfig::AUDIT, "audit")] {
        let out = Engine::with_opt(Machine::new(program.clone(), cfg.clone()), opt).run();
        assert_identical(&format!("{label}/{leg}"), &interp, &out);
    }
}

/// The **full** violation corpus — all pairs, both sources — under the
/// paper's default configuration: with `HB_OPT` the bad programs must trap
/// at the same instruction with the same trap kind, and the ok programs
/// must stay clean with identical statistics.
#[test]
fn full_violation_corpus_traps_identically_under_opt() {
    for case in hardbound::violations::corpus() {
        for (source, flavor) in [(&case.bad_source, "bad"), (&case.ok_source, "ok")] {
            let program = compile(source, Mode::HardBound)
                .unwrap_or_else(|e| panic!("{}-{flavor}: compile failed: {e}", case.id));
            let cfg = machine_config(Mode::HardBound, PointerEncoding::Intern4);
            check_program(&format!("{}-{flavor}", case.id), &program, &cfg);
        }
    }
}

/// A corpus sample across every mode × encoding × meta-path configuration
/// (the full corpus in the 15-way matrix would dominate suite runtime).
#[test]
fn violation_sample_agrees_on_all_15_configurations() {
    let cases: Vec<_> = hardbound::violations::corpus()
        .into_iter()
        .step_by(37)
        .collect();
    assert!(cases.len() >= 7);
    for case in &cases {
        for (mode, encoding) in all_configs() {
            for meta in [MetaPath::Summary, MetaPath::Walk] {
                let program = compile(&case.bad_source, mode)
                    .unwrap_or_else(|e| panic!("{}: compile failed: {e}", case.id));
                let cfg = machine_config(mode, encoding).with_meta_path(meta);
                let interp = build_machine_with_config(program.clone(), mode, cfg.clone()).run();
                let opt = Engine::with_opt(
                    build_machine_with_config(program, mode, cfg),
                    OptConfig::AUDIT,
                )
                .run();
                assert_identical(
                    &format!("{}/{mode}/{encoding}/{meta:?}", case.id),
                    &interp,
                    &opt,
                );
            }
        }
    }
}

#[test]
fn workloads_agree_under_opt_on_all_15_configurations() {
    for bench in ["treeadd", "health", "power"] {
        let w = by_name(bench, Scale::Smoke).expect("workload exists");
        for (mode, encoding) in all_configs() {
            let program = compile(&w.source, mode)
                .unwrap_or_else(|e| panic!("{bench}: compile failed under {mode}: {e}"));
            let cfg = machine_config(mode, encoding);
            check_program(&format!("{bench}/{mode}/{encoding}"), &program, &cfg);
        }
    }
}

/// Builds a runnable program from the loop-heavy fuzz family.
fn loop_family_program(seed: u64) -> Program {
    let main = hardbound::isa::Function {
        name: "main".into(),
        insts: fuzz::loop_insts(seed),
        frame_size: 0,
        num_args: 0,
    };
    let program = Program::with_entry(vec![main]);
    program.validate().expect("loop family programs validate");
    program
}

/// The loop-heavy family across the full matrix, audited. These programs
/// are built to push checks through all three passes — and some seeds walk
/// off their array mid-loop, pinning trap-site identity on the hoisted and
/// coalesced paths.
#[test]
fn loop_family_agrees_across_modes_and_encodings() {
    for seed in 0..64 {
        let program = loop_family_program(seed);
        for (mode, encoding) in all_configs() {
            let cfg = machine_config(mode, encoding).with_fuel(100_000);
            check_program(&format!("loop-{seed}/{mode}/{encoding}"), &program, &cfg);
        }
    }
}

/// The family must actually exercise the optimizer: over the seed sweep,
/// decoding the self-loop block under the default configuration has to
/// fire all three passes.
#[test]
fn loop_family_drives_all_three_passes() {
    let cfg = MachineConfig::default();
    let mut total = hardbound::exec::OptStats::default();
    for seed in 0..64 {
        let program = loop_family_program(seed);
        // The family's loop head is instruction 6 (after the fixed
        // six-instruction setup); decoding there yields the self-loop
        // block hoisting wants. Entry 0 covers the straight-line prefix.
        for entry in [0, 6] {
            let block = decode_block(&program, FuncId(0), entry, &cfg);
            let (_, stats) = optimize(&block, entry);
            total.emitted += stats.emitted;
            total.elided += stats.elided;
            total.hoisted += stats.hoisted;
            total.coalesced += stats.coalesced;
            total.guards += stats.guards;
        }
    }
    assert!(total.emitted > 0, "{total:?}");
    assert!(total.elided > 0, "RCE never fired: {total:?}");
    assert!(total.hoisted > 0, "hoisting never fired: {total:?}");
    assert!(total.coalesced > 0, "coalescing never fired: {total:?}");
    assert!(
        total.elided + total.hoisted + total.coalesced <= total.emitted,
        "{total:?}"
    );
}

/// Registers the straight-line property programs point through.
const PTRS: [Reg; 3] = [Reg::A0, Reg::A1, Reg::A6];

/// One generated pointer operation for the property sweep.
#[derive(Clone, Copy, Debug)]
enum POp {
    /// Re-derive pointer `p`: fresh base and (small) bounds — some
    /// offsets/sizes leave later fixed-offset accesses out of bounds.
    Rebase {
        p: usize,
        off: u32,
        size: u32,
    },
    /// `p += delta` (builds the constant-offset chains the IR tracks).
    Advance {
        p: usize,
        delta: i32,
    },
    /// `dst = src` (aliases share value numbers — and facts).
    Alias {
        dst: usize,
        src: usize,
    },
    Load {
        p: usize,
        off: i32,
        byte: bool,
    },
    Store {
        p: usize,
        off: i32,
        byte: bool,
    },
}

fn pop() -> impl Strategy<Value = POp> {
    let p = 0usize..PTRS.len();
    // Offsets reach past the 16..=64-byte objects often enough that the
    // violation path (and the guard-failure fallback) is well traveled.
    let off = -8i32..72;
    prop_oneof![
        (p.clone(), 0u32..256, 16u32..64).prop_map(|(p, off, size)| POp::Rebase { p, off, size }),
        (p.clone(), -16i32..32).prop_map(|(p, delta)| POp::Advance { p, delta }),
        (p.clone(), 0usize..PTRS.len()).prop_map(|(dst, src)| POp::Alias { dst, src }),
        (p.clone(), off.clone(), any::<bool>()).prop_map(|(p, off, byte)| POp::Load {
            p,
            off,
            byte
        }),
        (p.clone(), off.clone(), any::<bool>()).prop_map(|(p, off, byte)| POp::Load {
            p,
            off,
            byte
        }),
        (p, off, any::<bool>()).prop_map(|(p, off, byte)| POp::Store { p, off, byte }),
    ]
}

/// Lowers the ops, optionally wrapped in a counted loop (the loop flavour
/// turns never-rebased pointers into hoisting candidates).
fn build_pop_program(ops: &[POp], loop_trips: Option<u32>) -> Program {
    let mut f = FunctionBuilder::new("gen", 0);
    for (i, &r) in PTRS.iter().enumerate() {
        f.li(r, layout::HEAP_BASE + 64 * i as u32);
        f.setbound_imm(r, r, 48);
    }
    let head = loop_trips.map(|_| {
        f.li(Reg::T2, 0);
        f.bind_label()
    });
    for &op in ops {
        match op {
            POp::Rebase { p, off, size } => {
                f.li(PTRS[p], layout::HEAP_BASE + off);
                f.setbound_imm(PTRS[p], PTRS[p], size as i32);
            }
            POp::Advance { p, delta } => f.addi(PTRS[p], PTRS[p], delta),
            POp::Alias { dst, src } => f.mov(PTRS[dst], PTRS[src]),
            POp::Load { p, off, byte } => {
                let w = if byte { Width::Byte } else { Width::Word };
                f.load(w, Reg::T0, PTRS[p], off);
            }
            POp::Store { p, off, byte } => {
                let w = if byte { Width::Byte } else { Width::Word };
                f.store(w, Reg::T0, PTRS[p], off);
            }
        }
    }
    if let (Some(head), Some(trips)) = (head, loop_trips) {
        f.addi(Reg::T2, Reg::T2, 1);
        f.branch(hardbound::isa::CmpOp::Lt, Reg::T2, trips as i32, head);
    }
    f.li(Reg::A0, 0);
    f.halt();
    Program::with_entry(vec![f.finish()])
}

/// Property legs run the default HardBound configuration plus the two
/// non-default corners that change check-µop accounting the most.
fn prop_configs() -> [MachineConfig; 3] {
    [
        machine_config(Mode::HardBound, PointerEncoding::Intern4),
        machine_config(Mode::HardBound, PointerEncoding::Extern4).with_meta_path(MetaPath::Walk),
        machine_config(Mode::MallocOnly, PointerEncoding::Intern11),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Straight-line pointer soup: RCE and coalescing territory, with
    /// aliasing, chain arithmetic, rebasing, and plenty of traps.
    #[test]
    fn straight_line_programs_agree(ops in prop::collection::vec(pop(), 1..40)) {
        let program = build_pop_program(&ops, None);
        for (i, cfg) in prop_configs().into_iter().enumerate() {
            check_program(&format!("straight/cfg{i}"), &program, &cfg.with_fuel(200_000));
        }
    }

    /// The same soup inside a counted loop: invariant pointers become
    /// hoisting candidates, advanced ones defeat it, and a failed loop-top
    /// guard must divert to the fallback copy without observable effect.
    #[test]
    fn looped_programs_agree(
        ops in prop::collection::vec(pop(), 1..24),
        trips in 1u32..6,
    ) {
        let program = build_pop_program(&ops, Some(trips));
        for (i, cfg) in prop_configs().into_iter().enumerate() {
            check_program(&format!("loop/cfg{i}"), &program, &cfg.with_fuel(200_000));
        }
    }
}
