//! The corpus-service differential suite: executing through
//! [`CorpusService`](hardbound::exec::CorpusService) — shared decode-cache
//! shards plus the program-hash result store — must be observationally
//! identical to the direct one-machine-one-engine path, across **all 15
//! mode × encoding configurations**, and a warm service must *replay*
//! (result-store hits > 0) rather than re-simulate.
//!
//! The figure-pipeline half of the story — rendered tables byte-identical
//! with `HB_SERVICE=0`/`1` and on warm replay — lives in
//! `tests/service_figures_differential.rs`, a **single-test binary**,
//! because it flips process-global environment variables that the tests
//! here would race against (`setenv` concurrent with `getenv` is
//! undefined behaviour on glibc).

use hardbound::compiler::Mode;
use hardbound::core::{MachineConfig, PointerEncoding, RunOutcome};
use hardbound::exec::service::Job;
use hardbound::exec::{CorpusService, Engine};
use hardbound::runtime::{build_machine_with_config, compile, machine_config};

const ALL_MODES: [Mode; 5] = [
    Mode::Baseline,
    Mode::MallocOnly,
    Mode::HardBound,
    Mode::SoftBound,
    Mode::ObjectTable,
];

const PROGRAMS: &[(&str, &str)] = &[
    (
        "heap-walk",
        r"
        struct node { int v; struct node *next; };
        int main() {
            struct node *head = 0;
            for (int i = 0; i < 11; i = i + 1) {
                struct node *n = (struct node*)malloc(sizeof(struct node));
                n->v = i * i; n->next = head; head = n;
            }
            int sum = 0;
            for (struct node *p = head; p != 0; p = p->next) sum = sum + p->v;
            print_int(sum);
            return 0;
        }
        ",
    ),
    (
        "strings-and-globals",
        r#"
        int g_tab[16];
        int main() {
            char *buf = (char*)malloc(32);
            strcpy(buf, "service");
            for (int i = 0; i < 16; i = i + 1) g_tab[i] = strlen(buf) + i;
            int s = 0;
            for (int i = 0; i < 16; i = i + 1) s = s + g_tab[i];
            print_int(s);
            print_str(buf);
            return 0;
        }
        "#,
    ),
];

fn build(
    program: hardbound::isa::Program,
    cfg: MachineConfig,
    mode: &Mode,
) -> hardbound::core::Machine {
    build_machine_with_config(program, *mode, cfg)
}

/// Direct path: a fresh machine and a fresh private engine cache per run.
fn direct(program: &hardbound::isa::Program, mode: Mode, cfg: &MachineConfig) -> RunOutcome {
    Engine::new(build_machine_with_config(
        program.clone(),
        mode,
        cfg.clone(),
    ))
    .run()
}

#[test]
fn service_matches_direct_path_across_the_full_matrix() {
    // One long-lived service across the whole matrix: later configs run
    // against a cache already warm with other programs and configs, which
    // is exactly the sharing the identity must survive.
    let mut svc = CorpusService::new(3);
    for (label, source) in PROGRAMS {
        for mode in ALL_MODES {
            let program = compile(source, mode)
                .unwrap_or_else(|e| panic!("{label}: compile failed under {mode}: {e}"));
            for encoding in PointerEncoding::ALL {
                let cfg = machine_config(mode, encoding);
                let expected = direct(&program, mode, &cfg);
                let job = Job {
                    program: program.clone(),
                    config: cfg,
                    salt: mode as u64,
                    tag: mode,
                };
                let cold = svc.run_one(&job, build);
                let warm = svc.run_one(&job, build);
                assert_eq!(
                    cold, expected,
                    "{label}/{mode}/{encoding}: service cold run differs from the direct path"
                );
                assert_eq!(
                    warm, expected,
                    "{label}/{mode}/{encoding}: store replay differs from the direct path"
                );
            }
        }
    }
    let stats = svc.stats();
    let runs = (PROGRAMS.len() * ALL_MODES.len() * 3 * 2) as u64;
    assert_eq!(
        stats.store.hits + stats.store.misses,
        runs,
        "every run consults the store once: {stats:?}"
    );
    // At least every warm run replays; cold runs of software-scheme cells
    // that share one baseline configuration across encodings replay too.
    assert!(
        stats.store.hits >= runs / 2,
        "every warm run must be a result-store replay: {stats:?}"
    );
    assert!(stats.store.misses > 0, "cold cells must execute: {stats:?}");
}

#[test]
fn batch_and_one_by_one_agree() {
    let mode = Mode::HardBound;
    let program = compile(PROGRAMS[0].1, mode).expect("compiles");
    let jobs: Vec<Job<Mode>> = PointerEncoding::ALL
        .into_iter()
        .map(|encoding| Job {
            program: program.clone(),
            config: machine_config(mode, encoding),
            salt: mode as u64,
            tag: mode,
        })
        .collect();
    let mut batch_svc = CorpusService::new(4);
    let batched = batch_svc.run_batch(&jobs, build);
    let mut serial_svc = CorpusService::new(1);
    let serial: Vec<RunOutcome> = jobs.iter().map(|j| serial_svc.run_one(j, build)).collect();
    assert_eq!(batched, serial, "sharding must not change outcomes");
}
