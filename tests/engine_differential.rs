//! The engine-vs-interpreter differential suite: the pre-decoded
//! basic-block engine (`hardbound-exec`) must be observationally identical
//! to `Machine::run` — same exit code, same console output, same traps at
//! the same program counters, and the same `ExecStats` down to every
//! counter (µops, bounds checks, stall cycles, distinct pages) — across
//! **all 15 mode × encoding configurations**, over benign programs, the
//! violation corpus, compiled workloads, and sanitized fuzz programs.
//!
//! The same four-way matrix additionally pins the **metadata fast path**:
//! each program runs under `MetaPath::Summary` (per-page counters) and
//! `MetaPath::Walk` (the unsummarized tag-plane walk), on both execution
//! paths, and all four outcomes must be byte-identical — `ExecStats` and
//! `HierarchyStats` included.
//!
//! The **hierarchy lookup machinery** is pinned the same way: each
//! program also runs under `HierPath::Walk` (the reference way-walk) on
//! both execution paths, and must be byte-identical to the default
//! event-driven residency-proof path (`HierPath::Event`) — the two are
//! exact twins by construction, differing only in how a set is searched.

use hardbound::compiler::Mode;
use hardbound::core::{HierPath, Machine, MachineConfig, MetaPath, PointerEncoding, RunOutcome};
use hardbound::exec::{Engine, OptConfig};
use hardbound::isa::{fuzz, FuncId, Function, Inst, Program, SysCall};
use hardbound::runtime::{build_machine, build_machine_with_config, compile, machine_config};
use hardbound::workloads::{by_name, Scale};

const ALL_MODES: [Mode; 5] = [
    Mode::Baseline,
    Mode::MallocOnly,
    Mode::HardBound,
    Mode::SoftBound,
    Mode::ObjectTable,
];

/// Every mode × encoding pair (5 × 3 = 15 configurations).
fn all_configs() -> impl Iterator<Item = (Mode, PointerEncoding)> {
    ALL_MODES
        .into_iter()
        .flat_map(|m| PointerEncoding::ALL.into_iter().map(move |e| (m, e)))
}

fn assert_identical(label: &str, interp: &RunOutcome, engine: &RunOutcome) {
    assert_eq!(engine.exit_code, interp.exit_code, "{label}: exit code");
    assert_eq!(engine.trap, interp.trap, "{label}: trap (incl. pc)");
    assert_eq!(engine.output, interp.output, "{label}: console output");
    assert_eq!(engine.ints, interp.ints, "{label}: print_int stream");
    assert_eq!(engine.stats, interp.stats, "{label}: ExecStats");
}

/// Compiles `source` under `mode` and runs it eight ways — interpreter,
/// engine, engine+opt, and engine+opt+audit, each under the summary fast
/// path and the unsummarized walk — asserting all outcomes identical. The
/// audit leg re-executes every check the optimizer eliminated and panics
/// on a would-have-trapped divergence, so "identical" here means *proved*
/// identical, not merely observed.
fn differential_cb(label: &str, source: &str, mode: Mode, encoding: PointerEncoding) {
    let program = compile(source, mode)
        .unwrap_or_else(|e| panic!("{label}: compile failed under {mode}: {e}"));
    let cfg = |meta| machine_config(mode, encoding).with_meta_path(meta);
    let build = |meta| build_machine_with_config(program.clone(), mode, cfg(meta));
    let interp = build(MetaPath::Summary).run();
    let engine = Engine::new(build(MetaPath::Summary)).run();
    let interp_walk = build(MetaPath::Walk).run();
    let engine_walk = Engine::new(build(MetaPath::Walk)).run();
    let label = format!("{label}/{mode}/{encoding}");
    assert_identical(&label, &interp, &engine);
    assert_identical(
        &format!("{label}/interp summary-vs-walk"),
        &interp,
        &interp_walk,
    );
    assert_identical(
        &format!("{label}/engine summary-vs-walk"),
        &engine,
        &engine_walk,
    );
    // The hierarchy lookup twin: the reference way-walk must match the
    // default event-driven path on both execution paths.
    let hier_cfg = cfg(MetaPath::Summary).with_hier_path(HierPath::Walk);
    let interp_hier = build_machine_with_config(program.clone(), mode, hier_cfg.clone()).run();
    let engine_hier = Engine::new(build_machine_with_config(program.clone(), mode, hier_cfg)).run();
    assert_identical(
        &format!("{label}/interp event-vs-hier-walk"),
        &interp,
        &interp_hier,
    );
    assert_identical(
        &format!("{label}/engine event-vs-hier-walk"),
        &engine,
        &engine_hier,
    );
    for (opt, leg) in [(OptConfig::ON, "opt"), (OptConfig::AUDIT, "opt+audit")] {
        let opt_run = Engine::with_opt(build(MetaPath::Summary), opt).run();
        assert_identical(&format!("{label}/engine+{leg}"), &interp, &opt_run);
        let opt_walk = Engine::with_opt(build(MetaPath::Walk), opt).run();
        assert_identical(&format!("{label}/engine+{leg}/walk"), &interp, &opt_walk);
    }
}

const BENIGN: &[(&str, &str)] = &[
    (
        "heap-sum",
        r"
        int main() {
            int n = 12;
            int *a = (int*)malloc(n * sizeof(int));
            for (int i = 0; i < n; i = i + 1) a[i] = i * 3;
            int sum = 0;
            for (int i = 0; i < n; i = i + 1) sum = sum + a[i];
            free(a);
            print_int(sum);
            return 0;
        }
        ",
    ),
    (
        "linked-list",
        r"
        struct node { int v; struct node *next; };
        int main() {
            struct node *head = 0;
            for (int i = 0; i < 9; i = i + 1) {
                struct node *n = (struct node*)malloc(sizeof(struct node));
                n->v = i; n->next = head; head = n;
            }
            int sum = 0;
            for (struct node *p = head; p != 0; p = p->next) sum = sum + p->v;
            print_int(sum);
            return 0;
        }
        ",
    ),
    (
        "recursion-and-globals",
        r"
        int g_hits[8];
        int fib(int n) {
            if (n < 8) g_hits[n] = g_hits[n] + 1;
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() {
            print_int(fib(12));
            int s = 0;
            for (int i = 0; i < 8; i = i + 1) s = s + g_hits[i];
            print_int(s);
            return 0;
        }
        ",
    ),
];

#[test]
fn benign_programs_agree_on_all_15_configurations() {
    for (name, source) in BENIGN {
        for (mode, encoding) in all_configs() {
            differential_cb(name, source, mode, encoding);
        }
    }
}

#[test]
fn violation_corpus_sample_agrees_on_all_15_configurations() {
    let cases: Vec<_> = hardbound::violations::corpus()
        .into_iter()
        .step_by(41) // 8 cases spanning every dimension
        .collect();
    assert!(cases.len() >= 7);
    for case in &cases {
        for (mode, encoding) in all_configs() {
            differential_cb(
                &format!("{}-bad", case.id),
                &case.bad_source,
                mode,
                encoding,
            );
            differential_cb(&format!("{}-ok", case.id), &case.ok_source, mode, encoding);
        }
    }
}

#[test]
fn workloads_agree_on_all_15_configurations() {
    for bench in ["treeadd", "health"] {
        let w = by_name(bench, Scale::Smoke).expect("workload exists");
        for (mode, encoding) in all_configs() {
            differential_cb(bench, &w.source, mode, encoding);
        }
    }
}

/// Builds a structurally valid program from a raw fuzz instruction stream:
/// control-flow targets are clamped into range and a terminating halt is
/// appended. Everything else (wild addresses, bad call targets, divide by
/// zero, runaway recursion) is left in — the two execution paths must agree
/// on every trap.
fn fuzz_program(seed: u64) -> Program {
    let mut insts = fuzz::insts(seed, 48);
    let len = insts.len() as u32 + 1; // + the appended halt
    for inst in &mut insts {
        match inst {
            Inst::Branch { target, .. } | Inst::Jump { target } => *target %= len,
            Inst::Call { func } | Inst::CodePtr { func, .. } => *func = FuncId(func.0 % 2),
            _ => {}
        }
    }
    insts.push(Inst::Sys {
        call: SysCall::Halt,
    });
    let helper = Function {
        name: "helper".into(),
        insts: vec![
            Inst::Li {
                rd: hardbound::isa::Reg::A0,
                imm: 7,
            },
            Inst::Ret,
        ],
        frame_size: 0,
        num_args: 0,
    };
    let main = Function {
        name: "main".into(),
        insts,
        frame_size: 0,
        num_args: 0,
    };
    let program = Program::with_entry(vec![main, helper]);
    program
        .validate()
        .expect("sanitized fuzz programs validate");
    program
}

#[test]
fn fuzz_programs_agree_across_modes_and_encodings() {
    for seed in 0..48 {
        let program = fuzz_program(seed);
        for (mode, encoding) in all_configs() {
            // Fuzz programs are raw µop streams — the compiler mode only
            // matters through the machine configuration, so pair each
            // config via the runtime glue as the drivers do. The walk
            // variant re-checks the fast-path identity on hostile inputs.
            let cfg = machine_config(mode, encoding).with_fuel(100_000);
            let walk_cfg = cfg.clone().with_meta_path(MetaPath::Walk);
            let hier_cfg = cfg.clone().with_hier_path(HierPath::Walk);
            let interp = Machine::new(program.clone(), cfg.clone()).run();
            let engine = Engine::new(Machine::new(program.clone(), cfg.clone())).run();
            let engine_walk = Engine::new(Machine::new(program.clone(), walk_cfg)).run();
            let engine_hier = Engine::new(Machine::new(program.clone(), hier_cfg)).run();
            let audited =
                Engine::with_opt(Machine::new(program.clone(), cfg), OptConfig::AUDIT).run();
            let label = format!("fuzz-{seed}/{mode}/{encoding}");
            assert_identical(&label, &interp, &engine);
            assert_identical(&format!("{label}/summary-vs-walk"), &engine, &engine_walk);
            assert_identical(
                &format!("{label}/event-vs-hier-walk"),
                &engine,
                &engine_hier,
            );
            assert_identical(&format!("{label}/opt+audit"), &interp, &audited);
        }
    }
}

#[test]
fn engine_stats_expose_the_block_cache() {
    let w = by_name("treeadd", Scale::Smoke).expect("workload exists");
    let program = compile(&w.source, Mode::HardBound).expect("compiles");
    let mut engine = Engine::new(build_machine(
        program,
        Mode::HardBound,
        PointerEncoding::Intern4,
    ));
    let out = engine.run();
    assert!(out.trap.is_none());
    let stats = engine.stats();
    assert!(stats.cache.decoded > 0, "{stats:?}");
    assert!(
        stats.cache.hit_ratio() > 0.9,
        "hot loops must hit the block cache: {stats:?}"
    );
    assert!(stats.fast_uops > out.stats.uops / 2, "{stats:?}");
}

/// A machine configuration differential at tiny fuel: the engine's
/// interpreter fallback near the fuel limit must count µops exactly.
#[test]
fn fuel_edge_agrees_at_every_limit() {
    let w = by_name("power", Scale::Smoke).expect("workload exists");
    let program = compile(&w.source, Mode::HardBound).expect("compiles");
    for fuel in [1, 7, 63, 512, 4093] {
        let cfg = MachineConfig::default().with_fuel(fuel);
        let interp = Machine::new(program.clone(), cfg.clone()).run();
        let engine = Engine::new(Machine::new(program.clone(), cfg)).run();
        assert_identical(&format!("fuel={fuel}"), &interp, &engine);
    }
}
