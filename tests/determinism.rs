//! The whole stack must be bit-for-bit deterministic: identical programs,
//! identical cycle counts, identical page counts, run after run. Every
//! number in EXPERIMENTS.md depends on this.

use hardbound::compiler::Mode;
use hardbound::core::PointerEncoding;
use hardbound::runtime::{build_machine, compile};
use hardbound::workloads::{by_name, Scale};

#[test]
fn compilation_is_deterministic() {
    let w = by_name("health", Scale::Smoke).expect("exists");
    let p1 = compile(&w.source, Mode::HardBound).expect("compiles");
    let p2 = compile(&w.source, Mode::HardBound).expect("compiles");
    assert_eq!(
        p1, p2,
        "two compilations of the same source must be identical"
    );
}

#[test]
fn execution_statistics_are_deterministic() {
    let w = by_name("em3d", Scale::Smoke).expect("exists");
    for mode in [
        Mode::Baseline,
        Mode::HardBound,
        Mode::SoftBound,
        Mode::ObjectTable,
    ] {
        let program = compile(&w.source, mode).expect("compiles");
        let a = build_machine(program.clone(), mode, PointerEncoding::Extern4).run();
        let b = build_machine(program, mode, PointerEncoding::Extern4).run();
        assert_eq!(a.trap, b.trap, "{mode}");
        assert_eq!(a.ints, b.ints, "{mode}");
        assert_eq!(
            a.stats.cycles(),
            b.stats.cycles(),
            "{mode}: cycle counts must repeat"
        );
        assert_eq!(a.stats.uops, b.stats.uops, "{mode}");
        assert_eq!(a.stats.data_pages, b.stats.data_pages, "{mode}");
        assert_eq!(a.stats.tag_pages, b.stats.tag_pages, "{mode}");
        assert_eq!(a.stats.shadow_pages, b.stats.shadow_pages, "{mode}");
        assert_eq!(
            a.stats.hierarchy.total_stall_cycles(),
            b.stats.hierarchy.total_stall_cycles(),
            "{mode}: cache behaviour must repeat"
        );
    }
}

#[test]
fn corpus_generation_is_deterministic() {
    let a = hardbound::violations::corpus();
    let b = hardbound::violations::corpus();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.bad_source, y.bad_source);
        assert_eq!(x.ok_source, y.ok_source);
    }
}
