//! Differential execution across instrumentation modes (the CGuard /
//! Checked C validation methodology): instrumented and uninstrumented
//! builds of the same program must be observationally identical on
//! non-violating programs, and only instrumented builds may trap on the
//! violation corpus.
//!
//! Covers paper §3 (metadata is invisible to computation) and §5.2 (the
//! detection experiment), as a cross-mode agreement property rather than a
//! per-mode count.

use hardbound::compiler::Mode;
use hardbound::core::{PointerEncoding, Trap};
use hardbound::runtime::compile_and_run;
use hardbound::violations::{corpus, Addressing, Boundary, Magnitude, Region};

/// The shared non-violating corpus: small Cb programs exercising the
/// language surface (arithmetic, control flow, heap allocation, strings,
/// structs, recursion, pointer arithmetic) without any spatial violation.
const BENIGN_CORPUS: &[(&str, &str)] = &[
    (
        "arith-loops",
        r#"
        int main() {
            int acc = 0;
            for (int i = 1; i <= 10; i = i + 1) {
                if (i % 2 == 0) acc = acc + i * i;
                else acc = acc - i;
            }
            print_int(acc);
            return acc % 7;
        }
        "#,
    ),
    (
        "heap-array-sum",
        r#"
        int main() {
            int n = 16;
            int *a = (int*)malloc(n * sizeof(int));
            for (int i = 0; i < n; i = i + 1) a[i] = i * 3;
            int sum = 0;
            for (int i = 0; i < n; i = i + 1) sum = sum + a[i];
            free(a);
            print_int(sum);
            return 0;
        }
        "#,
    ),
    (
        "string-bytes",
        r#"
        int main() {
            char *s = (char*)malloc(6);
            s[0] = 104; s[1] = 98; s[2] = 111; s[3] = 117; s[4] = 110; s[5] = 100;
            int h = 0;
            for (int i = 0; i < 6; i = i + 1) h = h * 31 + s[i];
            print_int(h);
            free(s);
            return 0;
        }
        "#,
    ),
    (
        "linked-list",
        r#"
        struct node { int v; struct node *next; };
        int main() {
            struct node *head = 0;
            for (int i = 0; i < 12; i = i + 1) {
                struct node *n = (struct node*)malloc(sizeof(struct node));
                n->v = i;
                n->next = head;
                head = n;
            }
            int sum = 0;
            for (struct node *p = head; p != 0; p = p->next) sum = sum + p->v;
            print_int(sum);
            return 0;
        }
        "#,
    ),
    (
        "recursion",
        r#"
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() {
            print_int(fib(15));
            return 0;
        }
        "#,
    ),
    (
        "pointer-walk",
        r#"
        int main() {
            int *a = (int*)malloc(8 * sizeof(int));
            int *p = a;
            for (int i = 0; i < 8; i = i + 1) {
                *p = i + 100;
                p = p + 1;
            }
            int total = 0;
            for (int i = 7; i >= 0; i = i - 1) {
                int *q = a + i;
                total = total + *q;
            }
            print_int(total);
            free(a);
            return 0;
        }
        "#,
    ),
    (
        "globals-and-stack",
        r#"
        int g_table[10];
        int main() {
            int local[5];
            for (int i = 0; i < 10; i = i + 1) g_table[i] = i * i;
            for (int i = 0; i < 5; i = i + 1) local[i] = g_table[i + 3];
            int s = 0;
            for (int i = 0; i < 5; i = i + 1) s = s + local[i];
            print_int(s);
            return 0;
        }
        "#,
    ),
];

/// What the differential harness compares: everything a Cb program can
/// externally observe.
fn observe(name: &str, mode: Mode) -> (Option<i32>, Option<Trap>, String, Vec<i32>) {
    let source = BENIGN_CORPUS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| *s)
        .expect("corpus entry exists");
    let out = compile_and_run(source, mode, PointerEncoding::Intern4)
        .unwrap_or_else(|e| panic!("{name} failed to compile under {mode}: {e}"));
    (out.exit_code, out.trap, out.output, out.ints)
}

/// All five modes must agree bit-for-bit on observable behaviour of every
/// benign program, and none may trap.
#[test]
fn benign_corpus_agrees_across_all_modes() {
    for (name, _) in BENIGN_CORPUS {
        let reference = observe(name, Mode::Baseline);
        assert_eq!(
            reference.1, None,
            "{name}: baseline trapped: {:?}",
            reference.1
        );
        assert!(reference.0.is_some(), "{name}: baseline did not halt");
        for mode in [
            Mode::MallocOnly,
            Mode::HardBound,
            Mode::SoftBound,
            Mode::ObjectTable,
        ] {
            let got = observe(name, mode);
            assert_eq!(
                got, reference,
                "{name}: {mode} observably diverges from baseline"
            );
        }
    }
}

/// Benign programs agree across all three compressed pointer encodings
/// under full HardBound (§4.3: encodings change cost, never semantics).
#[test]
fn benign_corpus_agrees_across_encodings() {
    for (name, source) in BENIGN_CORPUS {
        let mut outcomes = PointerEncoding::ALL.iter().map(|&enc| {
            let out = compile_and_run(source, Mode::HardBound, enc)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
            (out.exit_code, out.trap, out.output, out.ints)
        });
        let reference = outcomes.next().expect("at least one encoding");
        assert_eq!(
            reference.1, None,
            "{name}: HardBound trapped on benign program"
        );
        for got in outcomes {
            assert_eq!(got, reference, "{name}: encodings disagree");
        }
    }
}

/// A one-element-past violation sample: silent in the baseline, detected by
/// every instrumented mode with that mode's own trap kind; the in-bounds
/// twin never traps anywhere.
#[test]
fn violation_corpus_traps_only_under_instrumentation() {
    // Off-by-one cases stay inside mapped memory, so the unprotected
    // baseline is guaranteed to corrupt silently rather than wild-trap.
    let sample: Vec<_> = corpus()
        .into_iter()
        .filter(|c| c.magnitude == Magnitude::One)
        .step_by(11)
        .collect();
    assert!(
        sample.len() >= 10,
        "sample unexpectedly small: {}",
        sample.len()
    );

    for case in &sample {
        let run = |source: &str, mode: Mode| {
            compile_and_run(source, mode, PointerEncoding::Intern4)
                .unwrap_or_else(|e| panic!("{}: compile failed under {mode}: {e}", case.id))
        };

        let baseline = run(&case.bad_source, Mode::Baseline);
        assert_eq!(
            baseline.trap, None,
            "{}: uninstrumented baseline must run the violation silently",
            case.id
        );

        let hb = run(&case.bad_source, Mode::HardBound);
        assert!(
            hb.trap.is_some_and(|t| t.is_spatial_violation()),
            "{}: HardBound missed the violation (trap: {:?})",
            case.id,
            hb.trap
        );

        let sb = run(&case.bad_source, Mode::SoftBound);
        assert!(
            matches!(sb.trap, Some(Trap::SoftwareAbort { .. })),
            "{}: SoftBound missed the violation (trap: {:?})",
            case.id,
            sb.trap
        );

        // Object-granular schemes cannot see an overflow that stays inside
        // the allocation: overrunning `arr` into the struct's trailing
        // sentinel is invisible to them (paper §6 — sub-object protection
        // is what distinguishes HardBound/CCured-strength schemes from
        // object-table ones). Underflowing `arr`, the first field, leaves
        // the whole object and is caught. Assert the limitation rather
        // than skip it, so a behaviour change here is loud.
        let inside_allocation =
            case.addressing == Addressing::SubObject && case.boundary == Boundary::Upper;
        let ot = run(&case.bad_source, Mode::ObjectTable);
        if inside_allocation {
            assert_eq!(
                ot.trap, None,
                "{}: object-granular scheme unexpectedly saw a sub-object overflow",
                case.id
            );
        } else {
            assert!(
                matches!(ot.trap, Some(Trap::ObjectTableViolation { .. })),
                "{}: ObjectTable missed the violation (trap: {:?})",
                case.id,
                ot.trap
            );
        }

        // Malloc-only hardware protection (§3.2) covers exactly the heap,
        // at malloc granularity.
        if case.region == Region::Heap && !inside_allocation {
            let mo = run(&case.bad_source, Mode::MallocOnly);
            assert!(
                mo.trap.is_some_and(|t| t.is_spatial_violation()),
                "{}: MallocOnly missed a heap violation (trap: {:?})",
                case.id,
                mo.trap
            );
        }

        // The in-bounds twin is clean everywhere and all modes agree on it.
        let reference = run(&case.ok_source, Mode::Baseline);
        assert_eq!(
            reference.trap, None,
            "{}: benign twin trapped in baseline",
            case.id
        );
        for mode in [
            Mode::MallocOnly,
            Mode::HardBound,
            Mode::SoftBound,
            Mode::ObjectTable,
        ] {
            let got = run(&case.ok_source, mode);
            assert_eq!(
                got.trap, None,
                "{}: benign twin trapped under {mode}",
                case.id
            );
            assert_eq!(
                (got.exit_code, got.output, got.ints),
                (
                    reference.exit_code,
                    reference.output.clone(),
                    reference.ints.clone()
                ),
                "{}: benign twin diverges under {mode}",
                case.id
            );
        }
    }
}
