//! `HB_TRACE` on vs off must not change a single byte of grid results —
//! tracing is pure observation. A **single-test binary**, because the
//! trace sink is process-global state that concurrent tests in a shared
//! binary would race against.

use hardbound::compiler::Mode;
use hardbound::core::PointerEncoding;
use hardbound::runtime::{compile, run_jobs, SimJob};
use hardbound::telemetry::{trace, SpanEvent};

#[test]
fn tracing_does_not_perturb_local_grid_results() {
    let mut jobs = Vec::new();
    for k in 0..6 {
        let source = format!(
            "int main() {{\n\
               int *a = (int*)malloc(8 * sizeof(int));\n\
               for (int i = 0; i < 8; i = i + 1) a[i] = i * {k};\n\
               int s = 0;\n\
               for (int i = 0; i < 8; i = i + 1) s = s + a[i];\n\
               print_int(s);\n\
               return 0;\n\
             }}"
        );
        for mode in [Mode::Baseline, Mode::HardBound] {
            let program = compile(&source, mode).expect("compiles");
            jobs.push(SimJob::new(program, mode, PointerEncoding::Intern4));
        }
    }

    trace::disable();
    let off = run_jobs(jobs.clone());

    let path = std::env::temp_dir().join(format!("hb-local-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    trace::install(&path).expect("trace sink installs");
    let on = run_jobs(jobs.clone());
    // A cold re-run of the same grid under tracing exercises the decode
    // spans too (the first grid warmed the result store, so force fresh
    // cells through distinct sources).
    let mut fresh = Vec::new();
    for k in 0..3 {
        let source = format!("int main() {{ print_int({k} + 400); return 0; }}");
        let program = compile(&source, Mode::HardBound).expect("compiles");
        fresh.push(SimJob::new(
            program,
            Mode::HardBound,
            PointerEncoding::Intern4,
        ));
    }
    let _ = run_jobs(fresh);
    trace::disable();

    assert_eq!(
        on, off,
        "HB_TRACE on vs off must be byte-identical in grid results"
    );

    // Every emitted line re-parses, and the local service path stamped
    // its own span kinds (batch + store-lookup sweep + parallel exec;
    // the fresh cells add decode spans).
    let text = std::fs::read_to_string(&path).expect("trace sink written");
    let _ = std::fs::remove_file(&path);
    let mut kinds = std::collections::BTreeSet::new();
    for line in text.lines() {
        let ev = SpanEvent::parse(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        kinds.insert(ev.kind);
    }
    for kind in ["batch", "store_lookup", "batch_exec", "decode"] {
        assert!(kinds.contains(kind), "missing `{kind}` spans: {kinds:?}");
    }
}
