//! The case-running half: deterministic seeding, the `PROPTEST_CASES`
//! override, and regression-seed persistence compatible in spirit with the
//! real proptest's `proptest-regressions/` files.

use std::fs;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Per-suite configuration. Only `cases` is meaningful in this subset; the
/// struct is non-exhaustive-by-convention so `..ProptestConfig::default()`
/// update syntax keeps working if suites adopt it.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// The case count actually run: the `PROPTEST_CASES` environment
    /// variable, when set, overrides every suite's baked-in count so CI can
    /// stay fast while local soak runs go deep.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(s) => s.trim().parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Splitmix64: tiny, seedable, and good enough to scatter test inputs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (modulo bias is irrelevant at test scale).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Deterministic per-test base seed so runs are reproducible without any
/// wall-clock or OS entropy; case `i` uses `base + i * GOLDEN`.
fn base_seed(file: &str, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes().chain([b'#']).chain(name.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn regression_path(manifest_dir: &str, file: &str, name: &str) -> PathBuf {
    let stem = Path::new(file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("suite");
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}-{name}.txt"))
}

fn load_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let hex = line.strip_prefix("seed 0x")?;
            u64::from_str_radix(hex, 16).ok()
        })
        .collect()
}

fn persist_seed(path: &Path, seed: u64) {
    if load_seeds(path).contains(&seed) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let mut text = fs::read_to_string(path).unwrap_or_else(|_| {
        "# proptest regression seeds — replayed before fresh cases; one `seed 0x<hex>` per line\n"
            .to_owned()
    });
    text.push_str(&format!("seed {seed:#018x}\n"));
    let _ = fs::write(path, text);
}

/// Replay persisted failures first, then run `cases` fresh seeds. On panic
/// the seed is persisted and the panic is re-raised so the harness reports
/// the test as failed with the original message.
pub fn run_proptest(
    config: &ProptestConfig,
    manifest_dir: &str,
    file: &str,
    name: &str,
    run: impl Fn(&mut TestRng),
) {
    let path = regression_path(manifest_dir, file, name);
    for seed in load_seeds(&path) {
        run_one(&path, seed, &run, "persisted regression");
    }
    let base = base_seed(file, name);
    for case in 0..u64::from(config.effective_cases()) {
        let seed = base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        run_one(&path, seed, &run, "fresh case");
    }
}

fn run_one(path: &Path, seed: u64, run: &impl Fn(&mut TestRng), kind: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = TestRng::new(seed);
        run(&mut rng);
    }));
    if let Err(panic) = outcome {
        persist_seed(path, seed);
        eprintln!(
            "proptest: {kind} failed with seed {seed:#018x} (persisted to {})",
            path.display()
        );
        resume_unwind(panic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = TestRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn env_override_parses() {
        let cfg = ProptestConfig::with_cases(64);
        // No env set in unit tests: falls through to the baked-in count.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(cfg.effective_cases(), 64);
        }
    }
}
