//! A minimal, dependency-free, offline re-implementation of the subset of
//! [proptest](https://crates.io/crates/proptest) that this workspace uses.
//!
//! The container that builds this repository has no access to crates.io, so
//! the real proptest cannot be fetched. This crate keeps the five property
//! suites source-compatible:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in strat, ..) {..} }`
//! * `Strategy` with `prop_map`, `prop_recursive`, `boxed`
//! * `prop_oneof![..]`, `Just(..)`, `any::<T>()`, integer ranges, tuples
//! * `prop::collection::vec(strat, len_range)`
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//! * `ProptestConfig::with_cases(n)` — overridable via the `PROPTEST_CASES`
//!   environment variable so CI stays fast while local runs can go deep
//! * failing seeds are persisted to `<crate>/proptest-regressions/` and
//!   replayed before fresh cases on the next run
//!
//! It generates random values but does **not** shrink failures; the
//! persisted seed reproduces the failing case exactly, which is enough for
//! debugging a deterministic simulator.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! What `use proptest::prelude::*` is expected to bring into scope.
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assertion macros: the real proptest threads a `Result` through the test
/// body; here a plain panic is caught by the runner, which persists the
/// failing seed before propagating the panic.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies that share a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The test-defining macro. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` (the attribute is written by the caller and passed
/// through) that replays persisted regression seeds and then runs
/// `config.cases` freshly seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_proptest(
                    &$cfg,
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    stringify!($name),
                    |__proptest_rng| {
                        let ($($arg,)+) = {
                            let __strats = ($(($strat),)+);
                            let ($(ref $arg,)+) = __strats;
                            ($($crate::strategy::Strategy::generate($arg, __proptest_rng),)+)
                        };
                        $body
                    },
                );
            }
        )*
    };
}
