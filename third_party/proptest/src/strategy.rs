//! Value-generation strategies: the generative half of proptest, without
//! shrinking. Every strategy is a pure function of the [`TestRng`] handed to
//! it, so a persisted seed replays a failure exactly.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a clonable, reference-counted strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build recursive structures: `self` is the leaf strategy and `f` maps
    /// a strategy for depth-`d` values to one for depth-`d+1` values. The
    /// real proptest sizes trees by a target node count; this subset simply
    /// unions `leaf` with `f(smaller)` at every level, which bounds depth at
    /// `depth` and yields the same qualitative mix of shallow and deep trees.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), f(strat).boxed()]).boxed();
        }
        strat
    }
}

/// Object-safe bridge so `BoxedStrategy` can hold any concrete strategy.
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A clonable, type-erased strategy (`Rc` because test bodies are
/// single-threaded per case).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice over same-typed strategies; what `prop_oneof!` builds.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// `any::<T>()` for the primitive types the suites ask for.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer ranges: `lo..hi` and `lo..=hi` are strategies, as in proptest.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(rng.below(width) as $t)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Tuple strategies generate element-wise, left to right.
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
