//! A minimal, dependency-free, offline re-implementation of the subset of
//! [criterion](https://crates.io/crates/criterion) this workspace uses.
//!
//! The build container has no crates.io access, so the real criterion cannot
//! be fetched. This keeps `benches/simulator_throughput.rs` source-compatible
//! and still useful: each benchmark runs a short warm-up, then `sample_size`
//! timed samples, and prints min/mean wall-clock per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level driver handed to each `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_samples(self.default_sample_size, &mut f);
        print_report(name, &report);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let report = run_samples(self.sample_size, &mut |b: &mut Bencher| f(b, input));
        print_report(&label, &report);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        let report = run_samples(self.sample_size, &mut f);
        print_report(&label, &report);
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<D: Display>(param: D) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }

    pub fn new<D: Display>(name: &str, param: D) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_owned())
    }
}

/// Times closures handed to `Bencher::iter`.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let elapsed = start.elapsed() / self.iters_per_sample as u32;
        self.samples.push(elapsed);
    }
}

/// Opaque value sink; prevents the optimizer from deleting the benchmarked
/// computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

struct Report {
    min: Duration,
    mean: Duration,
    samples: usize,
}

fn run_samples<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> Report {
    // Warm-up sample, discarded.
    let mut warmup = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut warmup);

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let samples = bencher.samples;
    let min = samples.iter().copied().min().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = if samples.is_empty() {
        Duration::ZERO
    } else {
        total / samples.len() as u32
    };
    Report {
        min,
        mean,
        samples: samples.len(),
    }
}

fn print_report(label: &str, report: &Report) {
    println!(
        "{label:<44} min {:>10.2?}  mean {:>10.2?}  ({} samples)",
        report.min, report.mean, report.samples
    );
}

/// Collects benchmark functions into a single runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
