//! Quickstart: compile a C program with HardBound instrumentation, run it
//! on the simulated machine, and watch the hardware catch a heap overflow.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hardbound::compiler::Mode;
use hardbound::core::{PointerEncoding, Trap};
use hardbound::runtime::compile_and_run;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        int main() {
            int *a = (int*)malloc(8 * sizeof(int));
            for (int i = 0; i < 8; i = i + 1) a[i] = i * i;

            int sum = 0;
            for (int i = 0; i < 8; i = i + 1) sum = sum + a[i];
            print_int(sum);          // 140: everything above is in bounds

            int oops = 11;
            a[oops] = 7;             // spatial violation: 3 past the end
            return 0;
        }
    "#;

    // The unprotected baseline corrupts silently.
    let baseline = compile_and_run(source, Mode::Baseline, PointerEncoding::Intern4)?;
    println!(
        "baseline:  exit={:?} trap={:?}",
        baseline.exit_code, baseline.trap
    );

    // HardBound's malloc-instrumented runtime bounds every allocation; the
    // hardware checks each dereference implicitly (paper §3.1).
    let hardbound = compile_and_run(source, Mode::HardBound, PointerEncoding::Intern4)?;
    println!("hardbound: exit={:?}", hardbound.exit_code);
    match hardbound.trap {
        Some(Trap::BoundsViolation {
            addr, base, bound, ..
        }) => {
            println!("hardbound: caught! store to {addr:#x} outside [{base:#x}, {bound:#x})");
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // Both runs agree on everything before the violation.
    assert_eq!(baseline.ints, hardbound.ints);
    assert_eq!(hardbound.ints, vec![140]);

    // And the stats show what the protection cost.
    println!(
        "cost: {} setbound µops, {} bounds checks, {} tag-cache accesses",
        hardbound.stats.setbound_uops,
        hardbound.stats.bounds_checks,
        hardbound.stats.hierarchy.tag_accesses,
    );
    Ok(())
}
