//! The paper's §3.2 legacy-binary mode: "One mode of use requires
//! instrumenting only malloc, which enables enforcement of per-allocation
//! spatial safety for heap-allocated objects for existing binaries."
//!
//! This example compiles the *same* program two ways — as an unmodified
//! binary and as a binary whose only change is the instrumented `malloc` —
//! and shows that heap objects become protected while stack objects (which
//! would need compiler support) do not.
//!
//! ```sh
//! cargo run --example legacy_heap_protection
//! ```

use hardbound::compiler::Mode;
use hardbound::core::{PointerEncoding, Trap};
use hardbound::runtime::compile_and_run;

const HEAP_OVERFLOW: &str = r#"
    int main() {
        char *name = (char*)malloc(8);
        strcpy(name, "this string is far too long");   // heap overflow
        return 0;
    }
"#;

const STACK_OVERFLOW: &str = r#"
    int scribble(int n) {
        int a[4];
        int i = n;
        a[i] = 1;           // stack overflow (needs compiler support)
        return a[0];
    }
    int main() {
        int pad[32];
        pad[0] = scribble(6);
        return 0;
    }
"#;

fn describe(label: &str, trap: &Option<Trap>) {
    match trap {
        Some(Trap::BoundsViolation { addr, .. }) => {
            println!("{label}: DETECTED (bounds violation at {addr:#x})");
        }
        None => println!("{label}: ran to completion (undetected)"),
        other => println!("{label}: {other:?}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== heap overflow through strcpy ==");
    let legacy = compile_and_run(HEAP_OVERFLOW, Mode::Baseline, PointerEncoding::Intern4)?;
    describe("unmodified binary     ", &legacy.trap);
    let protected = compile_and_run(HEAP_OVERFLOW, Mode::MallocOnly, PointerEncoding::Intern4)?;
    describe("instrumented malloc   ", &protected.trap);

    println!("\n== stack overflow ==");
    let legacy = compile_and_run(STACK_OVERFLOW, Mode::MallocOnly, PointerEncoding::Intern4)?;
    describe("instrumented malloc   ", &legacy.trap);
    let full = compile_and_run(STACK_OVERFLOW, Mode::HardBound, PointerEncoding::Intern4)?;
    describe("full instrumentation  ", &full.trap);

    println!(
        "\nmalloc-only protects every heap allocation in existing binaries;\n\
         stack and global objects additionally need the compiler's setbound\n\
         insertion (paper §3.2, footnote 2)."
    );
    Ok(())
}
