//! Runs slices of the §5.2 spatial-violation corpus under each protection
//! scheme and prints a detection matrix — a compact view of what each
//! scheme can and cannot catch.
//!
//! ```sh
//! cargo run --release --example violation_corpus
//! ```

use hardbound::compiler::Mode;
use hardbound::core::PointerEncoding;
use hardbound::violations::{run_filtered, Addressing, Magnitude, Region};

type SliceFilter = Box<dyn Fn(&hardbound::violations::TestCase) -> bool>;

fn main() {
    println!(
        "{:<36} {:>10} {:>10} {:>10} {:>10}",
        "corpus slice", "malloc-only", "hardbound", "softbound", "objtable"
    );
    println!("{}", "-".repeat(82));

    let slices: Vec<(&str, SliceFilter)> = vec![
        (
            "heap, whole-object",
            Box::new(|c| c.region == Region::Heap && c.addressing != Addressing::SubObject),
        ),
        (
            "stack, whole-object",
            Box::new(|c| c.region == Region::Stack && c.addressing != Addressing::SubObject),
        ),
        (
            "global, whole-object",
            Box::new(|c| c.region == Region::Global && c.addressing != Addressing::SubObject),
        ),
        (
            "sub-object (array in struct)",
            Box::new(|c| c.addressing == Addressing::SubObject && c.magnitude == Magnitude::One),
        ),
    ];

    for (label, filter) in slices {
        let mut cells = Vec::new();
        for mode in [
            Mode::MallocOnly,
            Mode::HardBound,
            Mode::SoftBound,
            Mode::ObjectTable,
        ] {
            let report = run_filtered(mode, PointerEncoding::Intern4, |c| filter(c));
            cells.push(format!("{}/{}", report.detected, report.total));
        }
        println!(
            "{:<36} {:>10} {:>10} {:>10} {:>10}",
            label, cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!(
        "\nReadings (paper §2–3): malloc-only covers only the heap; full\n\
         HardBound and fat-pointer schemes catch everything including\n\
         sub-objects; object tables are structurally blind to overflows\n\
         that stay inside the containing object (§2.2)."
    );
}
