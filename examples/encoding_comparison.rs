//! Compares the paper's three compressed pointer encodings (§4.3) on two
//! Olden kernels, reporting relative runtime, compression rate and
//! metadata traffic — a miniature of Figure 5.
//!
//! ```sh
//! cargo run --release --example encoding_comparison
//! ```

use hardbound::compiler::Mode;
use hardbound::core::PointerEncoding;
use hardbound::runtime::compile_and_run;
use hardbound::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>10} | {:>9} {:>9} {:>11} {:>12}",
        "bench", "encoding", "rel.time", "compress", "meta µops", "shadow pages"
    );
    println!("{}", "-".repeat(70));
    for name in ["treeadd", "em3d", "health"] {
        let w = by_name(name, Scale::Smoke).expect("workload exists");
        let base = compile_and_run(&w.source, Mode::Baseline, PointerEncoding::Intern4)?;
        assert!(base.trap.is_none());
        for encoding in PointerEncoding::ALL {
            let out = compile_and_run(&w.source, Mode::HardBound, encoding)?;
            assert!(out.trap.is_none(), "{name}: {:?}", out.trap);
            assert_eq!(out.ints, base.ints, "checksums must agree");
            println!(
                "{:<10} {:>10} | {:>9.3} {:>8.1}% {:>11} {:>12}",
                name,
                encoding.label(),
                out.stats.cycles() as f64 / base.stats.cycles() as f64,
                100.0 * out.stats.store_compression_rate(),
                out.stats.meta_uops,
                out.stats.shadow_pages,
            );
        }
    }
    println!(
        "\nThe 4-bit encodings compress pointers to ≤56-byte objects; the\n\
         11-bit encoding reaches 8 KB, eliminating most base/bound traffic\n\
         (the paper's §5.4 result: 9% → 7% → 5% average overhead)."
    );
    Ok(())
}
