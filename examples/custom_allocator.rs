//! The §3.2 escape hatch: "Sophisticated programmers can write such code
//! that is still safe by calling the setbound instruction directly. For
//! example, a custom memory allocator that hands out chunks of a large
//! array would follow the strategy of refining the bounds for the pointers
//! to chunks it hands out."
//!
//! This example builds exactly that allocator in Cb: an arena carved out
//! of one big array, handing out sub-bounded chunks. Chunk overflows are
//! caught even though the chunks all live inside one legitimate object.
//!
//! ```sh
//! cargo run --example custom_allocator
//! ```

use hardbound::compiler::Mode;
use hardbound::core::{PointerEncoding, Trap};
use hardbound::runtime::compile_and_run;

const ARENA_SOURCE: &str = r#"
    char arena[1024];
    int arena_used = 0;

    // A custom allocator: hands out sub-bounded chunks of `arena`.
    char *arena_alloc(int n) {
        char *base = __unbound(arena);        // allocator-internal view
        char *chunk = base + arena_used;
        arena_used = arena_used + n;
        return __setbound(chunk, n);          // caller gets exact bounds
    }

    int main() {
        char *a = arena_alloc(16);
        char *b = arena_alloc(16);
        a[15] = 1;                            // fine: last byte of chunk a
        b[0] = 2;                             // fine: first byte of chunk b
        print_int(a[15] + b[0]);
        a[16] = 3;                            // overflow of chunk a into b!
        return 0;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = compile_and_run(ARENA_SOURCE, Mode::HardBound, PointerEncoding::Intern4)?;
    println!("in-bounds work: printed {:?}", out.ints);
    match out.trap {
        Some(Trap::BoundsViolation {
            addr, base, bound, ..
        }) => println!(
            "chunk overflow caught: store to {addr:#x} outside chunk [{base:#x}, {bound:#x})\n\
             — even though the address is still inside the arena array."
        ),
        other => println!("unexpected outcome: {other:?}"),
    }

    // Without sub-bounding the same store silently corrupts chunk b.
    let unprotected = compile_and_run(ARENA_SOURCE, Mode::Baseline, PointerEncoding::Intern4)?;
    println!(
        "baseline for comparison: trap={:?} (the overflow lands in chunk b)",
        unprotected.trap
    );
    Ok(())
}
