//! # HardBound
//!
//! A full reproduction of *HardBound: Architectural Support for Spatial
//! Safety of the C Programming Language* (Devietti, Blundell, Martin,
//! Zdancewic — ASPLOS 2008) as a Rust workspace.
//!
//! This facade crate re-exports every subsystem so downstream users can
//! depend on a single crate:
//!
//! * [`isa`] — the 32-bit µop instruction set the simulator executes.
//! * [`mem`] — sparse paged memory plus the base/bound shadow space and the
//!   tag metadata space of paper §4.1–4.2.
//! * [`cache`] — the set-associative cache / TLB models with the paper's
//!   geometry (32 KB L1, 4 MB L2, 2 KB/8 KB tag metadata cache).
//! * [`core`] — the HardBound machine: sidecar register metadata, implicit
//!   bounds checks, metadata propagation, and the three compressed pointer
//!   encodings (`extern-4`, `intern-4`, `intern-11`).
//! * [`exec`] — the pre-decoded basic-block execution engine (block cache +
//!   tight dispatch loop, observationally identical to the interpreter) and
//!   the deterministic parallel batch driver.
//! * [`lang`] — the *Cb* language front end (a C subset) used in place of
//!   the paper's CIL/GCC toolchain.
//! * [`compiler`] — Cb → ISA code generation with four instrumentation
//!   modes: `Baseline`, `HardBound`, `SoftBound` (CCured-style software fat
//!   pointers) and `ObjectTable` (JK/RL/DA-style).
//! * [`runtime`] — the simulated C runtime (free-list `malloc`, string
//!   functions, fixed-point math) and the object-table splay tree.
//! * [`workloads`] — ports of the nine Olden benchmarks used in §5.
//! * [`violations`] — the spatial-violation corpus generator of §5.2.
//! * [`report`] — experiment drivers that regenerate every table and figure.
//! * [`serve`] — the persistent result store (`HB_STORE_PATH`) and the
//!   `hbserve` networked corpus service (wire codec, append-only log,
//!   TCP work-queue front end).
//! * [`telemetry`] — the metrics registry (counters, gauges, latency
//!   histograms; Prometheus-style exposition) and `HB_TRACE` span
//!   tracing with cross-shard trace propagation.
//! * [`bench`] — bench-harness support (`cargo bench` targets regenerate
//!   the paper artefacts; `HB_SCALE=smoke` shrinks inputs for CI).
//!
//! ## Quick start
//!
//! ```
//! use hardbound::compiler::Mode;
//! use hardbound::core::{PointerEncoding, Trap};
//! use hardbound::runtime::compile_and_run;
//!
//! let source = r#"
//!     int main() {
//!         int *a = (int*)malloc(4 * sizeof(int));
//!         a[1] = 10;      // in bounds
//!         a[7] = 99;      // spatial violation: caught by HardBound
//!         return a[1];
//!     }
//! "#;
//! let outcome = compile_and_run(source, Mode::HardBound, PointerEncoding::Intern4)?;
//! assert!(matches!(outcome.trap, Some(Trap::BoundsViolation { .. })));
//! # Ok::<(), hardbound::compiler::CompileError>(())
//! ```

pub use hardbound_bench as bench;
pub use hardbound_cache as cache;
pub use hardbound_compiler as compiler;
pub use hardbound_core as core;
pub use hardbound_exec as exec;
pub use hardbound_isa as isa;
pub use hardbound_lang as lang;
pub use hardbound_mem as mem;
pub use hardbound_report as report;
pub use hardbound_runtime as runtime;
pub use hardbound_serve as serve;
pub use hardbound_telemetry as telemetry;
pub use hardbound_violations as violations;
pub use hardbound_workloads as workloads;
