/// Hit/miss counters for one cache array.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed (and filled).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; `0` when there were no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative array with true-LRU replacement.
///
/// Used for data caches, the tag metadata cache *and* TLBs (a TLB is the
/// same structure with 4 KB "blocks"). Addresses are 64-bit because
/// HardBound's metadata spaces are modelled as conceptual regions above the
/// 32-bit program space (see `hardbound_isa::layout`).
#[derive(Clone, Debug)]
pub struct Cache {
    block_bits: u32,
    /// `num_sets - 1`; set counts are asserted powers of two, so indexing
    /// is a mask, never a hardware division (the set-index `%` was the
    /// single hottest operation in the whole simulator).
    set_mask: u64,
    ways: usize,
    /// `lines[set * ways + way]` = block tag **plus one**, or `0` when
    /// invalid. The +1 encoding makes the all-invalid initial state
    /// all-zeroes, so construction is one `calloc` (lazily faulted pages)
    /// instead of a multi-megabyte sentinel memset per machine.
    lines: Vec<u64>,
    /// Last-use timestamp per line; the eviction victim is the line with
    /// the smallest stamp (0 = never used, so invalid ways fill first).
    /// This implements exactly the true-LRU policy the previous
    /// recency-order encoding did — same hits, same misses, same victims
    /// among valid lines — with a one-store hit path.
    stamps: Vec<u64>,
    /// Monotonic use counter feeding `stamps` (64-bit: never wraps).
    clock: u64,
    /// The most recently accessed block (`u64::MAX` = none yet). After any
    /// access the block is resident and most-recently-used in its set, so
    /// a repeat access is a guaranteed hit — the simulator's hot loops
    /// overwhelmingly re-touch the same block, and this memo answers them
    /// without the set scan. Exact: stats and replacement state evolve
    /// identically with or without it.
    last_block: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_bytes` capacity with `ways` ways and
    /// `block_bytes` blocks.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are powers of two, `ways` divides the number of
    /// blocks, and `ways <= 255`.
    #[must_use]
    pub fn new(size_bytes: u64, ways: usize, block_bytes: u64) -> Cache {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(ways > 0 && ways <= 255);
        let blocks = size_bytes / block_bytes;
        assert!(blocks >= ways as u64, "fewer blocks than ways");
        assert_eq!(blocks % ways as u64, 0);
        let num_sets = blocks / ways as u64;
        Cache::with_sets(num_sets, ways, block_bytes)
    }

    /// Creates a cache from an explicit set count (used for TLBs:
    /// `entries / ways` sets with page-sized blocks).
    ///
    /// # Panics
    ///
    /// Panics unless `num_sets` and `block_bytes` are powers of two.
    #[must_use]
    pub fn with_sets(num_sets: u64, ways: usize, block_bytes: u64) -> Cache {
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(block_bytes.is_power_of_two());
        let total = (num_sets as usize) * ways;
        Cache {
            block_bits: block_bytes.trailing_zeros(),
            set_mask: num_sets - 1,
            ways,
            lines: vec![0; total],
            stamps: vec![0; total],
            clock: 0,
            last_block: u64::MAX,
            stats: CacheStats::default(),
        }
    }

    /// A 256-entry 4-way TLB over 4 KB pages (the paper's configuration).
    #[must_use]
    pub fn tlb_256_4way() -> Cache {
        Cache::with_sets(64, 4, 4096)
    }

    /// Looks up the block containing `addr`, filling on miss. Returns
    /// `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let block = addr >> self.block_bits;
        if block == self.last_block {
            self.stats.hits += 1;
            return true;
        }
        self.access_cold(block)
    }

    fn access_cold(&mut self, block: u64) -> bool {
        self.last_block = block;
        let set = (block & self.set_mask) as usize;
        let base = set * self.ways;
        let lines = &mut self.lines[base..base + self.ways];
        let stamps = &mut self.stamps[base..base + self.ways];
        self.clock += 1;
        let tag = block + 1;

        if let Some(way) = lines.iter().position(|&t| t == tag) {
            stamps[way] = self.clock;
            self.stats.hits += 1;
            true
        } else {
            // Miss: evict the least-recently-used way (smallest stamp;
            // never-used ways carry stamp 0 and fill first).
            let victim = stamps
                .iter()
                .enumerate()
                .min_by_key(|&(_, &s)| s)
                .map(|(w, _)| w)
                .expect("ways > 0");
            lines[victim] = tag;
            stamps[victim] = self.clock;
            self.stats.misses += 1;
            false
        }
    }

    /// Records a hit without a lookup. Callers (the hierarchy's
    /// repeat-access fast path) use this only when the hit is already
    /// proven — the block was the most recent access and nothing touched
    /// this cache since — so the LRU rotation is a no-op and only the
    /// counter moves.
    #[inline]
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Whether the block containing `addr` is currently resident (no state
    /// change, no stats).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> self.block_bits;
        let set = (block & self.set_mask) as usize;
        let base = set * self.ways;
        self.lines[base..base + self.ways].contains(&(block + 1))
    }

    /// Accumulated hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Capacity in blocks (diagnostic).
    #[must_use]
    pub fn num_blocks(&self) -> u64 {
        (self.set_mask + 1) * self.ways as u64
    }

    /// Block size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        1 << self.block_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = Cache::new(1024, 4, 32);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x11F)); // same 32-byte block
        assert!(!c.access(0x120)); // next block
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 4 blocks, 4 ways, 1 set: pure LRU stack of depth 4.
        let mut c = Cache::new(128, 4, 32);
        for a in [0u64, 32, 64, 96] {
            assert!(!c.access(a));
        }
        // Touch 0 to make it MRU; next fill must evict 32.
        assert!(c.access(0));
        assert!(!c.access(128));
        assert!(!c.access(32), "LRU line must have been evicted");
        assert!(c.access(0), "MRU line must survive");
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = Cache::new(256, 1, 32); // direct-mapped, 8 sets
        assert!(!c.access(0));
        assert!(!c.access(32));
        assert!(c.access(0));
        assert!(c.access(32));
        // Conflicting block (same set as 0: 8 sets * 32B = 256B stride).
        assert!(!c.access(256));
        assert!(!c.access(0));
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = Cache::new(128, 4, 32);
        c.access(0);
        let before = c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(32));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn tlb_covers_pages() {
        let mut t = Cache::tlb_256_4way();
        assert_eq!(t.num_blocks(), 256);
        assert_eq!(t.block_bytes(), 4096);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FFF));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn paper_geometries_construct() {
        let l1 = Cache::new(32 * 1024, 4, 32);
        assert_eq!(l1.num_blocks(), 1024);
        let l2 = Cache::new(4 * 1024 * 1024, 4, 32);
        assert_eq!(l2.num_blocks(), 131072);
        let tag2k = Cache::new(2 * 1024, 4, 32);
        assert_eq!(tag2k.num_blocks(), 64);
        let tag8k = Cache::new(8 * 1024, 4, 32);
        assert_eq!(tag8k.num_blocks(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Cache::new(3000, 4, 32);
    }

    #[test]
    fn metadata_space_addresses_index_correctly() {
        // Conceptual 64-bit addresses above 4 GB must not alias low ones
        // unless their block bits collide by construction.
        let mut c = Cache::new(128, 4, 32);
        assert!(!c.access(0x1_0000_0000));
        assert!(c.access(0x1_0000_0000));
        assert!(!c.access(0x0000_0000));
    }
}
