/// Checked ratio: `num / den` as `f64`, or `0.0` when `den` is zero.
///
/// Every ratio the simulator renders (miss ratios, hit ratios, page and
/// compression fractions) routes through this one helper so a structure
/// that was never touched — an untouched tag cache under malloc-only
/// mode, or an unsampled structure under `HierPath::Sampled` — renders
/// `0.0` everywhere instead of `NaN`.
#[must_use]
pub fn checked_ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Hit/miss counters for one cache array.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed (and filled).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; `0` when there were no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        checked_ratio(self.misses, self.accesses())
    }
}

/// Residency-proof fast-path counters for one cache array. Deliberately
/// *not* part of [`CacheStats`]: the filter is an implementation detail of
/// the event-driven path, and the Event ≡ Walk differential suites compare
/// `CacheStats` between twins whose filters legitimately diverge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Accesses answered by the residency filter alone (no way-scan).
    pub fastpath_hits: u64,
    /// Accesses that fell through to the full way-scan.
    pub fastpath_misses: u64,
}

impl FastPathStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: FastPathStats) {
        self.fastpath_hits += other.fastpath_hits;
        self.fastpath_misses += other.fastpath_misses;
    }
}

/// Slots in the direct-mapped residency filter (power of two). 1024 slots
/// give the filter a reach of 32 KB at the paper's 32-byte blocks — the
/// whole L1 — and 4 MB at TLB page granularity, for ~9 KB per structure.
const FILTER_SLOTS: usize = 1024;

/// A set-associative array with true-LRU replacement.
///
/// Used for data caches, the tag metadata cache *and* TLBs (a TLB is the
/// same structure with 4 KB "blocks"). Addresses are 64-bit because
/// HardBound's metadata spaces are modelled as conceptual regions above the
/// 32-bit program space (see `hardbound_isa::layout`).
///
/// Two lookup paths share the arrays:
///
/// * the **event-driven** path (default) answers accesses through a small
///   direct-mapped *residency filter* — a proof that the block is resident
///   at a known way, maintained by invalidating a block's entry whenever
///   that block is evicted — and scans the set branchlessly (tag compare +
///   stamp min in one pass over a padded, fixed-stride set) on filter
///   misses;
/// * the **walk** path ([`Cache::set_walk`]) is the naive reference scan,
///   kept verbatim as the exactness oracle: the differential suites drive
///   twin caches down both paths and require identical hits, misses,
///   victims and stamps.
#[derive(Clone, Debug)]
pub struct Cache {
    block_bits: u32,
    /// `num_sets - 1`; set counts are asserted powers of two, so indexing
    /// is a mask, never a hardware division (the set-index `%` was the
    /// single hottest operation in the whole simulator).
    set_mask: u64,
    ways: usize,
    /// `ways` rounded up to a power of two: each set occupies `stride`
    /// slots of `lines`/`stamps` so the branchless scan runs over a fixed
    /// power-of-two extent. Padding slots hold line `0` (invalid, never
    /// tag-matches) and stamp `u64::MAX` (never the LRU victim).
    stride: usize,
    /// `lines[set * stride + way]` = block tag **plus one**, or `0` when
    /// invalid. The +1 encoding makes the all-invalid initial state
    /// all-zeroes, so construction is one `calloc` (lazily faulted pages)
    /// instead of a multi-megabyte sentinel memset per machine.
    lines: Vec<u64>,
    /// Last-use timestamp per line; the eviction victim is the line with
    /// the smallest stamp (0 = never used, so invalid ways fill first).
    /// This implements exactly the true-LRU policy the previous
    /// recency-order encoding did — same hits, same misses, same victims
    /// among valid lines — with a one-store hit path.
    stamps: Vec<u64>,
    /// Monotonic use counter feeding `stamps` (64-bit: never wraps).
    clock: u64,
    /// Residency filter: `filter_tags[block % FILTER_SLOTS]` = block tag
    /// plus one (0 = empty), `filter_ways` the way it resides at. The
    /// invariant — an entry `(block, way)` exists only while
    /// `lines[set(block) * stride + way]` still holds that block — is
    /// maintained by installing on every resolved access and erasing the
    /// victim's entry on every eviction, so a filter hit *is* a residency
    /// proof and the whole TLB/L1 way-scan is skipped. Exact: stats and
    /// replacement state evolve identically with or without it.
    filter_tags: Vec<u64>,
    filter_ways: Vec<u8>,
    /// `false` selects the walk (reference) path: no filter, naive scan.
    fast: bool,
    fast_stats: FastPathStats,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_bytes` capacity with `ways` ways and
    /// `block_bytes` blocks.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are powers of two, `ways` divides the number of
    /// blocks, and `ways <= 255`.
    #[must_use]
    pub fn new(size_bytes: u64, ways: usize, block_bytes: u64) -> Cache {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(ways > 0 && ways <= 255);
        let blocks = size_bytes / block_bytes;
        assert!(blocks >= ways as u64, "fewer blocks than ways");
        assert_eq!(blocks % ways as u64, 0);
        let num_sets = blocks / ways as u64;
        Cache::with_sets(num_sets, ways, block_bytes)
    }

    /// Creates a cache from an explicit set count (used for TLBs:
    /// `entries / ways` sets with page-sized blocks).
    ///
    /// # Panics
    ///
    /// Panics unless `num_sets` and `block_bytes` are powers of two.
    #[must_use]
    pub fn with_sets(num_sets: u64, ways: usize, block_bytes: u64) -> Cache {
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(block_bytes.is_power_of_two());
        let stride = ways.next_power_of_two();
        let total = (num_sets as usize) * stride;
        let mut stamps = vec![0; total];
        if stride != ways {
            // Padding slots must never win the stamp-min victim scan.
            for set in 0..num_sets as usize {
                for pad in ways..stride {
                    stamps[set * stride + pad] = u64::MAX;
                }
            }
        }
        Cache {
            block_bits: block_bytes.trailing_zeros(),
            set_mask: num_sets - 1,
            ways,
            stride,
            lines: vec![0; total],
            stamps,
            clock: 0,
            filter_tags: vec![0; FILTER_SLOTS],
            filter_ways: vec![0; FILTER_SLOTS],
            fast: true,
            fast_stats: FastPathStats::default(),
            stats: CacheStats::default(),
        }
    }

    /// A 256-entry 4-way TLB over 4 KB pages (the paper's configuration).
    #[must_use]
    pub fn tlb_256_4way() -> Cache {
        Cache::with_sets(64, 4, 4096)
    }

    /// Selects the walk (reference) lookup path: the residency filter is
    /// disabled and every access runs the naive early-exit scan. The
    /// differential suites pin the event path's exactness against this.
    pub fn set_walk(&mut self) {
        self.fast = false;
        self.filter_tags.iter_mut().for_each(|t| *t = 0);
    }

    /// Looks up the block containing `addr`, filling on miss. Returns
    /// `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let block = addr >> self.block_bits;
        if self.fast {
            let slot = (block as usize) & (FILTER_SLOTS - 1);
            if self.filter_tags[slot] == block + 1 {
                // Residency proof: the block still sits at the recorded
                // way (its entry would have been erased by the eviction
                // otherwise), so only the recency stamp moves.
                let set = (block & self.set_mask) as usize;
                let way = self.filter_ways[slot] as usize;
                debug_assert_eq!(self.lines[set * self.stride + way], block + 1);
                self.clock += 1;
                self.stamps[set * self.stride + way] = self.clock;
                self.stats.hits += 1;
                self.fast_stats.fastpath_hits += 1;
                return true;
            }
            self.fast_stats.fastpath_misses += 1;
            self.access_scan(block)
        } else {
            self.access_walk(block)
        }
    }

    /// Event-path set scan: one branchless pass over the padded set
    /// computing the tag-match way and the stamp-min victim together (no
    /// early exit, no data-dependent branches in the loop — the shape
    /// the autovectorizer handles). Padding slots never match (line 0)
    /// and never win the victim min (stamp `u64::MAX`).
    fn access_scan(&mut self, block: u64) -> bool {
        let set = (block & self.set_mask) as usize;
        let base = set * self.stride;
        let lines = &mut self.lines[base..base + self.stride];
        let stamps = &mut self.stamps[base..base + self.stride];
        self.clock += 1;
        let tag = block + 1;

        let mut hit_way = usize::MAX;
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for w in 0..lines.len() {
            let line = lines[w];
            let stamp = stamps[w];
            hit_way = if line == tag { w } else { hit_way };
            let better = stamp < best;
            best = if better { stamp } else { best };
            victim = if better { w } else { victim };
        }

        let slot = (block as usize) & (FILTER_SLOTS - 1);
        if hit_way != usize::MAX {
            stamps[hit_way] = self.clock;
            self.filter_tags[slot] = tag;
            self.filter_ways[slot] = hit_way as u8;
            self.stats.hits += 1;
            true
        } else {
            let old = lines[victim];
            if old != 0 {
                // Erase the victim's residency proof — the one write that
                // keeps the filter invariant (entry ⇒ resident at way).
                let oslot = ((old - 1) as usize) & (FILTER_SLOTS - 1);
                if self.filter_tags[oslot] == old {
                    self.filter_tags[oslot] = 0;
                }
            }
            lines[victim] = tag;
            stamps[victim] = self.clock;
            self.filter_tags[slot] = tag;
            self.filter_ways[slot] = victim as u8;
            self.stats.misses += 1;
            false
        }
    }

    /// Walk-path set scan: the naive reference (early-exit tag search,
    /// then `min_by_key` victim selection over the real ways), kept
    /// verbatim as the oracle the event path is differenced against.
    fn access_walk(&mut self, block: u64) -> bool {
        let set = (block & self.set_mask) as usize;
        let base = set * self.stride;
        let lines = &mut self.lines[base..base + self.ways];
        let stamps = &mut self.stamps[base..base + self.ways];
        self.clock += 1;
        let tag = block + 1;

        if let Some(way) = lines.iter().position(|&t| t == tag) {
            stamps[way] = self.clock;
            self.stats.hits += 1;
            true
        } else {
            // Miss: evict the least-recently-used way (smallest stamp;
            // never-used ways carry stamp 0 and fill first).
            let victim = stamps
                .iter()
                .enumerate()
                .min_by_key(|&(_, &s)| s)
                .map(|(w, _)| w)
                .expect("ways > 0");
            lines[victim] = tag;
            stamps[victim] = self.clock;
            self.stats.misses += 1;
            false
        }
    }

    /// Records a hit without a lookup. Callers (the hierarchy's
    /// repeat-access fast path) use this only when the hit is already
    /// proven — the block was the most recent access and nothing touched
    /// this cache since — so the LRU rotation is a no-op and only the
    /// counter moves.
    #[inline]
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Whether the block containing `addr` is currently resident (no state
    /// change, no stats).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> self.block_bits;
        let set = (block & self.set_mask) as usize;
        let base = set * self.stride;
        self.lines[base..base + self.ways].contains(&(block + 1))
    }

    /// Accumulated hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Residency-filter counters (zero on the walk path).
    #[must_use]
    pub fn fast_stats(&self) -> FastPathStats {
        self.fast_stats
    }

    /// Capacity in blocks (diagnostic).
    #[must_use]
    pub fn num_blocks(&self) -> u64 {
        (self.set_mask + 1) * self.ways as u64
    }

    /// Block size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        1 << self.block_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = Cache::new(1024, 4, 32);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x11F)); // same 32-byte block
        assert!(!c.access(0x120)); // next block
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 4 blocks, 4 ways, 1 set: pure LRU stack of depth 4.
        let mut c = Cache::new(128, 4, 32);
        for a in [0u64, 32, 64, 96] {
            assert!(!c.access(a));
        }
        // Touch 0 to make it MRU; next fill must evict 32.
        assert!(c.access(0));
        assert!(!c.access(128));
        assert!(!c.access(32), "LRU line must have been evicted");
        assert!(c.access(0), "MRU line must survive");
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = Cache::new(256, 1, 32); // direct-mapped, 8 sets
        assert!(!c.access(0));
        assert!(!c.access(32));
        assert!(c.access(0));
        assert!(c.access(32));
        // Conflicting block (same set as 0: 8 sets * 32B = 256B stride).
        assert!(!c.access(256));
        assert!(!c.access(0));
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = Cache::new(128, 4, 32);
        c.access(0);
        let before = c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(32));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn tlb_covers_pages() {
        let mut t = Cache::tlb_256_4way();
        assert_eq!(t.num_blocks(), 256);
        assert_eq!(t.block_bytes(), 4096);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FFF));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn paper_geometries_construct() {
        let l1 = Cache::new(32 * 1024, 4, 32);
        assert_eq!(l1.num_blocks(), 1024);
        let l2 = Cache::new(4 * 1024 * 1024, 4, 32);
        assert_eq!(l2.num_blocks(), 131072);
        let tag2k = Cache::new(2 * 1024, 4, 32);
        assert_eq!(tag2k.num_blocks(), 64);
        let tag8k = Cache::new(8 * 1024, 4, 32);
        assert_eq!(tag8k.num_blocks(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Cache::new(3000, 4, 32);
    }

    #[test]
    fn metadata_space_addresses_index_correctly() {
        // Conceptual 64-bit addresses above 4 GB must not alias low ones
        // unless their block bits collide by construction.
        let mut c = Cache::new(128, 4, 32);
        assert!(!c.access(0x1_0000_0000));
        assert!(c.access(0x1_0000_0000));
        assert!(!c.access(0x0000_0000));
    }

    #[test]
    fn filter_answers_repeats_and_survives_conflict_evictions() {
        let mut c = Cache::new(128, 4, 32); // 1 set, 4 ways
        assert!(!c.access(0));
        assert!(c.access(0), "repeat must hit");
        assert!(c.fast_stats().fastpath_hits >= 1, "{:?}", c.fast_stats());
        // Fill the set; block 0 becomes LRU and the next fill evicts it.
        for a in [32u64, 64, 96, 128] {
            assert!(!c.access(a));
        }
        // The filter entry for block 0 must have been erased with the
        // eviction: a repeat access is a genuine miss, not a stale proof.
        assert!(!c.access(0), "evicted block must miss");
    }

    #[test]
    fn walk_path_matches_event_path_exactly() {
        let mut fast = Cache::new(1024, 4, 32);
        let mut walk = Cache::new(1024, 4, 32);
        walk.set_walk();
        let mut x = 0x9e37_79b9u64;
        for i in 0..20_000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let addr = (x >> 16) & 0x7FFF;
            assert_eq!(fast.access(addr), walk.access(addr), "access {i}");
        }
        assert_eq!(fast.stats(), walk.stats());
        assert_eq!(walk.fast_stats(), FastPathStats::default());
        assert!(fast.fast_stats().fastpath_hits > 0);
    }

    #[test]
    fn padded_stride_keeps_lru_for_non_power_of_two_ways() {
        // 3 ways pad to stride 4; the padding slot must never hit and
        // never be chosen as a victim, on either path.
        let mut fast = Cache::with_sets(2, 3, 32);
        let mut walk = Cache::with_sets(2, 3, 32);
        walk.set_walk();
        let mut x = 7u64;
        for i in 0..5_000u64 {
            x = x.wrapping_mul(48271) % 0x7FFF_FFFF;
            let addr = (x & 0x1FF) * 32;
            assert_eq!(fast.access(addr), walk.access(addr), "access {i}");
        }
        assert_eq!(fast.stats(), walk.stats());
    }

    #[test]
    fn checked_ratio_guards_zero_denominators() {
        assert_eq!(checked_ratio(0, 0), 0.0);
        assert_eq!(checked_ratio(5, 0), 0.0);
        assert_eq!(checked_ratio(1, 4), 0.25);
        let untouched = CacheStats::default();
        assert_eq!(untouched.miss_ratio(), 0.0);
    }
}
