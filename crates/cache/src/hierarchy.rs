use crate::set_assoc::{Cache, CacheStats, FastPathStats};

/// Which lookup machinery drives the simulated hierarchy. Mirrors
/// `MetaPath` one layer down: `Event` and `Walk` are *exact* twins —
/// observation-identical stats, stalls and victims, differenced by the
/// proptests — while `Sampled` is explicitly approximate and is excluded
/// from every identity path (result store, wire protocol).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HierPath {
    /// Event-driven fast path (default): residency-proof filters answer
    /// repeat accesses without a way-scan; cold scans are branchless.
    #[default]
    Event,
    /// Naive reference walk of every structure on every access. The
    /// exactness oracle for `Event`, and the escape hatch
    /// (`HB_HIER_FAST=0`) when debugging the fast path itself.
    Walk,
    /// Approximate set-sampled simulation: only accesses whose block
    /// hashes into the 1-in-`period` sample are simulated, each
    /// contributing `period`× its stall. Access *counts* stay exact;
    /// stalls and per-structure hit/miss counters are estimates for
    /// capacity-planning sweeps, never for figures of record.
    Sampled {
        /// Sampling period K (power of two, ≥ 2): 1-in-K blocks simulate.
        period: u32,
    },
}

impl HierPath {
    /// A `Sampled` path with period `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is a power of two and ≥ 2.
    #[must_use]
    pub fn sampled(k: u32) -> HierPath {
        assert!(k.is_power_of_two() && k >= 2, "sample period {k} invalid");
        HierPath::Sampled { period: k }
    }

    /// Whether this path produces approximate (non-identity) results.
    #[must_use]
    pub fn is_sampled(&self) -> bool {
        matches!(self, HierPath::Sampled { .. })
    }
}

/// What kind of access is being made, for stall attribution.
///
/// Figure 5 of the paper splits HardBound's overhead into components; the
/// two memory-system components are "stalling on pointer metadata" (tag
/// and base/bound accesses) and "additional memory latency" (pollution
/// suffered by ordinary data accesses). Classifying every access lets the
/// machine compute both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Ordinary program data (or instruction-inserted software metadata —
    /// the SoftBound comparison treats its explicit metadata traffic as
    /// data, as real software schemes do).
    Data,
    /// HardBound tag metadata (1-bit or 4-bit per word), via the tag cache.
    Tag,
    /// HardBound base/bound shadow space, via the L1 (paper §4.4: "the
    /// base/bound metadata and program data share the primary data cache").
    Shadow,
}

/// Geometry and penalties of the simulated memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HierarchyConfig {
    /// L1 data cache capacity in bytes (paper: 32 KB).
    pub l1_bytes: u64,
    /// L1 associativity (paper: 4).
    pub l1_ways: usize,
    /// L1 miss penalty in cycles (paper: 12).
    pub l1_miss_penalty: u64,
    /// L2 capacity in bytes (paper: 4 MB).
    pub l2_bytes: u64,
    /// L2 associativity (paper: 4).
    pub l2_ways: usize,
    /// L2 miss penalty in cycles (paper: 200).
    pub l2_miss_penalty: u64,
    /// Block size in bytes for all caches (paper: 32).
    pub block_bytes: u64,
    /// TLB entries (paper: 256, 4-way, 4 KB pages).
    pub tlb_entries: u64,
    /// TLB associativity.
    pub tlb_ways: usize,
    /// TLB miss penalty in cycles (paper: 12).
    pub tlb_miss_penalty: u64,
    /// Tag metadata cache capacity in bytes (paper: 2 KB for 1-bit tags,
    /// 8 KB for the 4-bit external encoding).
    pub tag_cache_bytes: u64,
    /// Tag cache associativity (paper: 4).
    pub tag_cache_ways: usize,
}

impl Default for HierarchyConfig {
    /// The paper's §5.1 configuration with the 2 KB tag cache.
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            l1_miss_penalty: 12,
            l2_bytes: 4 * 1024 * 1024,
            l2_ways: 4,
            l2_miss_penalty: 200,
            block_bytes: 32,
            tlb_entries: 256,
            tlb_ways: 4,
            tlb_miss_penalty: 12,
            tag_cache_bytes: 2 * 1024,
            tag_cache_ways: 4,
        }
    }
}

impl HierarchyConfig {
    /// The paper configuration with an 8 KB tag cache (external 4-bit
    /// encoding).
    #[must_use]
    pub fn with_tag_cache_bytes(mut self, bytes: u64) -> HierarchyConfig {
        self.tag_cache_bytes = bytes;
        self
    }

    /// Every field as a `u64`, in **pinned declaration order** — the one
    /// list both the stable fingerprint and the wire codec serialize, so
    /// a new field added here (and in [`HierarchyConfig::from_words`])
    /// automatically reaches both byte formats. Changing the order or
    /// length is a format change: bump the fingerprint and wire versions.
    #[must_use]
    pub fn to_words(&self) -> [u64; 12] {
        [
            self.l1_bytes,
            self.l1_ways as u64,
            self.l1_miss_penalty,
            self.l2_bytes,
            self.l2_ways as u64,
            self.l2_miss_penalty,
            self.block_bytes,
            self.tlb_entries,
            self.tlb_ways as u64,
            self.tlb_miss_penalty,
            self.tag_cache_bytes,
            self.tag_cache_ways as u64,
        ]
    }

    /// Checks the invariants [`Hierarchy::new`] (and the [`Cache`]
    /// constructors under it) would otherwise `assert!`: every cache's
    /// size and the block size are powers of two, way counts are in
    /// `1..=255` and divide the block count, and the TLB's set count is a
    /// power of two. Untrusted configurations (the `hbserve` wire
    /// protocol) are validated with this before any machine is built, so
    /// a malformed request is a rejection, not a worker panic.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let cache = |name: &str, bytes: u64, ways: usize| -> Result<(), String> {
            if !bytes.is_power_of_two() {
                return Err(format!("{name} size {bytes} is not a power of two"));
            }
            if !self.block_bytes.is_power_of_two() {
                return Err(format!(
                    "block size {} is not a power of two",
                    self.block_bytes
                ));
            }
            if ways == 0 || ways > 255 {
                return Err(format!("{name} way count {ways} outside 1..=255"));
            }
            let blocks = bytes / self.block_bytes;
            if blocks < ways as u64 || blocks % ways as u64 != 0 {
                return Err(format!(
                    "{name}: {blocks} blocks do not fill {ways}-way sets"
                ));
            }
            Ok(())
        };
        cache("L1", self.l1_bytes, self.l1_ways)?;
        cache("tag cache", self.tag_cache_bytes, self.tag_cache_ways)?;
        cache("L2", self.l2_bytes, self.l2_ways)?;
        if self.tlb_ways == 0 || self.tlb_ways > 255 {
            return Err(format!("TLB way count {} outside 1..=255", self.tlb_ways));
        }
        if self.tlb_entries % self.tlb_ways as u64 != 0 {
            // sets = entries / ways rounds down, so without this check a
            // non-dividing way count could *validate* (truncated set count
            // happens to be a power of two) yet build a smaller TLB than
            // requested — e.g. 387 entries / 6 ways would silently become
            // a 384-entry structure.
            return Err(format!(
                "TLB: {} entries do not divide into {}-way sets (would silently truncate to {} entries)",
                self.tlb_entries,
                self.tlb_ways,
                (self.tlb_entries / self.tlb_ways as u64) * self.tlb_ways as u64
            ));
        }
        let sets = self.tlb_entries / self.tlb_ways as u64;
        if !sets.is_power_of_two() {
            return Err(format!(
                "TLB set count {sets} ({} entries / {} ways) is not a power of two",
                self.tlb_entries, self.tlb_ways
            ));
        }
        Ok(())
    }

    /// Inverse of [`HierarchyConfig::to_words`]; `None` when a
    /// way-count word does not fit this target's `usize`.
    #[must_use]
    pub fn from_words(words: [u64; 12]) -> Option<HierarchyConfig> {
        Some(HierarchyConfig {
            l1_bytes: words[0],
            l1_ways: usize::try_from(words[1]).ok()?,
            l1_miss_penalty: words[2],
            l2_bytes: words[3],
            l2_ways: usize::try_from(words[4]).ok()?,
            l2_miss_penalty: words[5],
            block_bytes: words[6],
            tlb_entries: words[7],
            tlb_ways: usize::try_from(words[8]).ok()?,
            tlb_miss_penalty: words[9],
            tag_cache_bytes: words[10],
            tag_cache_ways: usize::try_from(words[11]).ok()?,
        })
    }
}

/// Per-class stall accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Accesses classified as ordinary data.
    pub data_accesses: u64,
    /// Stall cycles suffered by data accesses.
    pub data_stall_cycles: u64,
    /// Tag metadata accesses.
    pub tag_accesses: u64,
    /// Stall cycles suffered by tag accesses.
    pub tag_stall_cycles: u64,
    /// Base/bound shadow accesses.
    pub shadow_accesses: u64,
    /// Stall cycles suffered by shadow accesses.
    pub shadow_stall_cycles: u64,
}

impl HierarchyStats {
    /// Total stall cycles attributed to HardBound metadata (tag + shadow) —
    /// the paper's "stalling on pointer metadata" component.
    #[must_use]
    pub fn metadata_stall_cycles(&self) -> u64 {
        self.tag_stall_cycles + self.shadow_stall_cycles
    }

    /// Total stall cycles across all classes.
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.data_stall_cycles + self.tag_stall_cycles + self.shadow_stall_cycles
    }
}

/// Aggregate fast-path/sampling counters across the whole hierarchy —
/// the numbers behind `hb_hier_fastpath_{hits,misses}` and
/// `hb_hier_sampled_sets`. Kept apart from [`HierarchyStats`]: these
/// describe *how* the simulation ran, not what it observed, and the
/// Event ≡ Walk identity suites must be free to compare observations
/// between twins whose machinery legitimately differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierFastStats {
    /// Accesses answered by a residency filter alone, summed over every
    /// structure (dTLB, L1, tag TLB, tag cache, L2).
    pub fastpath_hits: u64,
    /// Accesses that fell through a filter to the full way-scan.
    pub fastpath_misses: u64,
    /// Accesses simulated by the `Sampled` path (each standing in for
    /// `period` accesses' worth of stall).
    pub sampled_sets: u64,
}

/// The simulated memory system: L1 data cache, tag metadata cache, shared
/// L2, and a TLB per first-level structure (paper Figure 4).
#[derive(Clone, Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    path: HierPath,
    /// `period - 1` for `Sampled`; an access is in the sample iff the low
    /// bits of its block index are all zero under this mask. Zero (every
    /// access sampled) outside `Sampled` mode, but unused there.
    sample_mask: u64,
    sampled_sets: u64,
    l1d: Cache,
    tag_cache: Cache,
    l2: Cache,
    dtlb: Cache,
    tag_tlb: Cache,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Builds the hierarchy for `cfg` on the default (event-driven) path.
    #[must_use]
    pub fn new(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy::with_path(cfg, HierPath::Event)
    }

    /// Builds the hierarchy for `cfg` on an explicit [`HierPath`].
    #[must_use]
    pub fn with_path(cfg: HierarchyConfig, path: HierPath) -> Hierarchy {
        let mut h = Hierarchy {
            l1d: Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.block_bytes),
            tag_cache: Cache::new(cfg.tag_cache_bytes, cfg.tag_cache_ways, cfg.block_bytes),
            l2: Cache::new(cfg.l2_bytes, cfg.l2_ways, cfg.block_bytes),
            dtlb: Cache::with_sets(cfg.tlb_entries / cfg.tlb_ways as u64, cfg.tlb_ways, 4096),
            tag_tlb: Cache::with_sets(cfg.tlb_entries / cfg.tlb_ways as u64, cfg.tlb_ways, 4096),
            stats: HierarchyStats::default(),
            path,
            sample_mask: 0,
            sampled_sets: 0,
            cfg,
        };
        match path {
            HierPath::Event => {}
            HierPath::Walk => {
                h.l1d.set_walk();
                h.tag_cache.set_walk();
                h.l2.set_walk();
                h.dtlb.set_walk();
                h.tag_tlb.set_walk();
            }
            HierPath::Sampled { period } => {
                assert!(
                    period.is_power_of_two() && period >= 2,
                    "sample period {period} invalid"
                );
                h.sample_mask = u64::from(period) - 1;
            }
        }
        h
    }

    /// The active lookup path.
    #[must_use]
    pub fn path(&self) -> HierPath {
        self.path
    }

    /// Whether the block containing `addr` is in the 1-in-K sample.
    ///
    /// Keyed on the block index's **low bits** — which are exactly the
    /// set-index bits of the block-grained structures (`set = block &
    /// set_mask`, and `period` never exceeds a set count). A sampled set
    /// therefore receives its *complete* access stream, with full
    /// intra-set contention, while unsampled sets receive nothing: this
    /// is what makes set sampling near-unbiased. A hashed or per-access
    /// sample would thin every set's stream instead, systematically
    /// under-simulating conflict misses and biasing stalls low. The known
    /// residual limitation is the classic one: a stream strided by a
    /// multiple of `period` blocks lands all-or-nothing in the sample.
    #[inline]
    fn in_sample(&self, addr: u64) -> bool {
        (addr / self.cfg.block_bytes) & self.sample_mask == 0
    }

    /// Performs one access of `class` at conceptual address `addr`,
    /// returning the stall cycles it incurs. Loads and stores are charged
    /// identically (write-allocate, penalties dominated by the fill).
    ///
    /// On the `Sampled` path only 1-in-K blocks are simulated; a sampled
    /// access contributes K× its stall (to the return value and the class
    /// stall counters alike) and an unsampled access contributes zero
    /// stall and no structure traffic. Class access *counts* stay exact.
    pub fn access(&mut self, class: AccessClass, addr: u64) -> u64 {
        let mut scale = 1;
        if let HierPath::Sampled { period } = self.path {
            if self.in_sample(addr) {
                self.sampled_sets += 1;
                scale = u64::from(period);
            } else {
                match class {
                    AccessClass::Data => self.stats.data_accesses += 1,
                    AccessClass::Tag => self.stats.tag_accesses += 1,
                    AccessClass::Shadow => self.stats.shadow_accesses += 1,
                }
                return 0;
            }
        }
        let mut stall = 0;
        match class {
            AccessClass::Data | AccessClass::Shadow => {
                if !self.dtlb.access(addr) {
                    stall += self.cfg.tlb_miss_penalty;
                }
                if !self.l1d.access(addr) {
                    stall += self.cfg.l1_miss_penalty;
                    if !self.l2.access(addr) {
                        stall += self.cfg.l2_miss_penalty;
                    }
                }
            }
            AccessClass::Tag => {
                if !self.tag_tlb.access(addr) {
                    stall += self.cfg.tlb_miss_penalty;
                }
                if !self.tag_cache.access(addr) {
                    stall += self.cfg.l1_miss_penalty;
                    if !self.l2.access(addr) {
                        stall += self.cfg.l2_miss_penalty;
                    }
                }
            }
        }
        stall *= scale;
        match class {
            AccessClass::Data => {
                self.stats.data_accesses += 1;
                self.stats.data_stall_cycles += stall;
            }
            AccessClass::Tag => {
                self.stats.tag_accesses += 1;
                self.stats.tag_stall_cycles += stall;
            }
            AccessClass::Shadow => {
                self.stats.shadow_accesses += 1;
                self.stats.shadow_stall_cycles += stall;
            }
        }
        stall
    }

    /// Fused charge for the common load/store shape: one data access at
    /// `data_addr` followed by one tag-metadata access at `tag_addr`, in a
    /// single call returning the combined stall. Delegates to
    /// [`Hierarchy::access`] so there is exactly one definition of the
    /// penalty model — the shared-L2 ordering (data fill lands before the
    /// tag fill probes) falls out of the sequencing, and the unit test
    /// below pins the equivalence against any future divergence.
    #[inline]
    pub fn access_pair(&mut self, data_addr: u64, tag_addr: u64) -> u64 {
        self.access(AccessClass::Data, data_addr) + self.access(AccessClass::Tag, tag_addr)
    }

    /// Charges a data access that is a proven repeat of the previous data
    /// access's block (with no intervening dTLB/L1 traffic): both
    /// first-level structures hit, zero stall, identical statistics to the
    /// full [`Hierarchy::access`] walk. On the `Sampled` path only the
    /// (exact) class access counter moves, matching what `access` does for
    /// out-of-sample traffic.
    #[inline]
    pub fn note_data_repeat(&mut self) {
        if !self.path.is_sampled() {
            self.dtlb.note_hit();
            self.l1d.note_hit();
        }
        self.stats.data_accesses += 1;
    }

    /// [`Hierarchy::note_data_repeat`] for the tag-metadata structures.
    #[inline]
    pub fn note_tag_repeat(&mut self) {
        if !self.path.is_sampled() {
            self.tag_tlb.note_hit();
            self.tag_cache.note_hit();
        }
        self.stats.tag_accesses += 1;
    }

    /// Accumulated per-class stall statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Hit/miss counters of the L1 data cache.
    #[must_use]
    pub fn l1_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// Hit/miss counters of the tag metadata cache.
    #[must_use]
    pub fn tag_cache_stats(&self) -> CacheStats {
        self.tag_cache.stats()
    }

    /// Hit/miss counters of the shared L2.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Hit/miss counters of the data TLB.
    #[must_use]
    pub fn dtlb_stats(&self) -> CacheStats {
        self.dtlb.stats()
    }

    /// Aggregate residency-filter and sampling counters over every
    /// structure in the hierarchy.
    #[must_use]
    pub fn fast_stats(&self) -> HierFastStats {
        let mut f = FastPathStats::default();
        f.absorb(self.dtlb.fast_stats());
        f.absorb(self.l1d.fast_stats());
        f.absorb(self.tag_tlb.fast_stats());
        f.absorb(self.tag_cache.fast_stats());
        f.absorb(self.l2.fast_stats());
        HierFastStats {
            fastpath_hits: f.fastpath_hits,
            fastpath_misses: f.fastpath_misses,
            sampled_sets: self.sampled_sets,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_data_access_pays_tlb_l1_l2() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        // Cold: TLB miss (12) + L1 miss (12) + L2 miss (200).
        assert_eq!(h.access(AccessClass::Data, 0x1000), 224);
        // Warm: everything hits.
        assert_eq!(h.access(AccessClass::Data, 0x1000), 0);
        // Same page, next block: TLB hits, L1 misses, L2 misses.
        assert_eq!(h.access(AccessClass::Data, 0x1020), 212);
    }

    #[test]
    fn tag_accesses_use_tag_cache_and_shared_l2() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let tag_addr = 0x3_0000_0000u64;
        assert_eq!(h.access(AccessClass::Tag, tag_addr), 224);
        assert_eq!(h.access(AccessClass::Tag, tag_addr), 0);
        // The block now lives in L2: a conflicting tag line would refill
        // from L2 at 12 cycles, not 212. Force an eviction by sweeping the
        // tag cache's 64 blocks * 16 sets... simpler: a second cold block
        // in the same L2 set region still pays full cost.
        let stats = h.stats();
        assert_eq!(stats.tag_accesses, 2);
        assert_eq!(stats.tag_stall_cycles, 224);
        assert_eq!(stats.data_stall_cycles, 0);
    }

    #[test]
    fn shadow_shares_l1_with_data() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let a = 0x1_0000_0000u64;
        assert_eq!(h.access(AccessClass::Shadow, a), 224);
        // A data access to an address mapping to the same L1 block index
        // but different tag misses; the shadow block itself now hits.
        assert_eq!(h.access(AccessClass::Shadow, a), 0);
        let s = h.stats();
        assert_eq!(s.shadow_accesses, 2);
        assert_eq!(s.metadata_stall_cycles(), 224);
    }

    #[test]
    fn tag_cache_evictions_refill_from_l2() {
        let cfg = HierarchyConfig::default(); // 2 KB tag cache = 64 blocks
        let mut h = Hierarchy::new(cfg);
        let base = 0x3_0000_0000u64;
        // Fill well past the tag cache capacity, within one page (4 KB =
        // 128 blocks > 64 blocks of capacity).
        for i in 0..128u64 {
            h.access(AccessClass::Tag, base + i * 32);
        }
        // Re-access the first block: evicted from the 2 KB tag cache but
        // resident in the 4 MB L2 → pays exactly the L1-miss penalty.
        let stall = h.access(AccessClass::Tag, base);
        assert_eq!(stall, cfg.l1_miss_penalty);
    }

    #[test]
    fn access_pair_is_identical_to_sequential_accesses() {
        // Drive one hierarchy with fused pairs and a twin with the two
        // separate calls over a mixed address stream; every observable —
        // per-class stats, per-structure hit/miss counters, and the
        // returned stalls — must match, including L2 interaction (tag
        // blocks evicting data blocks and vice versa).
        let mut fused = Hierarchy::new(HierarchyConfig::default());
        let mut split = Hierarchy::new(HierarchyConfig::default());
        let mut x = 0x2458_1f3du64;
        for i in 0..4000u64 {
            // Pseudo-random data addresses over 1 MB, derived tag address.
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let data = (x >> 16) & 0xF_FFFF;
            let tag = 0x3_0000_0000 + (data >> 5);
            let a = fused.access_pair(data, tag);
            let b = split.access(AccessClass::Data, data) + split.access(AccessClass::Tag, tag);
            assert_eq!(a, b, "stall divergence at access {i}");
        }
        assert_eq!(fused.stats(), split.stats());
        assert_eq!(fused.l1_stats(), split.l1_stats());
        assert_eq!(fused.tag_cache_stats(), split.tag_cache_stats());
        assert_eq!(fused.l2_stats(), split.l2_stats());
        assert_eq!(fused.dtlb_stats(), split.dtlb_stats());
    }

    #[test]
    fn stats_accumulate_per_class() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.access(AccessClass::Data, 0x100);
        h.access(AccessClass::Tag, 0x3_0000_0000);
        h.access(AccessClass::Shadow, 0x1_0000_0000);
        let s = h.stats();
        assert_eq!(s.data_accesses, 1);
        assert_eq!(s.tag_accesses, 1);
        assert_eq!(s.shadow_accesses, 1);
        assert_eq!(
            s.total_stall_cycles(),
            s.data_stall_cycles + s.metadata_stall_cycles()
        );
    }

    #[test]
    fn event_path_is_identical_to_walk_path() {
        // Twin hierarchies on the two exact paths over a mixed
        // Data/Tag/Shadow stream: every returned stall and every
        // observable counter must match. (The proptest in tests/prop.rs
        // re-runs this shape over random geometries and streams.)
        let mut event = Hierarchy::with_path(HierarchyConfig::default(), HierPath::Event);
        let mut walk = Hierarchy::with_path(HierarchyConfig::default(), HierPath::Walk);
        let mut x = 0x0bad_cafeu64;
        for i in 0..6000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let addr = (x >> 16) & 0xF_FFFF;
            let class = match x % 3 {
                0 => AccessClass::Data,
                1 => AccessClass::Tag,
                _ => AccessClass::Shadow,
            };
            let addr = match class {
                AccessClass::Data => addr,
                AccessClass::Tag => 0x3_0000_0000 + (addr >> 5),
                AccessClass::Shadow => 0x1_0000_0000 + addr,
            };
            assert_eq!(
                event.access(class, addr),
                walk.access(class, addr),
                "stall divergence at access {i}"
            );
        }
        assert_eq!(event.stats(), walk.stats());
        assert_eq!(event.l1_stats(), walk.l1_stats());
        assert_eq!(event.tag_cache_stats(), walk.tag_cache_stats());
        assert_eq!(event.l2_stats(), walk.l2_stats());
        assert_eq!(event.dtlb_stats(), walk.dtlb_stats());
        // And the machinery counters prove which path actually ran.
        assert!(event.fast_stats().fastpath_hits > 0);
        assert_eq!(walk.fast_stats(), HierFastStats::default());
    }

    #[test]
    fn validate_rejects_non_dividing_tlb_ways() {
        // Regression: 387 entries / 6 ways truncates to 64 sets — a power
        // of two — so the old validator accepted it and Hierarchy::new
        // silently built a 384-entry TLB.
        let cfg = HierarchyConfig {
            tlb_entries: 387,
            tlb_ways: 6,
            ..HierarchyConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("387 entries do not divide"), "{err}");
        assert!(err.contains("384"), "{err}");
        assert!(HierarchyConfig::default().validate().is_ok());
    }

    #[test]
    fn sampled_path_keeps_counts_exact_and_estimates_stalls() {
        let mut exact = Hierarchy::new(HierarchyConfig::default());
        let mut sampled = Hierarchy::with_path(HierarchyConfig::default(), HierPath::sampled(8));
        let mut x = 0x5eed_5eedu64;
        for _ in 0..40_000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let data = (x >> 16) & 0x1F_FFFF;
            exact.access(AccessClass::Data, data);
            sampled.access(AccessClass::Data, data);
            let tag = 0x3_0000_0000 + (data >> 5);
            exact.access(AccessClass::Tag, tag);
            sampled.access(AccessClass::Tag, tag);
        }
        let e = exact.stats();
        let s = sampled.stats();
        // Access counts are exact by contract.
        assert_eq!(e.data_accesses, s.data_accesses);
        assert_eq!(e.tag_accesses, s.tag_accesses);
        // Roughly 1-in-8 accesses actually simulated.
        let f = sampled.fast_stats();
        assert!(f.sampled_sets > 0);
        assert!(f.sampled_sets < 80_000 / 4, "{}", f.sampled_sets);
        // Scaled stalls land near the exact totals on this uniform
        // stream (the bench report measures the real corpus at < 5%;
        // this unit test only pins the scaling is wired at all).
        let exact_total = e.total_stall_cycles() as f64;
        let est_total = s.total_stall_cycles() as f64;
        let rel = (est_total - exact_total).abs() / exact_total;
        assert!(
            rel < 0.25,
            "relative error {rel} (est {est_total} vs {exact_total})"
        );
    }

    #[test]
    fn config_accessors() {
        let cfg = HierarchyConfig::default().with_tag_cache_bytes(8 * 1024);
        let h = Hierarchy::new(cfg);
        assert_eq!(h.config().tag_cache_bytes, 8 * 1024);
        assert_eq!(h.l1_stats().accesses(), 0);
        assert_eq!(h.tag_cache_stats().accesses(), 0);
        assert_eq!(h.l2_stats().accesses(), 0);
        assert_eq!(h.dtlb_stats().accesses(), 0);
    }
}
