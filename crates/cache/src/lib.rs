//! Cache and TLB models for the HardBound memory hierarchy.
//!
//! The paper's simulated hierarchy (§5.1): a 32 KB 4-way set-associative
//! first-level data cache with a 12-cycle miss penalty, a 4 MB 4-way L2
//! with a 200-cycle miss penalty, 4-way 256-entry TLBs with 4 KB pages and
//! a 12-cycle miss penalty, 32-byte blocks everywhere — plus HardBound's
//! **tag metadata cache** (2 KB with 1-bit tags, 8 KB with the external
//! 4-bit encoding), a peer of the L1 that misses into the L2 and has its
//! own TLB (§4.2, Figure 4).
//!
//! [`Cache`] is a generic set-associative LRU array usable for both caches
//! and TLBs; [`Hierarchy`] wires them together and charges stall cycles per
//! access class (`Data`, `Tag`, `Shadow`) so the machine can attribute
//! overhead the way Figure 5 does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
mod set_assoc;

pub use hierarchy::{
    AccessClass, HierFastStats, HierPath, Hierarchy, HierarchyConfig, HierarchyStats,
};
pub use set_assoc::{checked_ratio, Cache, CacheStats, FastPathStats};
