//! Property test: the set-associative LRU cache must agree with a naive
//! reference model (per-set `Vec` ordered by recency).

use hardbound_cache::Cache;
use proptest::prelude::*;

/// Naive reference: each set is a recency-ordered vector of block tags.
struct RefCache {
    block_bits: u32,
    num_sets: u64,
    ways: usize,
    sets: Vec<Vec<u64>>,
}

impl RefCache {
    fn new(num_sets: u64, ways: usize, block_bytes: u64) -> RefCache {
        RefCache {
            block_bits: block_bytes.trailing_zeros(),
            num_sets,
            ways,
            sets: vec![Vec::new(); num_sets as usize],
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let block = addr >> self.block_bits;
        let set = &mut self.sets[(block % self.num_sets) as usize];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.remove(pos);
            set.insert(0, block);
            true
        } else {
            set.insert(0, block);
            set.truncate(self.ways);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_matches_reference_lru(
        sets_log in 0u32..4,
        ways in 1usize..5,
        addrs in prop::collection::vec(0u64..0x4000, 1..400),
    ) {
        let num_sets = 1u64 << sets_log;
        let mut real = Cache::with_sets(num_sets, ways, 32);
        let mut reference = RefCache::new(num_sets, ways, 32);
        for (i, &a) in addrs.iter().enumerate() {
            let got = real.access(a);
            let want = reference.access(a);
            prop_assert_eq!(got, want, "divergence at access {} addr {:#x}", i, a);
        }
        prop_assert_eq!(
            real.stats().accesses(),
            addrs.len() as u64
        );
    }

    #[test]
    fn probe_agrees_with_access_history(
        addrs in prop::collection::vec(0u64..0x800, 1..200),
    ) {
        let mut c = Cache::with_sets(4, 2, 32);
        let mut reference = RefCache::new(4, 2, 32);
        for &a in &addrs {
            // probe must predict exactly what a subsequent access reports.
            let predicted = c.probe(a);
            let hit = c.access(a);
            prop_assert_eq!(predicted, hit);
            reference.access(a);
        }
    }
}
