//! Property test: the set-associative LRU cache must agree with a naive
//! reference model (per-set `Vec` ordered by recency).

use hardbound_cache::{AccessClass, Cache, HierFastStats, HierPath, Hierarchy, HierarchyConfig};
use proptest::prelude::*;

/// Naive reference: each set is a recency-ordered vector of block tags.
struct RefCache {
    block_bits: u32,
    num_sets: u64,
    ways: usize,
    sets: Vec<Vec<u64>>,
}

impl RefCache {
    fn new(num_sets: u64, ways: usize, block_bytes: u64) -> RefCache {
        RefCache {
            block_bits: block_bytes.trailing_zeros(),
            num_sets,
            ways,
            sets: vec![Vec::new(); num_sets as usize],
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let block = addr >> self.block_bits;
        let set = &mut self.sets[(block % self.num_sets) as usize];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.remove(pos);
            set.insert(0, block);
            true
        } else {
            set.insert(0, block);
            set.truncate(self.ways);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_matches_reference_lru(
        sets_log in 0u32..4,
        ways in 1usize..5,
        addrs in prop::collection::vec(0u64..0x4000, 1..400),
    ) {
        let num_sets = 1u64 << sets_log;
        let mut real = Cache::with_sets(num_sets, ways, 32);
        let mut reference = RefCache::new(num_sets, ways, 32);
        for (i, &a) in addrs.iter().enumerate() {
            let got = real.access(a);
            let want = reference.access(a);
            prop_assert_eq!(got, want, "divergence at access {} addr {:#x}", i, a);
        }
        prop_assert_eq!(
            real.stats().accesses(),
            addrs.len() as u64
        );
    }

    #[test]
    fn probe_agrees_with_access_history(
        addrs in prop::collection::vec(0u64..0x800, 1..200),
    ) {
        let mut c = Cache::with_sets(4, 2, 32);
        let mut reference = RefCache::new(4, 2, 32);
        for &a in &addrs {
            // probe must predict exactly what a subsequent access reports.
            let predicted = c.probe(a);
            let hit = c.access(a);
            prop_assert_eq!(predicted, hit);
            reference.access(a);
        }
    }

    /// Twin hierarchies on the two exact paths, driven by the same
    /// pseudo-random mixed Data/Tag/Shadow stream: the event-driven path
    /// (residency filters + branchless scans) must be observation-identical
    /// to the reference walk — per-access returned stalls, `HierarchyStats`,
    /// and every per-structure `CacheStats`.
    #[test]
    fn event_hierarchy_matches_walk_hierarchy(
        big_tag_cache in any::<bool>(),
        stream in prop::collection::vec((0u64..3, 0u64..0x10_0000), 1..1500),
    ) {
        let kb = if big_tag_cache { 8 } else { 2 };
        let cfg = HierarchyConfig::default().with_tag_cache_bytes(kb * 1024);
        let mut event = Hierarchy::with_path(cfg, HierPath::Event);
        let mut walk = Hierarchy::with_path(cfg, HierPath::Walk);
        for (i, &(kind, addr)) in stream.iter().enumerate() {
            let (class, addr) = match kind {
                0 => (AccessClass::Data, addr),
                1 => (AccessClass::Tag, 0x3_0000_0000 + (addr >> 5)),
                _ => (AccessClass::Shadow, 0x1_0000_0000 + addr),
            };
            let a = event.access(class, addr);
            let b = walk.access(class, addr);
            prop_assert_eq!(a, b, "stall divergence at access {} addr {:#x}", i, addr);
        }
        prop_assert_eq!(event.stats(), walk.stats());
        prop_assert_eq!(event.l1_stats(), walk.l1_stats());
        prop_assert_eq!(event.tag_cache_stats(), walk.tag_cache_stats());
        prop_assert_eq!(event.l2_stats(), walk.l2_stats());
        prop_assert_eq!(event.dtlb_stats(), walk.dtlb_stats());
        prop_assert_eq!(walk.fast_stats(), HierFastStats::default());
    }
}
