//! Property suite for the power-of-two latency histogram: merging the
//! per-shard histograms of a cluster must be indistinguishable from one
//! histogram that observed the union of every shard's samples — bucket by
//! bucket — and cumulative counts must be monotone. This is what makes
//! cross-shard latency aggregation (summing `METRICS` scrapes) sound.

use hardbound_telemetry::{Histogram, HistogramSnapshot, HIST_BUCKETS};
use proptest::prelude::*;

fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1u64..1024,
        // Exercise every bucket including the extremes.
        (0u32..64).prop_map(|s| 1u64 << s),
        (0u32..64).prop_map(|s| (1u64 << s).wrapping_sub(1)),
        any::<u64>(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merging_shard_histograms_equals_histogram_of_union(
        shards in prop::collection::vec(
            prop::collection::vec(sample(), 0..50), 1..6),
    ) {
        // One histogram per shard, plus one fed the union of all samples.
        let union = Histogram::default();
        let mut merged = HistogramSnapshot::default();
        for shard_samples in &shards {
            let shard = Histogram::default();
            for &s in shard_samples {
                shard.record(s);
                union.record(s);
            }
            merged.merge(&shard.snapshot());
        }
        let union = union.snapshot();
        prop_assert_eq!(&merged, &union);
        prop_assert_eq!(
            merged.count(),
            shards.iter().map(|s| s.len() as u64).sum::<u64>()
        );

        // Cumulative counts are monotone non-decreasing and end at the
        // total observation count.
        let cum = merged.cumulative();
        for i in 1..HIST_BUCKETS {
            prop_assert!(cum[i] >= cum[i - 1], "bucket {} decreased", i);
        }
        prop_assert_eq!(cum[HIST_BUCKETS - 1], merged.count());
    }
}
