//! The metrics registry: named counters, gauges and power-of-two-bucket
//! latency histograms.
//!
//! Handles are `Arc`-backed: after a one-time lookup in the registry's
//! map, recording is a single relaxed atomic op with no lock and no
//! allocation, cheap enough for the dispatch hot path. Snapshots subtract
//! (`Snapshot::delta`) so tests and the `hbrun --stats` report can reason
//! about "what happened during this run" even though the underlying
//! counters only ever grow.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Clone, Default, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Clone, Default, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Subtracts `n` (wrapping like the additions it undoes).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// A latency histogram with power-of-two buckets.
///
/// Bucket `0` holds the value `0`; bucket `i` (for `i >= 1`) holds values
/// in `[2^(i-1), 2^i)`. [`Histogram::record`] is exactly one relaxed
/// `fetch_add` on the bucket index — count and total are derived at
/// snapshot time, never maintained separately.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

/// Bucket index for a recorded value.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` label).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Records one observation: a single relaxed atomic add.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Relaxed);
    }

    /// Records a duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// A consistent-enough copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.0.buckets[i].load(Relaxed)),
        }
    }
}

/// Immutable bucket counts captured from a [`Histogram`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; see [`bucket_upper`] for bounds.
    pub counts: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another snapshot's counts into this one (e.g. merging the
    /// per-shard histograms of a cluster into one distribution).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
    }

    /// Cumulative counts: `cumulative()[i]` = observations `<=`
    /// [`bucket_upper`]`(i)`. Non-decreasing by construction.
    pub fn cumulative(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0; HIST_BUCKETS];
        let mut acc = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            acc += c;
            out[i] = acc;
        }
        out
    }

    fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].saturating_sub(earlier.counts[i])),
        }
    }
}

type GaugeFn = Arc<dyn Fn() -> u64 + Send + Sync>;

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    GaugeFn(GaugeFn),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) | Metric::GaugeFn(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named-metric registry.
///
/// [`global()`] is the process-wide instance; per-server instances exist
/// too (each `hbserve` [`Server`](../hardbound_serve/net/struct.Server.html)
/// keeps its own so multiple in-process test servers never collide).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Registry {
        Registry {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    fn get_or<T: Clone>(
        &self,
        name: &str,
        make: impl FnOnce() -> (T, Metric),
        read: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        let mut map = self.inner.lock().unwrap();
        if let Some(existing) = map.get(name) {
            return read(existing).unwrap_or_else(|| {
                panic!(
                    "metric {name:?} already registered as a {}",
                    existing.kind()
                )
            });
        }
        let (handle, metric) = make();
        map.insert(name.to_string(), metric);
        handle
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or(
            name,
            || {
                let c = Counter::default();
                (c.clone(), Metric::Counter(c))
            },
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or(
            name,
            || {
                let g = Gauge::default();
                (g.clone(), Metric::Gauge(g))
            },
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.get_or(
            name,
            || {
                let h = Histogram::default();
                (h.clone(), Metric::Histogram(h))
            },
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or replaces) a computed gauge: `f` is evaluated at
    /// snapshot/render time. Keep `f` cheap and deadlock-free — it runs
    /// outside the registry lock but may run on a scrape thread.
    pub fn gauge_fn(&self, name: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.inner
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::GaugeFn(Arc::new(f)));
    }

    /// Captures every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        // Clone the handles out first so gauge closures (which may take
        // other locks, e.g. the global service mutex) never run under the
        // registry lock.
        let handles: Vec<(String, MetricHandle)> = {
            let map = self.inner.lock().unwrap();
            map.iter()
                .map(|(name, m)| {
                    let h = match m {
                        Metric::Counter(c) => MetricHandle::Counter(c.clone()),
                        Metric::Gauge(g) => MetricHandle::Gauge(g.clone()),
                        Metric::GaugeFn(f) => MetricHandle::GaugeFn(f.clone()),
                        Metric::Histogram(h) => MetricHandle::Histogram(h.clone()),
                    };
                    (name.clone(), h)
                })
                .collect()
        };
        let values = handles
            .into_iter()
            .map(|(name, h)| {
                let v = match h {
                    MetricHandle::Counter(c) => Value::Counter(c.get()),
                    MetricHandle::Gauge(g) => Value::Gauge(g.get()),
                    MetricHandle::GaugeFn(f) => Value::Gauge(f()),
                    MetricHandle::Histogram(h) => Value::Histogram(h.snapshot()),
                };
                (name, v)
            })
            .collect();
        Snapshot { values }
    }

    /// Renders every metric in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

enum MetricHandle {
    Counter(Counter),
    Gauge(Gauge),
    GaugeFn(GaugeFn),
    Histogram(Histogram),
}

/// One captured metric value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading (plain or computed).
    Gauge(u64),
    /// A histogram reading.
    Histogram(HistogramSnapshot),
}

/// A point-in-time capture of a [`Registry`].
#[derive(Clone, Default, Debug)]
pub struct Snapshot {
    /// Metric values by name.
    pub values: BTreeMap<String, Value>,
}

impl Snapshot {
    /// The counter named `name`, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(Value::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge named `name`, or 0 if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(Value::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name) {
            Some(Value::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// What happened between `earlier` and `self`: counters and histogram
    /// buckets subtract (saturating, so a metric registered in between
    /// reads as its full value); gauges keep the later reading.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let values = self
            .values
            .iter()
            .map(|(name, v)| {
                let dv = match (v, earlier.values.get(name)) {
                    (Value::Counter(now), Some(Value::Counter(then))) => {
                        Value::Counter(now.saturating_sub(*then))
                    }
                    (Value::Histogram(now), Some(Value::Histogram(then))) => {
                        Value::Histogram(now.delta(then))
                    }
                    (v, _) => v.clone(),
                };
                (name.clone(), dv)
            })
            .collect();
        Snapshot { values }
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// `# TYPE` comments, `name value` samples, histograms as cumulative
    /// `_bucket{le="..."}` series plus `_count`.
    ///
    /// Output is ordered by the **sanitized** metric name (labels within a
    /// histogram family stay in bucket order). The registry map is keyed
    /// by raw names, where `.` sorts before alphanumerics but sanitizes to
    /// `_`, which sorts after — so iterating the map directly would leave
    /// the exposition order dependent on which spelling registered the
    /// metric, and repeated scrapes would not diff cleanly.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut entries: Vec<(String, &Value)> = self
            .values
            .iter()
            .map(|(name, v)| (sanitize(name), v))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (name, v) in entries {
            match v {
                Value::Counter(n) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {n}");
                }
                Value::Gauge(n) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {n}");
                }
                Value::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let cum = h.cumulative();
                    let mut last = 0;
                    for (i, c) in cum.iter().enumerate() {
                        // Elide empty interior buckets to keep scrapes small;
                        // cumulative counts stay correct because each emitted
                        // bucket carries the running total.
                        if *c != last || i == 0 {
                            let _ =
                                writeln!(out, "{name}_bucket{{le=\"{}\"}} {c}", bucket_upper(i));
                            last = *c;
                        }
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Extracts a plain `name value` sample from Prometheus-format text, as
/// produced by [`Snapshot::render`] — the scrape-side complement used by
/// tests and operational scripts.
pub fn scrape_value(text: &str, name: &str) -> Option<u64> {
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        if parts.next() == Some(name) {
            if let Some(v) = parts.next() {
                return v.parse().ok();
            }
        }
    }
    None
}

static GLOBAL: Registry = Registry::new();

/// The process-global registry.
pub fn global() -> &'static Registry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_upper(i)), i, "upper bound of bucket {i}");
        }
        for i in 1..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_upper(i - 1) + 1), i);
        }
    }

    #[test]
    fn registry_handles_are_shared_and_kind_checked() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.snapshot().counter("x"), 3);
        assert!(std::panic::catch_unwind(|| r.gauge("x")).is_err());
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_keeps_gauges() {
        let r = Registry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h");
        c.add(5);
        g.set(10);
        h.record(3);
        let before = r.snapshot();
        c.add(7);
        g.set(4);
        h.record(3);
        h.record(100);
        let d = r.snapshot().delta(&before);
        assert_eq!(d.counter("c"), 7);
        assert_eq!(d.gauge("g"), 4);
        let hd = d.histogram("h").unwrap();
        assert_eq!(hd.count(), 2);
        assert_eq!(hd.counts[bucket_of(3)], 1);
        assert_eq!(hd.counts[bucket_of(100)], 1);
    }

    #[test]
    fn render_is_sorted_by_sanitized_name() {
        // Raw map order would put "grid.cells" (`.` = 0x2e) before
        // "grid_age" (`_` = 0x5f); after sanitizing, "grid_age" must come
        // first. Pin the exact exposition text so any ordering regression
        // shows up as a golden diff.
        let r = Registry::new();
        r.counter("grid.cells").add(7);
        r.gauge("grid_age").set(3);
        r.counter("grid_cells_total").add(9);
        let golden = "# TYPE grid_age gauge\n\
                      grid_age 3\n\
                      # TYPE grid_cells counter\n\
                      grid_cells 7\n\
                      # TYPE grid_cells_total counter\n\
                      grid_cells_total 9\n";
        assert_eq!(r.render(), golden);
        // Repeated scrapes of an idle registry are byte-identical.
        assert_eq!(r.render(), r.render());
    }

    #[test]
    fn render_and_scrape_round_trip() {
        let r = Registry::new();
        r.counter("cells.executed").add(42);
        r.gauge_fn("uptime", || 9);
        r.histogram("lat_us").record(5);
        let text = r.render();
        assert_eq!(scrape_value(&text, "cells_executed"), Some(42));
        assert_eq!(scrape_value(&text, "uptime"), Some(9));
        assert_eq!(scrape_value(&text, "lat_us_count"), Some(1));
        assert!(text.contains("# TYPE cells_executed counter"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 1"));
    }
}
