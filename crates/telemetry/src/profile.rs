//! Cluster-mergeable hot-spot profiles.
//!
//! The block engine attributes retire work to the superblock it executed
//! (see `exec::Engine`): exec count, retired-µop cycles, and bounds checks
//! elided/taken. Those per-block counters land here as a [`Profile`] —
//! a map keyed by `(program fingerprint, function, entry index)`, which is
//! stable across processes because the program fingerprint is the same
//! pinned serialization the result store and wire protocol use. That
//! stability is what makes profiles *mergeable*: every shard of a grid can
//! ship its profile over the `PROFILE` wire verb and the client sums them
//! key-by-key ([`Profile::merge`]) into one cluster-wide profile whose
//! counts equal the per-shard counts exactly — no sampling, no loss.
//!
//! Rendering comes in three forms: a ranked-PC table
//! ([`Profile::render_table`]) for humans, folded-stack text
//! ([`Profile::render_folded`]) that flamegraph tooling consumes directly,
//! and a line-oriented parseable form ([`Profile::to_text`] /
//! [`Profile::from_text`]) that crosses the `hbserve` wire.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Identifies one superblock across processes: the stable program
/// fingerprint (see `core::fingerprint`), the function id, and the entry
/// instruction index of the block within that function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct BlockKey {
    /// Stable program fingerprint (`ProgramId`'s inner hash).
    pub prog: u64,
    /// Function id within the program.
    pub func: u32,
    /// Entry instruction index of the superblock.
    pub entry: u32,
}

/// Counters attributed to one superblock.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BlockStat {
    /// Function name (for rendering; the identity lives in [`BlockKey`]).
    pub name: String,
    /// Times the block was dispatched.
    pub execs: u64,
    /// Simulated cycles attributed to the block: µops retired while
    /// executing it (check and metadata µops included). Hierarchy stall
    /// cycles are accounted globally in `ExecStats`, not per block.
    pub cycles: u64,
    /// Bounds checks elided by the static bounds-check optimizer.
    pub elided: u64,
    /// Bounds checks actually performed.
    pub taken: u64,
}

impl BlockStat {
    fn add(&mut self, other: &BlockStat) {
        if self.name.is_empty() {
            self.name = other.name.clone();
        }
        self.execs += other.execs;
        self.cycles += other.cycles;
        self.elided += other.elided;
        self.taken += other.taken;
    }
}

/// A mergeable per-superblock profile.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Profile {
    /// Per-block counters.
    pub blocks: BTreeMap<BlockKey, BlockStat>,
}

impl Profile {
    /// An empty profile.
    #[must_use]
    pub const fn new() -> Profile {
        Profile {
            blocks: BTreeMap::new(),
        }
    }

    /// Whether any block has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Adds `stat`'s counters to `key`'s entry.
    pub fn record(&mut self, key: BlockKey, stat: &BlockStat) {
        self.blocks.entry(key).or_default().add(stat);
    }

    /// Sums `other` into `self`, key by key. Counts are conserved
    /// exactly: after merging N shard profiles, every block's counters
    /// equal the sum of that block's per-shard counters.
    pub fn merge(&mut self, other: &Profile) {
        for (key, stat) in &other.blocks {
            self.blocks.entry(*key).or_default().add(stat);
        }
    }

    /// Total block dispatches across all blocks.
    #[must_use]
    pub fn total_execs(&self) -> u64 {
        self.blocks.values().map(|s| s.execs).sum()
    }

    /// Total attributed cycles across all blocks.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.blocks.values().map(|s| s.cycles).sum()
    }

    /// Blocks ranked hottest-first (by cycles, then execs, then key — the
    /// key tiebreak keeps the ranking total so renders are deterministic).
    #[must_use]
    pub fn ranked(&self) -> Vec<(&BlockKey, &BlockStat)> {
        let mut rows: Vec<_> = self.blocks.iter().collect();
        rows.sort_by(|a, b| {
            (b.1.cycles, b.1.execs)
                .cmp(&(a.1.cycles, a.1.execs))
                .then_with(|| a.0.cmp(b.0))
        });
        rows
    }

    /// Renders a ranked-PC table of the `limit` hottest blocks
    /// (`limit == 0` means all).
    #[must_use]
    pub fn render_table(&self, limit: usize) -> String {
        use std::fmt::Write as _;
        let total = self.total_cycles().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5}  {:>24}  {:>12}  {:>14}  {:>6}  {:>10}  {:>10}",
            "rank", "block", "execs", "cycles", "cyc%", "elided", "taken"
        );
        let rows = self.ranked();
        let shown = if limit == 0 { rows.len() } else { limit };
        for (rank, (key, s)) in rows.iter().take(shown).enumerate() {
            let label = format!("{}@{}", s.name, key.entry);
            let _ = writeln!(
                out,
                "{:>5}  {:>24}  {:>12}  {:>14}  {:>5.1}%  {:>10}  {:>10}",
                rank + 1,
                label,
                s.execs,
                s.cycles,
                100.0 * s.cycles as f64 / total as f64,
                s.elided,
                s.taken
            );
        }
        if rows.len() > shown {
            let _ = writeln!(out, "  ... {} more blocks", rows.len() - shown);
        }
        out
    }

    /// Renders folded-stack (flamegraph collapse) text: one
    /// `func;func@entry cycles` line per block, deterministic order.
    /// Feed straight to `flamegraph.pl` or `inferno-flamegraph`.
    #[must_use]
    pub fn render_folded(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (key, s) in &self.blocks {
            let _ = writeln!(out, "{};{}@{} {}", s.name, s.name, key.entry, s.cycles);
        }
        out
    }

    /// Serializes to the parseable line form that crosses the `hbserve`
    /// wire: a `hbprof 1` header, then one
    /// `prog func entry execs cycles elided taken name` line per block
    /// (name last so it may contain spaces). Inverse of
    /// [`Profile::from_text`].
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("hbprof 1\n");
        for (key, s) in &self.blocks {
            let _ = writeln!(
                out,
                "{:016x} {} {} {} {} {} {} {}",
                key.prog, key.func, key.entry, s.execs, s.cycles, s.elided, s.taken, s.name
            );
        }
        out
    }

    /// Parses the [`Profile::to_text`] form.
    pub fn from_text(text: &str) -> Result<Profile, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("hbprof 1") => {}
            other => return Err(format!("bad profile header: {other:?}")),
        }
        let mut p = Profile::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(8, ' ');
            let mut field = |what: &str| {
                parts
                    .next()
                    .ok_or_else(|| format!("profile line missing {what}: {line:?}"))
            };
            let prog = u64::from_str_radix(field("prog")?, 16)
                .map_err(|e| format!("bad prog field: {e}"))?;
            let num = |s: &str, what: &str| -> Result<u64, String> {
                s.parse().map_err(|e| format!("bad {what} field: {e}"))
            };
            let func = num(field("func")?, "func")? as u32;
            let entry = num(field("entry")?, "entry")? as u32;
            let execs = num(field("execs")?, "execs")?;
            let cycles = num(field("cycles")?, "cycles")?;
            let elided = num(field("elided")?, "elided")?;
            let taken = num(field("taken")?, "taken")?;
            let name = field("name")?.to_string();
            p.record(
                BlockKey { prog, func, entry },
                &BlockStat {
                    name,
                    execs,
                    cycles,
                    elided,
                    taken,
                },
            );
        }
        Ok(p)
    }
}

/// A lock-protected profile accumulator; [`global()`] is the process-wide
/// instance every enabled engine flushes into at the end of its run.
pub struct SharedProfile {
    inner: Mutex<Profile>,
}

impl SharedProfile {
    /// An empty accumulator.
    #[must_use]
    pub const fn new() -> SharedProfile {
        SharedProfile {
            inner: Mutex::new(Profile::new()),
        }
    }

    /// Sums `p` into the accumulator.
    pub fn add(&self, p: &Profile) {
        self.inner.lock().unwrap().merge(p);
    }

    /// A consistent copy of the accumulated profile (the lock makes a
    /// scrape atomic with respect to engine flushes — no torn reads).
    #[must_use]
    pub fn snapshot(&self) -> Profile {
        self.inner.lock().unwrap().clone()
    }

    /// Takes the accumulated profile, leaving the accumulator empty.
    pub fn take(&self) -> Profile {
        std::mem::take(&mut *self.inner.lock().unwrap())
    }
}

static GLOBAL: SharedProfile = SharedProfile::new();

/// The process-global profile accumulator.
pub fn global() -> &'static SharedProfile {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(name: &str, execs: u64, cycles: u64, elided: u64, taken: u64) -> BlockStat {
        BlockStat {
            name: name.into(),
            execs,
            cycles,
            elided,
            taken,
        }
    }

    fn key(prog: u64, func: u32, entry: u32) -> BlockKey {
        BlockKey { prog, func, entry }
    }

    #[test]
    fn merge_conserves_counts_exactly() {
        let mut shards = Vec::new();
        for i in 0..3u64 {
            let mut p = Profile::new();
            p.record(
                key(0xabc, 0, 0),
                &stat("main", i + 1, 10 * (i + 1), i, 2 * i),
            );
            p.record(key(0xabc, 1, 4), &stat("loop", 5, 50, 0, 5));
            if i == 2 {
                p.record(key(0xdef, 0, 0), &stat("other", 7, 7, 1, 1));
            }
            shards.push(p);
        }
        let mut merged = Profile::new();
        for p in &shards {
            merged.merge(p);
        }
        let per_shard: u64 = shards.iter().map(Profile::total_execs).sum();
        assert_eq!(merged.total_execs(), per_shard);
        let m = &merged.blocks[&key(0xabc, 0, 0)];
        assert_eq!((m.execs, m.cycles, m.elided, m.taken), (6, 60, 3, 6));
        assert_eq!(merged.blocks[&key(0xabc, 1, 4)].execs, 15);
        assert_eq!(merged.blocks[&key(0xdef, 0, 0)].execs, 7);
    }

    #[test]
    fn text_round_trips() {
        let mut p = Profile::new();
        p.record(key(0x1234, 0, 0), &stat("main", 3, 41, 2, 9));
        p.record(key(0x1234, 2, 17), &stat("hot loop", 100, 9000, 64, 36));
        let round = Profile::from_text(&p.to_text()).unwrap();
        assert_eq!(round, p);
        assert_eq!(Profile::from_text("hbprof 1\n").unwrap(), Profile::new());
        assert!(Profile::from_text("hbprof 2\n").is_err());
        assert!(Profile::from_text("hbprof 1\n1234 0 0 3\n").is_err());
    }

    #[test]
    fn table_ranks_by_cycles_and_folded_is_deterministic() {
        let mut p = Profile::new();
        p.record(key(1, 0, 0), &stat("cold", 1, 10, 0, 1));
        p.record(key(1, 1, 8), &stat("hot", 90, 990, 3, 7));
        let table = p.render_table(0);
        let hot_at = table.find("hot@8").unwrap();
        let cold_at = table.find("cold@0").unwrap();
        assert!(hot_at < cold_at, "hot block must rank first:\n{table}");
        assert_eq!(p.render_folded(), "cold;cold@0 10\nhot;hot@8 990\n");
        // Truncation notes how much was elided.
        assert!(p.render_table(1).contains("... 1 more blocks"));
    }

    #[test]
    fn shared_profile_accumulates() {
        let shared = SharedProfile::new();
        let mut p = Profile::new();
        p.record(key(9, 0, 0), &stat("f", 2, 20, 0, 0));
        shared.add(&p);
        shared.add(&p);
        assert_eq!(shared.snapshot().total_execs(), 4);
        assert_eq!(shared.take().total_execs(), 4);
        assert!(shared.snapshot().is_empty());
    }
}
