//! Span-based structured tracing with a JSONL sink.
//!
//! A *trace* is a tree of *spans* sharing one [`TraceId`]; each span is
//! one timed operation (a compile, a block decode, a store lookup, a
//! batch chunk, a remote round trip, a ticket lifecycle stage). Spans are
//! emitted as one JSON object per line to the file named by the
//! `HB_TRACE` environment variable — or to a sink installed
//! programmatically with [`install`], which also lets benchmarks toggle
//! tracing on and off inside one process.
//!
//! Trace context (`trace` + parent span id) crosses the `hbserve` wire:
//! the client stamps each submission, shards run their spans under the
//! client's ids and ship them back with the ticket results, and the
//! client writes them into its own sink — one grid, one merged trace.
//!
//! Every line is a flat JSON object with the fixed keys `trace`, `span`,
//! `parent` (16-hex-digit ids; `parent` is all zeros for a root span),
//! `kind`, `start_us` (wall clock, µs since the Unix epoch) and `dur_us`,
//! plus free-form span fields whose values are non-negative integers or
//! strings. [`SpanEvent::parse`] inverts [`SpanEvent::to_json`] exactly.

use std::fmt;
use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, Once};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::{self, Json};

/// Identifies one distributed trace (e.g. one grid run).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id used as the parent of root spans.
    pub const NONE: SpanId = SpanId(0);
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The trace context that crosses process boundaries: which trace we are
/// in and which span the remote side should parent its spans under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceCtx {
    /// The distributed trace id.
    pub trace: TraceId,
    /// The parent span for the receiving side's root spans.
    pub parent: SpanId,
}

static ID_STATE: AtomicU64 = AtomicU64::new(0);

/// A fresh, process-unique, non-zero 64-bit id (splitmix64 over a
/// time-and-pid-seeded counter).
pub fn fresh_id() -> u64 {
    // The finalizer must hash the *updated* counter, not the previous
    // value a fetch_update would hand back: on the first call the
    // previous value is the unseeded 0, which would make every process's
    // first id the same constant — exactly the id a client and the shard
    // serving it both mint first (pinned by `report/tests/trace_env_cli`).
    let mut cur = ID_STATE.load(Relaxed);
    let seed = loop {
        let next = if cur == 0 {
            let now = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .unwrap_or_default();
            (now.as_nanos() as u64 ^ ((std::process::id() as u64) << 33)) | 1
        } else {
            cur.wrapping_add(0x9e37_79b9_7f4a_7c15)
        };
        match ID_STATE.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
            Ok(_) => break next,
            Err(v) => cur = v,
        }
    };
    // splitmix64 finalizer.
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z = z ^ (z >> 31);
    z | 1 // never zero: zero means "no id"
}

/// Starts a new trace.
pub fn new_trace() -> TraceId {
    TraceId(fresh_id())
}

/// A span field value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Field {
    /// A non-negative integer (counts, ids, indexes).
    U64(u64),
    /// A string (addresses, names).
    Str(String),
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

/// One completed span, ready to serialize.
#[derive(Clone, PartialEq, Debug)]
pub struct SpanEvent {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The parent span ([`SpanId::NONE`] for roots).
    pub parent: SpanId,
    /// What kind of operation this span timed (`compile`, `decode`,
    /// `store_lookup`, `chunk`, `remote_rt`, `ticket_exec`, ...).
    pub kind: String,
    /// Wall-clock start, µs since the Unix epoch.
    pub start_us: u64,
    /// Duration in µs (measured on a monotonic clock).
    pub dur_us: u64,
    /// Free-form span fields (`ticket`, `shard`, `cells`, ...).
    pub fields: Vec<(String, Field)>,
}

impl SpanEvent {
    /// The `u64` field named `name`, if present.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        self.fields.iter().find_map(|(k, v)| match v {
            Field::U64(n) if k == name => Some(*n),
            _ => None,
        })
    }

    /// Wall-clock end of the span, µs since the Unix epoch.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }

    /// Serializes to one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(112 + 24 * self.fields.len());
        self.write_json(&mut out);
        out
    }

    /// The serializer behind [`SpanEvent::to_json`] — writes straight
    /// into `out` rather than building a [`Json`] tree, because [`emit`]
    /// sits on the decode path and the tree costs an allocation per key.
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":\"{}\",\"kind\":",
            self.trace, self.span, self.parent
        );
        json::write_escaped(out, &self.kind);
        let _ = write!(
            out,
            ",\"start_us\":{},\"dur_us\":{}",
            self.start_us, self.dur_us
        );
        for (k, v) in &self.fields {
            out.push(',');
            json::write_escaped(out, k);
            out.push(':');
            match v {
                Field::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                Field::Str(s) => json::write_escaped(out, s),
            }
        }
        out.push('}');
    }

    /// Parses one JSONL line back into a span event; inverse of
    /// [`SpanEvent::to_json`].
    pub fn parse(line: &str) -> Result<SpanEvent, String> {
        let v = json::parse(line)?;
        let pairs = match &v {
            Json::Obj(pairs) => pairs,
            _ => return Err("span line is not a JSON object".into()),
        };
        let id = |key: &str| -> Result<u64, String> {
            let s = v
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing id field {key:?}"))?;
            u64::from_str_radix(s, 16).map_err(|e| format!("bad id {key:?}: {e}"))
        };
        let mut ev = SpanEvent {
            trace: TraceId(id("trace")?),
            span: SpanId(id("span")?),
            parent: SpanId(id("parent")?),
            kind: v
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("missing kind")?
                .to_string(),
            start_us: v
                .get("start_us")
                .and_then(Json::as_u64)
                .ok_or("missing start_us")?,
            dur_us: v
                .get("dur_us")
                .and_then(Json::as_u64)
                .ok_or("missing dur_us")?,
            fields: Vec::new(),
        };
        for (k, jv) in pairs {
            if matches!(
                k.as_str(),
                "trace" | "span" | "parent" | "kind" | "start_us" | "dur_us"
            ) {
                continue;
            }
            let field = match jv {
                Json::Int(_) => Field::U64(jv.as_u64().ok_or("negative span field")?),
                Json::Str(s) => Field::Str(s.clone()),
                other => return Err(format!("unsupported span field value {other:?}")),
            };
            ev.fields.push((k.clone(), field));
        }
        Ok(ev)
    }
}

/// Wall-clock now, µs since the Unix epoch.
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Times a span: allocates the span id up front (so it can be shipped to
/// a remote side as the parent) and measures duration on a monotonic
/// clock when finished.
pub struct SpanTimer {
    trace: TraceId,
    span: SpanId,
    parent: SpanId,
    kind: &'static str,
    start_us: u64,
    t0: Instant,
}

impl SpanTimer {
    /// Starts the clock.
    pub fn start(trace: TraceId, parent: SpanId, kind: &'static str) -> SpanTimer {
        SpanTimer {
            trace,
            span: SpanId(fresh_id()),
            parent,
            kind,
            start_us: now_us(),
            t0: Instant::now(),
        }
    }

    /// This span's id (hand it to children / the remote side).
    pub fn span(&self) -> SpanId {
        self.span
    }

    /// The trace this span belongs to.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Stops the clock and builds the event (the caller emits or buffers
    /// it).
    pub fn finish(self, fields: Vec<(String, Field)>) -> SpanEvent {
        SpanEvent {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            kind: self.kind.to_string(),
            start_us: self.start_us,
            dur_us: self.t0.elapsed().as_micros() as u64,
            fields,
        }
    }

    /// Stops the clock and writes the event to the sink.
    pub fn emit(self, fields: Vec<(String, Field)>) {
        emit(&self.finish(fields));
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<BufWriter<std::fs::File>>> = Mutex::new(None);
static ENV_INIT: Once = Once::new();

fn ensure_env_init() {
    // Must call `open_sink`, never `install`: `install` re-enters
    // `ENV_INIT.call_once`, and a recursive `call_once` from inside this
    // in-flight closure deadlocks (the `HB_TRACE`-env path of every
    // binary; pinned by `report/tests/trace_env_cli.rs`).
    ENV_INIT.call_once(|| {
        if let Ok(path) = std::env::var("HB_TRACE") {
            if !path.is_empty() {
                if let Err(e) = open_sink(Path::new(&path)) {
                    eprintln!("warning: HB_TRACE={path}: {e}; tracing disabled");
                }
            }
        }
    });
}

/// Whether span emission is on. Reads `HB_TRACE` once on first call;
/// [`install`] / [`disable`] override it at runtime.
#[inline]
pub fn enabled() -> bool {
    ensure_env_init();
    ENABLED.load(Relaxed)
}

fn open_sink(path: &Path) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    *SINK.lock().unwrap() = Some(BufWriter::new(file));
    ENABLED.store(true, Relaxed);
    install_panic_flush();
    Ok(())
}

static PANIC_FLUSH: Once = Once::new();

/// Chains a panic hook that flushes the JSONL sink before unwinding
/// proceeds, so a trap-path assert or `HB_OPT_AUDIT` panic cannot strand
/// the final spans in the `BufWriter`. Installed once, only after a sink
/// exists — a process that never traces keeps the stock hook.
fn install_panic_flush() {
    PANIC_FLUSH.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            flush();
            prev(info);
        }));
    });
}

/// Opens (appending) a JSONL sink at `path` and enables tracing,
/// superseding any `HB_TRACE` setting.
pub fn install(path: &Path) -> std::io::Result<()> {
    // Consume the env hook so a later `enabled()` cannot re-install over us.
    ENV_INIT.call_once(|| {});
    open_sink(path)
}

/// Turns span emission off and flushes + closes the sink.
pub fn disable() {
    ENV_INIT.call_once(|| {});
    ENABLED.store(false, Relaxed);
    if let Some(mut w) = SINK.lock().unwrap().take() {
        let _ = w.flush();
    }
}

/// Flushes buffered span lines to disk.
pub fn flush() {
    if let Some(w) = SINK.lock().unwrap().as_mut() {
        let _ = w.flush();
    }
}

/// Writes one span event to the sink (no-op when tracing is off).
pub fn emit(ev: &SpanEvent) {
    if !enabled() {
        return;
    }
    let mut line = String::with_capacity(128 + 24 * ev.fields.len());
    ev.write_json(&mut line);
    line.push('\n');
    if let Some(w) = SINK.lock().unwrap().as_mut() {
        let _ = w.write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = fresh_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn span_event_json_round_trips() {
        let ev = SpanEvent {
            trace: TraceId(0xdead_beef_0000_0001),
            span: SpanId(fresh_id()),
            parent: SpanId::NONE,
            kind: "remote_rt".into(),
            start_us: now_us(),
            dur_us: 1234,
            fields: vec![
                ("ticket".into(), Field::U64(7)),
                ("shard".into(), Field::Str("127.0.0.1:4000".into())),
                ("cells".into(), Field::U64(u64::MAX)),
            ],
        };
        let line = ev.to_json();
        assert_eq!(SpanEvent::parse(&line).unwrap(), ev);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(SpanEvent::parse("not json").is_err());
        assert!(SpanEvent::parse("{\"trace\":\"xyzzy\"}").is_err());
        assert!(SpanEvent::parse("[1,2]").is_err());
        // Negative integers cannot be span fields.
        assert!(SpanEvent::parse(
            "{\"trace\":\"1\",\"span\":\"2\",\"parent\":\"0\",\
             \"kind\":\"k\",\"start_us\":1,\"dur_us\":1,\"bad\":-1}"
        )
        .is_err());
    }

    #[test]
    fn panic_flushes_buffered_spans() {
        let path = std::env::temp_dir().join(format!("hbtrace-panic-{:016x}.jsonl", fresh_id()));
        install(&path).unwrap();
        let mk = |kind: &str| SpanEvent {
            trace: TraceId(0x51),
            span: SpanId(fresh_id()),
            parent: SpanId::NONE,
            kind: kind.into(),
            start_us: now_us(),
            dur_us: 1,
            fields: vec![("cells".into(), Field::U64(6))],
        };
        emit(&mk("before_panic"));
        let doomed = mk("during_panic");
        let worker = std::thread::spawn(move || {
            emit(&doomed);
            panic!("simulated trap-path assert");
        });
        assert!(worker.join().is_err());
        // Read *before* any flush/disable from this thread: the only thing
        // that can have moved the buffered lines to disk is the panic hook.
        let text = std::fs::read_to_string(&path).unwrap();
        disable();
        let _ = std::fs::remove_file(&path);
        let kinds: Vec<String> = text
            .lines()
            .map(|l| SpanEvent::parse(l).expect("every line parses").kind)
            .collect();
        assert!(kinds.contains(&"before_panic".to_string()), "{kinds:?}");
        assert!(kinds.contains(&"during_panic".to_string()), "{kinds:?}");
    }

    #[test]
    fn timer_allocates_id_before_finish() {
        let t = SpanTimer::start(TraceId(1), SpanId::NONE, "compile");
        let id = t.span();
        let ev = t.finish(vec![("n".into(), 3u64.into())]);
        assert_eq!(ev.span, id);
        assert_eq!(ev.kind, "compile");
        assert_eq!(ev.field_u64("n"), Some(3));
    }
}
