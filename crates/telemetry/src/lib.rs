//! `hardbound-telemetry` — the observability substrate for the HardBound
//! workspace: a process-global metrics [`Registry`] and span-based
//! structured [`trace`]-ing, both std-only.
//!
//! * [`metrics`] — named [`Counter`]s, [`Gauge`]s (plain or computed) and
//!   power-of-two-bucket latency [`Histogram`]s. Recording is one relaxed
//!   atomic add — cheap enough for the block-dispatch hot path. Snapshots
//!   subtract ([`Snapshot::delta`]) so ever-growing process counters can
//!   still back per-run assertions, and render in the Prometheus text
//!   exposition format (served by the `METRICS` wire verb and
//!   `hbserve --metrics-addr`).
//! * [`trace`] — [`TraceId`]/[`SpanId`]-stamped [`SpanEvent`]s written as
//!   JSONL to the file named by `HB_TRACE`. Trace context crosses the
//!   `hbserve` wire so one grid submission yields a single merged trace
//!   spanning client and every shard.
//! * [`profile`] — cluster-mergeable per-superblock hot-spot [`Profile`]s
//!   (exec counts, attributed cycles, checks elided/taken), rendered as
//!   ranked-PC tables and folded-stack flamegraph text, shipped over the
//!   `PROFILE` wire verb and summed client-side with exact count
//!   conservation.
//! * [`json`] — the tiny JSON emitter/parser backing the trace schema
//!   (the build container has no serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{
    bucket_of, bucket_upper, global, scrape_value, Counter, Gauge, Histogram, HistogramSnapshot,
    Registry, Snapshot, Value, HIST_BUCKETS,
};
pub use profile::{BlockKey, BlockStat, Profile, SharedProfile};
pub use trace::{Field, SpanEvent, SpanId, SpanTimer, TraceCtx, TraceId};
