//! A minimal JSON value model, emitter and recursive-descent parser.
//!
//! The build container has no serde; trace events are simple flat objects
//! of strings and non-negative integers, so a ~150-line subset is enough.
//! The parser accepts the full JSON grammar except floating-point numbers
//! (trace events never emit them); integers are kept exact in an `i128`,
//! which covers every `u64` the tracer writes.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (floats are not supported).
    Int(i128),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes the value to compact JSON text.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at offset {}", other, self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!("floats unsupported at offset {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not emitted by the tracer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' but got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}' but got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_flat_objects() {
        let v = Json::Obj(vec![
            ("kind".into(), Json::Str("remote_rt".into())),
            ("n".into(), Json::Int(u64::MAX as i128)),
            ("note".into(), Json::Str("quote \" slash \\ tab \t".into())),
            ("neg".into(), Json::Int(-7)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("arr".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_floats() {
        assert!(parse("{} {}").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
    }

    #[test]
    fn control_chars_escape_and_reparse() {
        let v = Json::Str("\u{1}\u{1f}".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
