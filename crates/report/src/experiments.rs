//! Drivers that regenerate each table and figure.
//!
//! Every driver is a **corpus-cell pipeline**: it lays out its grid of
//! `(program, mode, machine configuration)` cells in a deterministic
//! order, compiles the distinct `(workload, mode)` images once each (in
//! parallel, on [`hardbound_exec::batch`]), and hands the whole grid to
//! [`hardbound_runtime::run_jobs`] — the process-wide corpus service.
//! Cells shared between figures (every figure re-simulates the baseline
//! and full-HardBound runs of every Olden port) therefore execute **once
//! per process**: the second figure replays them from the service's
//! program-hash result store. `HB_SERVICE=0` restores the direct
//! one-machine-one-engine path; both paths aggregate in input order and
//! emit byte-identical tables (pinned by `tests/service_differential.rs`).

use hardbound_compiler::Mode;
use hardbound_core::{
    checked_ratio, ExecStats, HardboundConfig, MachineConfig, PointerEncoding, RunOutcome,
};
use hardbound_exec::batch;
use hardbound_runtime::{compile, machine_config, meta_path_default, run_jobs, SimJob};
use hardbound_violations::{corpus, Addressing, CaseResult, CorpusReport, TestCase};
use hardbound_workloads::{all, Scale, Workload};

/// Compiles each workload under every distinct mode of `specs` (once per
/// `(workload, mode)`), runs the full `workloads × specs` grid through
/// the corpus service, and returns each workload's outcomes in spec
/// order. Workload cells must not trap — these are the paper's benign
/// benchmark runs — so any trap panics with the offending cell.
fn run_grid(workloads: &[Workload], specs: &[(Mode, MachineConfig)]) -> Vec<Vec<RunOutcome>> {
    let mut modes: Vec<Mode> = Vec::new();
    for (mode, _) in specs {
        if !modes.contains(mode) {
            modes.push(*mode);
        }
    }
    let pairs: Vec<(usize, Mode)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(wi, _)| modes.iter().map(move |&m| (wi, m)))
        .collect();
    let programs = batch::map(&pairs, |_, &(wi, mode)| {
        let w = &workloads[wi];
        compile(&w.source, mode)
            .unwrap_or_else(|e| panic!("{}: compilation failed under {mode}: {e}", w.name))
    });
    let mut jobs = Vec::with_capacity(workloads.len() * specs.len());
    for wi in 0..workloads.len() {
        for (mode, config) in specs {
            let mi = modes.iter().position(|m| m == mode).expect("mode present");
            jobs.push(SimJob {
                program: programs[wi * modes.len() + mi].clone(),
                mode: *mode,
                config: config.clone(),
            });
        }
    }
    let outs = run_jobs(jobs);
    let rows: Vec<Vec<RunOutcome>> = outs
        .chunks(specs.len())
        .map(<[RunOutcome]>::to_vec)
        .collect();
    for (w, row) in workloads.iter().zip(&rows) {
        for ((mode, _), out) in specs.iter().zip(row) {
            assert_eq!(
                out.trap, None,
                "{} ({mode}) trapped: {:?}",
                w.name, out.trap
            );
        }
    }
    rows
}

/// The standard figure grid: the baseline run followed by one
/// full-HardBound run per pointer encoding.
fn base_plus_hardbound() -> Vec<(Mode, MachineConfig)> {
    let mut specs = vec![(
        Mode::Baseline,
        machine_config(Mode::Baseline, PointerEncoding::Intern4),
    )];
    for encoding in PointerEncoding::ALL {
        specs.push((Mode::HardBound, machine_config(Mode::HardBound, encoding)));
    }
    specs
}

/// One bar of Figure 5: a benchmark under one pointer encoding, with the
/// overhead decomposed into the paper's four stacked components.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Pointer encoding.
    pub encoding: PointerEncoding,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// Instrumented cycles.
    pub hb_cycles: u64,
    /// Component 1: `setbound` µops.
    pub setbound_uops: u64,
    /// Component 2: µops for loading/storing uncompressed bounds.
    pub meta_uops: u64,
    /// Component 3: stall cycles on pointer metadata (tag + shadow).
    pub meta_stall_cycles: u64,
    /// Component 4: additional memory latency on ordinary data accesses
    /// (pollution), possibly negative when metadata warms shared levels.
    pub pollution_cycles: i64,
    /// Pointer-store compression rate under this encoding.
    pub compression_rate: f64,
    /// Full instrumented-run statistics (for auxiliary tables).
    pub stats: ExecStats,
}

impl Fig5Row {
    /// Total relative runtime (`instrumented / baseline`).
    #[must_use]
    pub fn relative_runtime(&self) -> f64 {
        checked_ratio(self.hb_cycles, self.base_cycles)
    }

    /// One overhead component as a fraction of baseline cycles. The
    /// numerator is signed (pollution can be negative), so this guards the
    /// zero denominator inline with [`checked_ratio`]'s convention.
    #[must_use]
    pub fn frac(&self, cycles: f64) -> f64 {
        if self.base_cycles == 0 {
            return 0.0;
        }
        cycles / self.base_cycles as f64
    }
}

/// Figure 5: runtime overhead of the three encodings with stacked
/// component attribution, for every Olden port.
#[must_use]
pub fn fig5(scale: Scale) -> Vec<Fig5Row> {
    let workloads = all(scale);
    let runs = run_grid(&workloads, &base_plus_hardbound());
    let mut rows = Vec::new();
    for (w, outs) in workloads.iter().zip(runs) {
        let base = &outs[0];
        for (i, encoding) in PointerEncoding::ALL.into_iter().enumerate() {
            let s = outs[1 + i].stats;
            // The decomposition is exact: the instrumented binary differs
            // from the baseline only by setbound instructions, metadata
            // µops and memory-system effects (see DESIGN.md).
            debug_assert_eq!(
                s.uops,
                base.stats.uops + s.setbound_uops + s.meta_uops + s.check_uops,
                "{}: µop identity must hold",
                w.name
            );
            rows.push(Fig5Row {
                bench: w.name,
                encoding,
                base_cycles: base.stats.cycles(),
                hb_cycles: s.cycles(),
                setbound_uops: s.setbound_uops,
                meta_uops: s.meta_uops,
                meta_stall_cycles: s.metadata_stall_cycles(),
                pollution_cycles: s.hierarchy.data_stall_cycles as i64
                    - base.stats.hierarchy.data_stall_cycles as i64,
                compression_rate: s.store_compression_rate(),
                stats: s,
            });
        }
    }
    rows
}

/// One group of Figure 6: extra distinct 4 KB pages touched.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Pointer encoding.
    pub encoding: PointerEncoding,
    /// Pages touched by the baseline run (data only).
    pub base_pages: usize,
    /// Tag-metadata pages touched.
    pub tag_pages: usize,
    /// Base/bound shadow pages touched.
    pub shadow_pages: usize,
}

impl Fig6Row {
    /// Extra pages as a fraction of the baseline (the paper's y-axis).
    #[must_use]
    pub fn extra_fraction(&self) -> f64 {
        checked_ratio(
            (self.tag_pages + self.shadow_pages) as u64,
            self.base_pages as u64,
        )
    }
}

/// Figure 6: memory-usage overhead in distinct pages.
#[must_use]
pub fn fig6(scale: Scale) -> Vec<Fig6Row> {
    let workloads = all(scale);
    let runs = run_grid(&workloads, &base_plus_hardbound());
    let mut rows = Vec::new();
    for (w, outs) in workloads.iter().zip(runs) {
        let base = &outs[0];
        for (i, encoding) in PointerEncoding::ALL.into_iter().enumerate() {
            let hb = &outs[1 + i];
            rows.push(Fig6Row {
                bench: w.name,
                encoding,
                base_pages: base.stats.data_pages,
                tag_pages: hb.stats.tag_pages,
                shadow_pages: hb.stats.shadow_pages,
            });
        }
    }
    rows
}

/// One row of Figure 7: relative runtimes of every scheme on one
/// benchmark.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Our object-table scheme (JK-style, no static check elision).
    pub objtable_runtime: f64,
    /// SoftBound (CCured-style) µop inflation.
    pub softbound_uops: f64,
    /// SoftBound relative runtime.
    pub softbound_runtime: f64,
    /// HardBound relative runtime per encoding (extern-4, intern-4,
    /// intern-11).
    pub hardbound: [f64; 3],
}

/// Figure 7: the cross-scheme comparison.
#[must_use]
pub fn fig7(scale: Scale) -> Vec<Fig7Row> {
    let workloads = all(scale);
    let mut specs = vec![
        (
            Mode::Baseline,
            machine_config(Mode::Baseline, PointerEncoding::Intern4),
        ),
        (
            Mode::ObjectTable,
            machine_config(Mode::ObjectTable, PointerEncoding::Intern4),
        ),
        (
            Mode::SoftBound,
            machine_config(Mode::SoftBound, PointerEncoding::Intern4),
        ),
    ];
    for encoding in PointerEncoding::ALL {
        specs.push((Mode::HardBound, machine_config(Mode::HardBound, encoding)));
    }
    let runs = run_grid(&workloads, &specs);
    workloads
        .iter()
        .zip(runs)
        .map(|(w, outs)| {
            let bc = outs[0].stats.cycles();
            let bu = outs[0].stats.uops;
            let mut hardbound = [0.0; 3];
            for (i, h) in hardbound.iter_mut().enumerate() {
                *h = checked_ratio(outs[3 + i].stats.cycles(), bc);
            }
            Fig7Row {
                bench: w.name,
                objtable_runtime: checked_ratio(outs[1].stats.cycles(), bc),
                softbound_uops: checked_ratio(outs[2].stats.uops, bu),
                softbound_runtime: checked_ratio(outs[2].stats.cycles(), bc),
                hardbound,
            }
        })
        .collect()
}

/// One row of the §5.4 check-µop ablation.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Pointer encoding.
    pub encoding: PointerEncoding,
    /// Relative runtime with free (parallel) bounds checks.
    pub parallel_check: f64,
    /// Relative runtime when uncompressed checks cost one µop.
    pub shared_alu_check: f64,
}

/// §5.4: "each bounds check of an uncompressed pointer inserts an
/// additional µop" — the paper reports roughly +3% average.
#[must_use]
pub fn ablation_check_uop(scale: Scale) -> Vec<AblationRow> {
    let workloads = all(scale);
    let mut specs = vec![(
        Mode::Baseline,
        machine_config(Mode::Baseline, PointerEncoding::Intern4),
    )];
    for encoding in PointerEncoding::ALL {
        specs.push((Mode::HardBound, machine_config(Mode::HardBound, encoding)));
        // The charged cell must share the standard cells' metadata path
        // (machine_config applies it; the raw constructor does not), or
        // an HB_META_FAST override would compare the two check models
        // under two different metadata-cost models.
        specs.push((
            Mode::HardBound,
            MachineConfig::hardbound(HardboundConfig::full(encoding).with_check_uop())
                .with_meta_path(meta_path_default()),
        ));
    }
    let runs = run_grid(&workloads, &specs);
    let mut rows = Vec::new();
    for (w, outs) in workloads.iter().zip(runs) {
        let bc = outs[0].stats.cycles();
        for (i, encoding) in PointerEncoding::ALL.into_iter().enumerate() {
            rows.push(AblationRow {
                bench: w.name,
                encoding,
                parallel_check: checked_ratio(outs[1 + 2 * i].stats.cycles(), bc),
                shared_alu_check: checked_ratio(outs[2 + 2 * i].stats.cycles(), bc),
            });
        }
    }
    rows
}

/// One row of the tag-cache sensitivity sweep.
#[derive(Clone, Debug)]
pub struct TagCacheRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Tag-cache capacity in bytes.
    pub tag_cache_bytes: u64,
    /// Relative runtime at this capacity.
    pub relative_runtime: f64,
    /// Tag-cache miss ratio observed.
    pub tag_stall_cycles: u64,
}

/// Design-choice ablation: sweep the tag metadata cache size (the paper
/// fixes 2 KB/8 KB; this shows the sensitivity of that choice).
#[must_use]
pub fn tag_cache_sweep(scale: Scale, sizes: &[u64]) -> Vec<TagCacheRow> {
    let workloads = all(scale);
    let mut specs = vec![(
        Mode::Baseline,
        machine_config(Mode::Baseline, PointerEncoding::Intern4),
    )];
    for &bytes in sizes {
        let cfg = machine_config(Mode::HardBound, PointerEncoding::Intern4);
        let cfg = cfg
            .clone()
            .with_hierarchy(cfg.hierarchy.with_tag_cache_bytes(bytes));
        specs.push((Mode::HardBound, cfg));
    }
    let runs = run_grid(&workloads, &specs);
    let mut rows = Vec::new();
    for (w, outs) in workloads.iter().zip(runs) {
        let bc = outs[0].stats.cycles();
        for (i, &bytes) in sizes.iter().enumerate() {
            let out = &outs[1 + i];
            rows.push(TagCacheRow {
                bench: w.name,
                tag_cache_bytes: bytes,
                relative_runtime: checked_ratio(out.stats.cycles(), bc),
                tag_stall_cycles: out.stats.hierarchy.tag_stall_cycles,
            });
        }
    }
    rows
}

/// Compiles and executes the full violation corpus under one scheme
/// through the corpus service — both twins of every pair, in corpus order
/// — and judges each pair. The fan-out unit is the *cell* (one program,
/// one configuration), so the service deduplicates and replays at the
/// same granularity as the figure pipelines.
fn corpus_results(mode: Mode, encoding: PointerEncoding) -> Vec<(TestCase, CaseResult)> {
    let cases = corpus();
    let config = machine_config(mode, encoding);
    let compiled = batch::map(&cases, |_, case| {
        (
            compile(&case.bad_source, mode).map_err(|e| e.to_string()),
            compile(&case.ok_source, mode).map_err(|e| e.to_string()),
        )
    });
    let mut jobs = Vec::new();
    for (bad, ok) in &compiled {
        for p in [bad, ok] {
            if let Ok(p) = p {
                jobs.push(SimJob {
                    program: p.clone(),
                    mode,
                    config: config.clone(),
                });
            }
        }
    }
    let outs = run_jobs(jobs);
    let mut next = outs.iter();
    cases
        .into_iter()
        .zip(compiled)
        .map(|(case, (bad, ok))| {
            let bad = bad
                .as_ref()
                .map(|_| next.next().expect("outcome per compiled cell"));
            let ok = ok
                .as_ref()
                .map(|_| next.next().expect("outcome per compiled cell"));
            let result = hardbound_violations::judge_pair(
                &case,
                mode,
                bad.map_err(String::as_str),
                ok.map_err(String::as_str),
            );
            (case, result)
        })
        .collect()
}

/// §5.2: the full correctness corpus under one protection scheme, fanned
/// across the corpus service one cell at a time. Results aggregate in
/// corpus order, so the report is byte-identical to the serial run.
#[must_use]
pub fn corpus_report(mode: Mode, encoding: PointerEncoding) -> CorpusReport {
    CorpusReport::collect(corpus_results(mode, encoding).into_iter().map(|(_, r)| r))
}

/// §5.2: the full correctness corpus under full HardBound protection.
#[must_use]
pub fn correctness(encoding: PointerEncoding) -> CorpusReport {
    corpus_report(Mode::HardBound, encoding)
}

/// One row of the protection-granularity contrast table (§6): how one
/// scheme fares on the violation corpus, split into the sub-object cases
/// (an array inside a struct overflowing into a sibling field) and every
/// other case.
#[derive(Clone, Debug)]
pub struct GranularityRow {
    /// Scheme label, e.g. `hardbound (word)`.
    pub scheme: &'static str,
    /// Protection granularity description.
    pub granularity: &'static str,
    /// Sub-object violations detected.
    pub subobject_detected: usize,
    /// Sub-object violation pairs run.
    pub subobject_total: usize,
    /// All other violations detected.
    pub other_detected: usize,
    /// All other violation pairs run.
    pub other_total: usize,
    /// Benign twins that trapped (must be 0 for every scheme).
    pub false_positives: usize,
}

impl GranularityRow {
    /// Detection rate over the sub-object slice, in `[0, 1]`.
    #[must_use]
    pub fn subobject_rate(&self) -> f64 {
        checked_ratio(self.subobject_detected as u64, self.subobject_total as u64)
    }

    /// Detection rate over the rest of the corpus, in `[0, 1]`.
    #[must_use]
    pub fn other_rate(&self) -> f64 {
        checked_ratio(self.other_detected as u64, self.other_total as u64)
    }
}

/// The §6 granularity contrast: word-granular HardBound vs the
/// object-granular table vs malloc-only hardware, across the full
/// violation corpus. Documents the sub-object blind spot — overflows that
/// stay inside an allocation are invisible to object- and malloc-granular
/// schemes but caught at word granularity.
#[must_use]
pub fn granularity(encoding: PointerEncoding) -> Vec<GranularityRow> {
    let schemes: [(&'static str, &'static str, Mode); 3] = [
        ("hardbound", "word (setbound)", Mode::HardBound),
        ("objtable", "object (allocation)", Mode::ObjectTable),
        ("malloc-only", "malloc'd objects", Mode::MallocOnly),
    ];
    schemes
        .into_iter()
        .map(|(scheme, granularity, mode)| {
            let mut row = GranularityRow {
                scheme,
                granularity,
                subobject_detected: 0,
                subobject_total: 0,
                other_detected: 0,
                other_total: 0,
                false_positives: 0,
            };
            for (case, r) in corpus_results(mode, encoding) {
                let (detected, total) = if case.addressing == Addressing::SubObject {
                    (&mut row.subobject_detected, &mut row.subobject_total)
                } else {
                    (&mut row.other_detected, &mut row.other_total)
                };
                *total += 1;
                if r.detected {
                    *detected += 1;
                }
                if r.false_positive.is_some() {
                    row.false_positives += 1;
                }
            }
            row
        })
        .collect()
}

/// Average of the relative runtimes in `xs`.
#[must_use]
pub fn average(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}
