//! Drivers that regenerate each table and figure.

use hardbound_compiler::Mode;
use hardbound_core::{ExecStats, HardboundConfig, MachineConfig, PointerEncoding, RunOutcome};
use hardbound_runtime::{build_machine_with_config, compile, machine_config};
use hardbound_violations::CorpusReport;
use hardbound_workloads::{all, Scale, Workload};

fn run(w: &Workload, mode: Mode, encoding: PointerEncoding) -> RunOutcome {
    run_with(w, mode, machine_config(mode, encoding))
}

fn run_with(w: &Workload, mode: Mode, config: MachineConfig) -> RunOutcome {
    let program =
        compile(&w.source, mode).unwrap_or_else(|e| panic!("{}: compilation failed: {e}", w.name));
    let out = build_machine_with_config(program, mode, config).run();
    assert_eq!(
        out.trap, None,
        "{} ({mode}) trapped: {:?}",
        w.name, out.trap
    );
    out
}

/// One bar of Figure 5: a benchmark under one pointer encoding, with the
/// overhead decomposed into the paper's four stacked components.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Pointer encoding.
    pub encoding: PointerEncoding,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// Instrumented cycles.
    pub hb_cycles: u64,
    /// Component 1: `setbound` µops.
    pub setbound_uops: u64,
    /// Component 2: µops for loading/storing uncompressed bounds.
    pub meta_uops: u64,
    /// Component 3: stall cycles on pointer metadata (tag + shadow).
    pub meta_stall_cycles: u64,
    /// Component 4: additional memory latency on ordinary data accesses
    /// (pollution), possibly negative when metadata warms shared levels.
    pub pollution_cycles: i64,
    /// Pointer-store compression rate under this encoding.
    pub compression_rate: f64,
    /// Full instrumented-run statistics (for auxiliary tables).
    pub stats: ExecStats,
}

impl Fig5Row {
    /// Total relative runtime (`instrumented / baseline`).
    #[must_use]
    pub fn relative_runtime(&self) -> f64 {
        self.hb_cycles as f64 / self.base_cycles as f64
    }

    /// One overhead component as a fraction of baseline cycles.
    #[must_use]
    pub fn frac(&self, cycles: f64) -> f64 {
        cycles / self.base_cycles as f64
    }
}

/// Figure 5: runtime overhead of the three encodings with stacked
/// component attribution, for every Olden port.
#[must_use]
pub fn fig5(scale: Scale) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for w in all(scale) {
        let base = run(&w, Mode::Baseline, PointerEncoding::Intern4);
        for encoding in PointerEncoding::ALL {
            let hb = run(&w, Mode::HardBound, encoding);
            let s = hb.stats;
            // The decomposition is exact: the instrumented binary differs
            // from the baseline only by setbound instructions, metadata
            // µops and memory-system effects (see DESIGN.md).
            debug_assert_eq!(
                s.uops,
                base.stats.uops + s.setbound_uops + s.meta_uops + s.check_uops,
                "{}: µop identity must hold",
                w.name
            );
            rows.push(Fig5Row {
                bench: w.name,
                encoding,
                base_cycles: base.stats.cycles(),
                hb_cycles: s.cycles(),
                setbound_uops: s.setbound_uops,
                meta_uops: s.meta_uops,
                meta_stall_cycles: s.metadata_stall_cycles(),
                pollution_cycles: s.hierarchy.data_stall_cycles as i64
                    - base.stats.hierarchy.data_stall_cycles as i64,
                compression_rate: s.store_compression_rate(),
                stats: s,
            });
        }
    }
    rows
}

/// One group of Figure 6: extra distinct 4 KB pages touched.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Pointer encoding.
    pub encoding: PointerEncoding,
    /// Pages touched by the baseline run (data only).
    pub base_pages: usize,
    /// Tag-metadata pages touched.
    pub tag_pages: usize,
    /// Base/bound shadow pages touched.
    pub shadow_pages: usize,
}

impl Fig6Row {
    /// Extra pages as a fraction of the baseline (the paper's y-axis).
    #[must_use]
    pub fn extra_fraction(&self) -> f64 {
        (self.tag_pages + self.shadow_pages) as f64 / self.base_pages as f64
    }
}

/// Figure 6: memory-usage overhead in distinct pages.
#[must_use]
pub fn fig6(scale: Scale) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for w in all(scale) {
        let base = run(&w, Mode::Baseline, PointerEncoding::Intern4);
        for encoding in PointerEncoding::ALL {
            let hb = run(&w, Mode::HardBound, encoding);
            rows.push(Fig6Row {
                bench: w.name,
                encoding,
                base_pages: base.stats.data_pages,
                tag_pages: hb.stats.tag_pages,
                shadow_pages: hb.stats.shadow_pages,
            });
        }
    }
    rows
}

/// One row of Figure 7: relative runtimes of every scheme on one
/// benchmark.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Our object-table scheme (JK-style, no static check elision).
    pub objtable_runtime: f64,
    /// SoftBound (CCured-style) µop inflation.
    pub softbound_uops: f64,
    /// SoftBound relative runtime.
    pub softbound_runtime: f64,
    /// HardBound relative runtime per encoding (extern-4, intern-4,
    /// intern-11).
    pub hardbound: [f64; 3],
}

/// Figure 7: the cross-scheme comparison.
#[must_use]
pub fn fig7(scale: Scale) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for w in all(scale) {
        let base = run(&w, Mode::Baseline, PointerEncoding::Intern4);
        let bc = base.stats.cycles() as f64;
        let bu = base.stats.uops as f64;
        let ot = run(&w, Mode::ObjectTable, PointerEncoding::Intern4);
        let sb = run(&w, Mode::SoftBound, PointerEncoding::Intern4);
        let mut hardbound = [0.0; 3];
        for (i, enc) in PointerEncoding::ALL.into_iter().enumerate() {
            let hb = run(&w, Mode::HardBound, enc);
            hardbound[i] = hb.stats.cycles() as f64 / bc;
        }
        rows.push(Fig7Row {
            bench: w.name,
            objtable_runtime: ot.stats.cycles() as f64 / bc,
            softbound_uops: sb.stats.uops as f64 / bu,
            softbound_runtime: sb.stats.cycles() as f64 / bc,
            hardbound,
        });
    }
    rows
}

/// One row of the §5.4 check-µop ablation.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Pointer encoding.
    pub encoding: PointerEncoding,
    /// Relative runtime with free (parallel) bounds checks.
    pub parallel_check: f64,
    /// Relative runtime when uncompressed checks cost one µop.
    pub shared_alu_check: f64,
}

/// §5.4: "each bounds check of an uncompressed pointer inserts an
/// additional µop" — the paper reports roughly +3% average.
#[must_use]
pub fn ablation_check_uop(scale: Scale) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for w in all(scale) {
        let base = run(&w, Mode::Baseline, PointerEncoding::Intern4);
        let bc = base.stats.cycles() as f64;
        for encoding in PointerEncoding::ALL {
            let free = run(&w, Mode::HardBound, encoding);
            let charged_cfg =
                MachineConfig::hardbound(HardboundConfig::full(encoding).with_check_uop());
            let charged = run_with(&w, Mode::HardBound, charged_cfg);
            rows.push(AblationRow {
                bench: w.name,
                encoding,
                parallel_check: free.stats.cycles() as f64 / bc,
                shared_alu_check: charged.stats.cycles() as f64 / bc,
            });
        }
    }
    rows
}

/// One row of the tag-cache sensitivity sweep.
#[derive(Clone, Debug)]
pub struct TagCacheRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Tag-cache capacity in bytes.
    pub tag_cache_bytes: u64,
    /// Relative runtime at this capacity.
    pub relative_runtime: f64,
    /// Tag-cache miss ratio observed.
    pub tag_stall_cycles: u64,
}

/// Design-choice ablation: sweep the tag metadata cache size (the paper
/// fixes 2 KB/8 KB; this shows the sensitivity of that choice).
#[must_use]
pub fn tag_cache_sweep(scale: Scale, sizes: &[u64]) -> Vec<TagCacheRow> {
    let mut rows = Vec::new();
    for w in all(scale) {
        let base = run(&w, Mode::Baseline, PointerEncoding::Intern4);
        let bc = base.stats.cycles() as f64;
        for &bytes in sizes {
            let cfg = MachineConfig::hardbound(HardboundConfig::full(PointerEncoding::Intern4));
            let cfg = cfg
                .clone()
                .with_hierarchy(cfg.hierarchy.with_tag_cache_bytes(bytes));
            let out = run_with(&w, Mode::HardBound, cfg);
            rows.push(TagCacheRow {
                bench: w.name,
                tag_cache_bytes: bytes,
                relative_runtime: out.stats.cycles() as f64 / bc,
                tag_stall_cycles: out.stats.hierarchy.tag_stall_cycles,
            });
        }
    }
    rows
}

/// §5.2: the full correctness corpus under full HardBound protection.
#[must_use]
pub fn correctness(encoding: PointerEncoding) -> CorpusReport {
    hardbound_violations::run_corpus(Mode::HardBound, encoding)
}

/// Average of the relative runtimes in `xs`.
#[must_use]
pub fn average(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}
