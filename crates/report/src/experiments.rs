//! Drivers that regenerate each table and figure.
//!
//! Every driver executes through [`hardbound_runtime::run_machine`] — the
//! basic-block engine by default, the interpreter under `HB_INTERP` — and
//! fans its embarrassingly-parallel outer loop (benchmarks × encodings, or
//! the 288-pair corpus) across threads with [`hardbound_exec::batch`].
//! Results are aggregated in input order, so the parallel drivers emit
//! byte-identical tables to the serial loops they replaced.

use hardbound_compiler::Mode;
use hardbound_core::{ExecStats, HardboundConfig, MachineConfig, PointerEncoding, RunOutcome};
use hardbound_exec::batch;
use hardbound_runtime::{build_machine_with_config, compile, machine_config, run_machine};
use hardbound_violations::{corpus, Addressing, CorpusReport};
use hardbound_workloads::{all, Scale, Workload};

fn run(w: &Workload, mode: Mode, encoding: PointerEncoding) -> RunOutcome {
    run_with(w, mode, machine_config(mode, encoding))
}

fn run_with(w: &Workload, mode: Mode, config: MachineConfig) -> RunOutcome {
    let program =
        compile(&w.source, mode).unwrap_or_else(|e| panic!("{}: compilation failed: {e}", w.name));
    let out = run_machine(build_machine_with_config(program, mode, config));
    assert_eq!(
        out.trap, None,
        "{} ({mode}) trapped: {:?}",
        w.name, out.trap
    );
    out
}

/// Fans `f` over the workloads of `scale` in parallel and flattens the
/// per-workload row groups in workload order.
fn per_workload<R: Send>(scale: Scale, f: impl Fn(&Workload) -> Vec<R> + Sync) -> Vec<R> {
    batch::map(all(scale), |_, w| f(&w))
        .into_iter()
        .flatten()
        .collect()
}

/// One bar of Figure 5: a benchmark under one pointer encoding, with the
/// overhead decomposed into the paper's four stacked components.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Pointer encoding.
    pub encoding: PointerEncoding,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// Instrumented cycles.
    pub hb_cycles: u64,
    /// Component 1: `setbound` µops.
    pub setbound_uops: u64,
    /// Component 2: µops for loading/storing uncompressed bounds.
    pub meta_uops: u64,
    /// Component 3: stall cycles on pointer metadata (tag + shadow).
    pub meta_stall_cycles: u64,
    /// Component 4: additional memory latency on ordinary data accesses
    /// (pollution), possibly negative when metadata warms shared levels.
    pub pollution_cycles: i64,
    /// Pointer-store compression rate under this encoding.
    pub compression_rate: f64,
    /// Full instrumented-run statistics (for auxiliary tables).
    pub stats: ExecStats,
}

impl Fig5Row {
    /// Total relative runtime (`instrumented / baseline`).
    #[must_use]
    pub fn relative_runtime(&self) -> f64 {
        self.hb_cycles as f64 / self.base_cycles as f64
    }

    /// One overhead component as a fraction of baseline cycles.
    #[must_use]
    pub fn frac(&self, cycles: f64) -> f64 {
        cycles / self.base_cycles as f64
    }
}

/// Figure 5: runtime overhead of the three encodings with stacked
/// component attribution, for every Olden port.
#[must_use]
pub fn fig5(scale: Scale) -> Vec<Fig5Row> {
    per_workload(scale, |w| {
        let mut rows = Vec::new();
        let base = run(w, Mode::Baseline, PointerEncoding::Intern4);
        for encoding in PointerEncoding::ALL {
            let hb = run(w, Mode::HardBound, encoding);
            let s = hb.stats;
            // The decomposition is exact: the instrumented binary differs
            // from the baseline only by setbound instructions, metadata
            // µops and memory-system effects (see DESIGN.md).
            debug_assert_eq!(
                s.uops,
                base.stats.uops + s.setbound_uops + s.meta_uops + s.check_uops,
                "{}: µop identity must hold",
                w.name
            );
            rows.push(Fig5Row {
                bench: w.name,
                encoding,
                base_cycles: base.stats.cycles(),
                hb_cycles: s.cycles(),
                setbound_uops: s.setbound_uops,
                meta_uops: s.meta_uops,
                meta_stall_cycles: s.metadata_stall_cycles(),
                pollution_cycles: s.hierarchy.data_stall_cycles as i64
                    - base.stats.hierarchy.data_stall_cycles as i64,
                compression_rate: s.store_compression_rate(),
                stats: s,
            });
        }
        rows
    })
}

/// One group of Figure 6: extra distinct 4 KB pages touched.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Pointer encoding.
    pub encoding: PointerEncoding,
    /// Pages touched by the baseline run (data only).
    pub base_pages: usize,
    /// Tag-metadata pages touched.
    pub tag_pages: usize,
    /// Base/bound shadow pages touched.
    pub shadow_pages: usize,
}

impl Fig6Row {
    /// Extra pages as a fraction of the baseline (the paper's y-axis).
    #[must_use]
    pub fn extra_fraction(&self) -> f64 {
        (self.tag_pages + self.shadow_pages) as f64 / self.base_pages as f64
    }
}

/// Figure 6: memory-usage overhead in distinct pages.
#[must_use]
pub fn fig6(scale: Scale) -> Vec<Fig6Row> {
    per_workload(scale, |w| {
        let base = run(w, Mode::Baseline, PointerEncoding::Intern4);
        PointerEncoding::ALL
            .into_iter()
            .map(|encoding| {
                let hb = run(w, Mode::HardBound, encoding);
                Fig6Row {
                    bench: w.name,
                    encoding,
                    base_pages: base.stats.data_pages,
                    tag_pages: hb.stats.tag_pages,
                    shadow_pages: hb.stats.shadow_pages,
                }
            })
            .collect()
    })
}

/// One row of Figure 7: relative runtimes of every scheme on one
/// benchmark.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Our object-table scheme (JK-style, no static check elision).
    pub objtable_runtime: f64,
    /// SoftBound (CCured-style) µop inflation.
    pub softbound_uops: f64,
    /// SoftBound relative runtime.
    pub softbound_runtime: f64,
    /// HardBound relative runtime per encoding (extern-4, intern-4,
    /// intern-11).
    pub hardbound: [f64; 3],
}

/// Figure 7: the cross-scheme comparison.
#[must_use]
pub fn fig7(scale: Scale) -> Vec<Fig7Row> {
    per_workload(scale, |w| {
        let base = run(w, Mode::Baseline, PointerEncoding::Intern4);
        let bc = base.stats.cycles() as f64;
        let bu = base.stats.uops as f64;
        let ot = run(w, Mode::ObjectTable, PointerEncoding::Intern4);
        let sb = run(w, Mode::SoftBound, PointerEncoding::Intern4);
        let mut hardbound = [0.0; 3];
        for (i, enc) in PointerEncoding::ALL.into_iter().enumerate() {
            let hb = run(w, Mode::HardBound, enc);
            hardbound[i] = hb.stats.cycles() as f64 / bc;
        }
        vec![Fig7Row {
            bench: w.name,
            objtable_runtime: ot.stats.cycles() as f64 / bc,
            softbound_uops: sb.stats.uops as f64 / bu,
            softbound_runtime: sb.stats.cycles() as f64 / bc,
            hardbound,
        }]
    })
}

/// One row of the §5.4 check-µop ablation.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Pointer encoding.
    pub encoding: PointerEncoding,
    /// Relative runtime with free (parallel) bounds checks.
    pub parallel_check: f64,
    /// Relative runtime when uncompressed checks cost one µop.
    pub shared_alu_check: f64,
}

/// §5.4: "each bounds check of an uncompressed pointer inserts an
/// additional µop" — the paper reports roughly +3% average.
#[must_use]
pub fn ablation_check_uop(scale: Scale) -> Vec<AblationRow> {
    per_workload(scale, |w| {
        let base = run(w, Mode::Baseline, PointerEncoding::Intern4);
        let bc = base.stats.cycles() as f64;
        PointerEncoding::ALL
            .into_iter()
            .map(|encoding| {
                let free = run(w, Mode::HardBound, encoding);
                let charged_cfg =
                    MachineConfig::hardbound(HardboundConfig::full(encoding).with_check_uop());
                let charged = run_with(w, Mode::HardBound, charged_cfg);
                AblationRow {
                    bench: w.name,
                    encoding,
                    parallel_check: free.stats.cycles() as f64 / bc,
                    shared_alu_check: charged.stats.cycles() as f64 / bc,
                }
            })
            .collect()
    })
}

/// One row of the tag-cache sensitivity sweep.
#[derive(Clone, Debug)]
pub struct TagCacheRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Tag-cache capacity in bytes.
    pub tag_cache_bytes: u64,
    /// Relative runtime at this capacity.
    pub relative_runtime: f64,
    /// Tag-cache miss ratio observed.
    pub tag_stall_cycles: u64,
}

/// Design-choice ablation: sweep the tag metadata cache size (the paper
/// fixes 2 KB/8 KB; this shows the sensitivity of that choice).
#[must_use]
pub fn tag_cache_sweep(scale: Scale, sizes: &[u64]) -> Vec<TagCacheRow> {
    per_workload(scale, |w| {
        let base = run(w, Mode::Baseline, PointerEncoding::Intern4);
        let bc = base.stats.cycles() as f64;
        sizes
            .iter()
            .map(|&bytes| {
                let cfg = MachineConfig::hardbound(HardboundConfig::full(PointerEncoding::Intern4));
                let cfg = cfg
                    .clone()
                    .with_hierarchy(cfg.hierarchy.with_tag_cache_bytes(bytes));
                let out = run_with(w, Mode::HardBound, cfg);
                TagCacheRow {
                    bench: w.name,
                    tag_cache_bytes: bytes,
                    relative_runtime: out.stats.cycles() as f64 / bc,
                    tag_stall_cycles: out.stats.hierarchy.tag_stall_cycles,
                }
            })
            .collect()
    })
}

/// §5.2: the full correctness corpus under one protection scheme, fanned
/// across threads one violation/benign pair at a time. Results aggregate
/// in corpus order, so the report is byte-identical to the serial run.
#[must_use]
pub fn corpus_report(mode: Mode, encoding: PointerEncoding) -> CorpusReport {
    CorpusReport::collect(batch::map(corpus(), |_, case| {
        hardbound_violations::run_case(&case, mode, encoding)
    }))
}

/// §5.2: the full correctness corpus under full HardBound protection.
#[must_use]
pub fn correctness(encoding: PointerEncoding) -> CorpusReport {
    corpus_report(Mode::HardBound, encoding)
}

/// One row of the protection-granularity contrast table (§6): how one
/// scheme fares on the violation corpus, split into the sub-object cases
/// (an array inside a struct overflowing into a sibling field) and every
/// other case.
#[derive(Clone, Debug)]
pub struct GranularityRow {
    /// Scheme label, e.g. `hardbound (word)`.
    pub scheme: &'static str,
    /// Protection granularity description.
    pub granularity: &'static str,
    /// Sub-object violations detected.
    pub subobject_detected: usize,
    /// Sub-object violation pairs run.
    pub subobject_total: usize,
    /// All other violations detected.
    pub other_detected: usize,
    /// All other violation pairs run.
    pub other_total: usize,
    /// Benign twins that trapped (must be 0 for every scheme).
    pub false_positives: usize,
}

impl GranularityRow {
    /// Detection rate over the sub-object slice, in `[0, 1]`.
    #[must_use]
    pub fn subobject_rate(&self) -> f64 {
        self.subobject_detected as f64 / self.subobject_total.max(1) as f64
    }

    /// Detection rate over the rest of the corpus, in `[0, 1]`.
    #[must_use]
    pub fn other_rate(&self) -> f64 {
        self.other_detected as f64 / self.other_total.max(1) as f64
    }
}

/// The §6 granularity contrast: word-granular HardBound vs the
/// object-granular table vs malloc-only hardware, across the full
/// violation corpus. Documents the sub-object blind spot — overflows that
/// stay inside an allocation are invisible to object- and malloc-granular
/// schemes but caught at word granularity.
#[must_use]
pub fn granularity(encoding: PointerEncoding) -> Vec<GranularityRow> {
    let schemes: [(&'static str, &'static str, Mode); 3] = [
        ("hardbound", "word (setbound)", Mode::HardBound),
        ("objtable", "object (allocation)", Mode::ObjectTable),
        ("malloc-only", "malloc'd objects", Mode::MallocOnly),
    ];
    let cases = corpus();
    schemes
        .into_iter()
        .map(|(scheme, granularity, mode)| {
            let results = batch::map(cases.clone(), |_, case| {
                let r = hardbound_violations::run_case(&case, mode, encoding);
                (case.addressing == Addressing::SubObject, r)
            });
            let mut row = GranularityRow {
                scheme,
                granularity,
                subobject_detected: 0,
                subobject_total: 0,
                other_detected: 0,
                other_total: 0,
                false_positives: 0,
            };
            for (subobject, r) in results {
                let (detected, total) = if subobject {
                    (&mut row.subobject_detected, &mut row.subobject_total)
                } else {
                    (&mut row.other_detected, &mut row.other_total)
                };
                *total += 1;
                if r.detected {
                    *detected += 1;
                }
                if r.false_positive.is_some() {
                    row.false_positives += 1;
                }
            }
            row
        })
        .collect()
}

/// Average of the relative runtimes in `xs`.
#[must_use]
pub fn average(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}
