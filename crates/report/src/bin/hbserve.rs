//! `hbserve` — the networked corpus service.
//!
//! ```sh
//! cargo run -p hardbound_report --bin hbserve -- \
//!     [--listen 127.0.0.1:7878] [--store PATH] [--workers N] \
//!     [--shard K/N] [--ttl SECS] [--metrics-addr ADDR]
//! ```
//!
//! Binds a TCP front end around one shared (optionally persistent)
//! corpus service: clients submit cell grids over the length-prefixed
//! `hardbound_serve` protocol, the server dedups each cell against the
//! store, drains misses through the lock-free batch scheduler, and
//! streams results back in chunks. Every figure/corpus driver becomes a
//! client transparently by setting `HB_SERVE_ADDR` to this server's
//! address — so one long-lived warm server amortizes simulation across
//! any number of `hbrun`s, bench runs and CI processes.
//!
//! * `--listen ADDR` — bind address (default `127.0.0.1:0`, an ephemeral
//!   port). The bound address is printed as the first stdout line
//!   (`hbserve listening on ADDR`), so wrappers can parse it.
//! * `--store PATH` — persist the result store at `PATH` (defaults to
//!   `HB_STORE_PATH` when set); the log is compacted on shutdown.
//! * `--workers N` — execution worker shards (default: `HB_JOBS` or all
//!   cores).
//! * `--shard K/N` — declare this server shard *K* of an *N*-shard
//!   cluster (`K` in `0..N`): submitted cells are classified as owned vs
//!   foreign in the stats. Routing is advisory — foreign cells still
//!   execute, which is exactly how clients fail over a dead shard.
//! * `--ttl SECS` — expire store entries idle for `SECS` seconds
//!   (defaults to `HB_STORE_TTL` when set; off otherwise).
//! * `--metrics-addr ADDR` — also serve the Prometheus-style text
//!   exposition over plain HTTP at `GET /` on `ADDR` (defaults to
//!   `HB_METRICS_ADDR` when set; off otherwise). The bound address is
//!   printed as a second stdout line (`hbserve metrics on ADDR`). The
//!   same text is available in-protocol via the `METRICS` request.
//!
//! The server runs until a client sends the protocol `SHUTDOWN` request;
//! it then checkpoints the store and exits 0.

use std::process::ExitCode;
use std::sync::{Arc, PoisonError};

use hardbound_compiler::Mode;
use hardbound_exec::batch;
use hardbound_runtime::{build_machine_with_config, store_path, store_ttl};
use hardbound_serve::net::{Builder, TagCheck};
use hardbound_serve::{PersistentService, Server};

struct Args {
    listen: String,
    store: Option<String>,
    workers: usize,
    shard: Option<(usize, usize)>,
    ttl: Option<std::time::Duration>,
    metrics_addr: Option<String>,
}

/// Parses `K/N` with `K < N` (the `--shard` form).
fn parse_shard(v: &str) -> Option<(usize, usize)> {
    let (k, n) = v.split_once('/')?;
    let k = k.trim().parse::<usize>().ok()?;
    let n = n.trim().parse::<usize>().ok()?;
    (k < n).then_some((k, n))
}

fn parse_args() -> Result<Args, String> {
    let mut listen = "127.0.0.1:0".to_owned();
    let mut store = store_path();
    let mut workers = batch::default_workers();
    let mut shard = None;
    let mut ttl = store_ttl();
    let mut metrics_addr = std::env::var("HB_METRICS_ADDR")
        .ok()
        .map(|v| v.trim().to_owned())
        .filter(|v| !v.is_empty());
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => listen = it.next().ok_or("--listen needs an address")?,
            "--store" => store = Some(it.next().ok_or("--store needs a path")?),
            "--workers" => {
                let v = it.next().ok_or("--workers needs a count")?;
                workers =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--workers must be a positive integer, got `{v}`")
                    })?;
            }
            "--shard" => {
                let v = it.next().ok_or("--shard needs K/N")?;
                shard = Some(parse_shard(&v).ok_or_else(|| {
                    format!("--shard must be K/N with K < N (e.g. 0/3), got `{v}`")
                })?);
            }
            "--ttl" => {
                let v = it.next().ok_or("--ttl needs seconds")?;
                ttl = Some(std::time::Duration::from_secs(v.parse::<u64>().map_err(
                    |_| format!("--ttl must be a whole number of seconds, got `{v}`"),
                )?));
            }
            "--metrics-addr" => {
                metrics_addr = Some(it.next().ok_or("--metrics-addr needs an address")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: hbserve [--listen ADDR] [--store PATH] [--workers N] \
                     [--shard K/N] [--ttl SECS] [--metrics-addr ADDR]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Args {
        listen,
        store,
        workers,
        shard,
        ttl,
        metrics_addr,
    })
}

/// Serves the metrics exposition over minimal HTTP: every connection gets
/// a `200 OK text/plain` with the current render, regardless of path —
/// enough for `curl` and a Prometheus scrape config, with no HTTP
/// machinery worth auditing.
fn serve_metrics_http(
    listener: std::net::TcpListener,
    render: impl Fn() -> String + Send + Sync + 'static,
) {
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { continue };
            // Drain (one read of) the request; the response is the same
            // for every path and method.
            let mut buf = [0u8; 1024];
            use std::io::{Read as _, Write as _};
            let _ = conn.read(&mut buf);
            let body = render();
            let _ = write!(
                conn,
                "HTTP/1.1 200 OK\r\ncontent-type: text/plain; version=0.0.4\r\n\
                 content-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            );
        }
    });
}

/// Decodes the wire tag back to a compiler mode (the client sends
/// `mode as u64`, exactly the salt the in-process service uses — so the
/// remote store keys match local ones bit for bit).
fn mode_of(tag: u64) -> Option<Mode> {
    Mode::ALL.into_iter().find(|&m| m as u64 == tag)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut svc = match &args.store {
        Some(path) => match PersistentService::open(args.workers, path) {
            Ok(svc) => svc,
            Err(e) => {
                eprintln!("cannot open store {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => PersistentService::new(args.workers),
    };
    svc.set_ttl(args.ttl);
    let build: Arc<Builder> = Arc::new(|program, config, tag| {
        let mode = mode_of(tag).expect("tags are validated before any build");
        build_machine_with_config(program, mode, config)
    });
    let tag_ok: Arc<TagCheck> = Arc::new(|tag| mode_of(tag).is_some());
    let mut server = match Server::bind(&args.listen, svc, build, tag_ok) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.listen);
            return ExitCode::from(2);
        }
    };
    if let Some((index, count)) = args.shard {
        server.set_shard(index, count);
    }
    match server.local_addr() {
        Ok(addr) => {
            // The first stdout line is the contract wrappers parse; flush
            // so a piped reader sees it before the first request.
            println!("hbserve listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(maddr) = &args.metrics_addr {
        let listener = match std::net::TcpListener::bind(maddr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cannot bind metrics address {maddr}: {e}");
                return ExitCode::from(2);
            }
        };
        match listener.local_addr() {
            Ok(addr) => {
                // Second stdout line, same parse-friendly shape as the
                // main banner (ephemeral-port discovery for wrappers).
                println!("hbserve metrics on {addr}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("cannot read metrics address: {e}");
                return ExitCode::from(2);
            }
        }
        serve_metrics_http(listener, server.metrics_renderer());
    }
    let shared = server.service();
    if let Err(e) = server.run() {
        eprintln!("accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    // Shutdown: compact the persistent log and report the totals.
    let mut svc = shared.lock().unwrap_or_else(PoisonError::into_inner);
    if let Err(e) = svc.checkpoint() {
        eprintln!("checkpoint failed: {e}");
        return ExitCode::FAILURE;
    }
    let stats = svc.stats();
    eprintln!(
        "hbserve: served {} hits / {} misses, {} results resident{}",
        stats.service.store.hits,
        stats.service.store.misses,
        stats.service.store_len,
        match stats.log {
            Some(log) => format!(", {} log records appended", log.appended),
            None => String::new(),
        }
    );
    ExitCode::SUCCESS
}
