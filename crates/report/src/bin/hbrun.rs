//! `hbrun` — compile and run a Cb program (or a `.s` µop listing) on the
//! HardBound simulator.
//!
//! ```sh
//! cargo run -p hardbound-report --bin hbrun -- program.cb \
//!     [--mode baseline|malloc-only|hardbound|softbound|objtable] \
//!     [--encoding extern-4|intern-4|intern-11] [--stats] [--disasm] \
//!     [--engine|--interp]
//! ```
//!
//! Inputs ending in `.s` are treated as assembly listings in the
//! disassembler's grammar (`isa::parse_program`) and run directly —
//! `hbrun --disasm prog.cb > prog.s && hbrun prog.s` round-trips the code
//! image. Everything else is compiled as Cb with the runtime library
//! (`malloc`, strings, fixed point) linked in; the machine configuration
//! is paired to the mode exactly as in the paper's evaluation.
//!
//! `--disasm` prints the listing (and nothing else) instead of running.
//! Execution goes through the pre-decoded basic-block engine by default;
//! `--interp` selects the one-µop-per-step interpreter (the two are
//! observationally identical — see `tests/engine_differential.rs`).

use std::process::ExitCode;

use hardbound_compiler::Mode;
use hardbound_core::{MetaPath, PointerEncoding};
use hardbound_exec::Engine;
use hardbound_isa::Program;
use hardbound_runtime::{build_machine_with_config, compile, engine_default, machine_config};

struct Args {
    path: String,
    mode: Mode,
    encoding: PointerEncoding,
    stats: bool,
    disasm: bool,
    engine: bool,
    meta: Option<MetaPath>,
}

fn parse_args() -> Result<Args, String> {
    let mut path = None;
    let mut mode = Mode::HardBound;
    let mut encoding = PointerEncoding::Intern4;
    let mut stats = false;
    let mut disasm = false;
    // `HB_INTERP=1` flips the default; the flags below override both.
    let mut engine = engine_default();
    // `HB_META_FAST=0` flips the metadata fast path; `--meta` overrides.
    let mut meta = None;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mode" => {
                let v = it.next().ok_or("--mode needs a value")?;
                mode = match v.as_str() {
                    "baseline" => Mode::Baseline,
                    "malloc-only" => Mode::MallocOnly,
                    "hardbound" => Mode::HardBound,
                    "softbound" => Mode::SoftBound,
                    "objtable" => Mode::ObjectTable,
                    other => return Err(format!("unknown mode `{other}`")),
                };
            }
            "--encoding" => {
                let v = it.next().ok_or("--encoding needs a value")?;
                encoding = match v.as_str() {
                    "extern-4" => PointerEncoding::Extern4,
                    "intern-4" => PointerEncoding::Intern4,
                    "intern-11" => PointerEncoding::Intern11,
                    other => return Err(format!("unknown encoding `{other}`")),
                };
            }
            "--meta" => {
                let v = it.next().ok_or("--meta needs a value")?;
                meta = Some(match v.as_str() {
                    "summary" => MetaPath::Summary,
                    "walk" => MetaPath::Walk,
                    "charge" => MetaPath::Charge,
                    other => return Err(format!("unknown meta path `{other}`")),
                });
            }
            "--stats" => stats = true,
            "--disasm" => disasm = true,
            "--engine" => engine = true,
            "--interp" => engine = false,
            "--help" | "-h" => {
                return Err(
                    "usage: hbrun FILE.{cb,s} [--mode M] [--encoding E] [--stats] \
                     [--disasm] [--engine|--interp] [--meta summary|walk|charge]"
                        .to_owned(),
                )
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let path = path.ok_or("no input file (try --help)")?;
    Ok(Args {
        path,
        mode,
        encoding,
        stats,
        disasm,
        engine,
        meta,
    })
}

/// Loads the program image: `.s` listings assemble directly, anything else
/// compiles as Cb with the runtime linked in.
fn load(args: &Args, source: &str) -> Result<Program, String> {
    if std::path::Path::new(&args.path)
        .extension()
        .is_some_and(|e| e == "s")
    {
        let program = hardbound_isa::parse_program(source).map_err(|e| e.to_string())?;
        program
            .validate()
            .map_err(|e| format!("invalid listing: {e}"))?;
        Ok(program)
    } else {
        compile(source, args.mode).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.path);
            return ExitCode::from(2);
        }
    };
    let program = match load(&args, &source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    };
    if args.disasm {
        // Print the listing and stop: stdout then carries only the `.s`
        // grammar, so `hbrun --disasm prog.cb > prog.s && hbrun prog.s`
        // round-trips.
        print!("{}", program.disassemble());
        return ExitCode::SUCCESS;
    }

    let mut config = machine_config(args.mode, args.encoding);
    if let Some(meta) = args.meta {
        config = config.with_meta_path(meta);
    }
    let machine = build_machine_with_config(program, args.mode, config);
    let out = if args.engine {
        Engine::new(machine).run()
    } else {
        let mut machine = machine;
        machine.run()
    };
    print!("{}", out.output);
    if let Some(trap) = &out.trap {
        eprintln!("trap: {trap}");
    }
    if args.stats {
        let s = &out.stats;
        eprintln!(
            "-- stats ({} mode, {} encoding, {}) --",
            args.mode,
            args.encoding,
            if args.engine { "engine" } else { "interpreter" }
        );
        eprintln!("cycles:          {}", s.cycles());
        eprintln!("µops:            {}", s.uops);
        eprintln!("setbound µops:   {}", s.setbound_uops);
        eprintln!("metadata µops:   {}", s.meta_uops);
        eprintln!("bounds checks:   {}", s.bounds_checks);
        eprintln!("loads/stores:    {}/{}", s.loads, s.stores);
        eprintln!(
            "ptr compression: {}/{} stores ({:.1}%)",
            s.compressed_ptr_stores,
            s.ptr_stores,
            100.0 * s.store_compression_rate()
        );
        eprintln!(
            "pages:           {} data, {} tag, {} base/bound",
            s.data_pages, s.tag_pages, s.shadow_pages
        );
        eprintln!(
            "stalls:          {} data, {} metadata",
            s.hierarchy.data_stall_cycles,
            s.metadata_stall_cycles()
        );
    }
    match out.trap {
        Some(_) => ExitCode::from(3),
        None => ExitCode::from(out.exit_code.unwrap_or(0).clamp(0, 255) as u8),
    }
}
