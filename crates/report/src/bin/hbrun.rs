//! `hbrun` — compile and run Cb programs (or `.s` µop listings) on the
//! HardBound simulator.
//!
//! ```sh
//! cargo run -p hardbound-report --bin hbrun -- program.cb \
//!     [--mode baseline|malloc-only|hardbound|softbound|objtable] \
//!     [--encoding extern-4|intern-4|intern-11] [--stats] [--metrics] \
//!     [--disasm] [--engine|--interp] [--opt|--no-opt] [--profile]
//! ```
//!
//! Inputs ending in `.s` are treated as assembly listings in the
//! disassembler's grammar (`isa::parse_program`) and run directly —
//! `hbrun --disasm prog.cb > prog.s && hbrun prog.s` round-trips the code
//! image. **Several inputs link**: `hbrun main.s lib.s` merges the
//! listings with `isa::merge_programs` (function renumbering, named
//! stub resolution, duplicate folding, data/globals union), and several
//! `.cb` files concatenate into one translation unit before compilation.
//! Mixing the two kinds is an error. Everything else is compiled as Cb
//! with the runtime library (`malloc`, strings, fixed point) linked in;
//! the machine configuration is paired to the mode exactly as in the
//! paper's evaluation.
//!
//! `--disasm` prints the (merged) listing and nothing else instead of
//! running. Execution goes through the corpus service by default — the
//! pre-decoded basic-block engine plus the process-wide decode cache and
//! result store (`HB_SERVICE=0` and `HB_RESULT_CACHE=0` opt out layer by
//! layer); `--interp` selects the one-µop-per-step interpreter (all paths
//! are observationally identical — see `tests/engine_differential.rs` and
//! `tests/service_differential.rs`). With `--stats`, service runs also
//! report result-store and block-cache counters; `--metrics` dumps the
//! full process-global metrics registry (the same cells, Prometheus text
//! form) to stderr after the run.
//!
//! `--profile` arms the engine's per-superblock hot-spot profiler (the
//! same switch as `HB_PROF=1`) and, after the run, prints the ranked-PC
//! table and the folded-stack (flamegraph collapse) text to stderr. On
//! any trap, `hbrun` re-runs the program on a forensics interpreter and
//! prints the structured violation report — faulting PC with a
//! disassembled window, out-of-bounds distance, originating `setbound`
//! site, page metadata summary, and the `HB_FLIGHT=N` flight-recorder
//! tail when armed.

use std::process::ExitCode;

use hardbound_compiler::Mode;
use hardbound_core::{checked_ratio, MetaPath, PointerEncoding};
use hardbound_exec::{Engine, OptConfig};
use hardbound_isa::Program;
use hardbound_runtime::{
    build_machine_with_config, compile, compile_cache_stats, engine_default, env_flag,
    machine_config, metrics_snapshot, remote_stats, run_job, service_stats, store_log_stats,
};

struct Args {
    paths: Vec<String>,
    mode: Mode,
    encoding: PointerEncoding,
    stats: bool,
    metrics: bool,
    disasm: bool,
    engine: bool,
    profile: bool,
    meta: Option<MetaPath>,
}

fn parse_args() -> Result<Args, String> {
    let mut paths = Vec::new();
    let mut mode = Mode::HardBound;
    let mut encoding = PointerEncoding::Intern4;
    let mut stats = false;
    let mut metrics = false;
    let mut disasm = false;
    let mut profile = false;
    // `HB_INTERP=1` flips the default; the flags below override both.
    let mut engine = engine_default();
    // `HB_META_FAST=0` flips the metadata fast path; `--meta` overrides.
    let mut meta = None;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mode" => {
                let v = it.next().ok_or("--mode needs a value")?;
                mode = match v.as_str() {
                    "baseline" => Mode::Baseline,
                    "malloc-only" => Mode::MallocOnly,
                    "hardbound" => Mode::HardBound,
                    "softbound" => Mode::SoftBound,
                    "objtable" => Mode::ObjectTable,
                    other => return Err(format!("unknown mode `{other}`")),
                };
            }
            "--encoding" => {
                let v = it.next().ok_or("--encoding needs a value")?;
                encoding = match v.as_str() {
                    "extern-4" => PointerEncoding::Extern4,
                    "intern-4" => PointerEncoding::Intern4,
                    "intern-11" => PointerEncoding::Intern11,
                    other => return Err(format!("unknown encoding `{other}`")),
                };
            }
            "--meta" => {
                let v = it.next().ok_or("--meta needs a value")?;
                meta = Some(match v.as_str() {
                    "summary" => MetaPath::Summary,
                    "walk" => MetaPath::Walk,
                    "charge" => MetaPath::Charge,
                    other => return Err(format!("unknown meta path `{other}`")),
                });
            }
            "--stats" => stats = true,
            "--metrics" => metrics = true,
            "--disasm" => disasm = true,
            // Same env plumbing as --opt: engines read HB_PROF once at
            // construction, and nothing constructs one before argument
            // parsing finishes.
            "--profile" => {
                profile = true;
                std::env::set_var("HB_PROF", "1");
            }
            "--engine" => engine = true,
            "--interp" => engine = false,
            // The optimizer rides the same env plumbing every other layer
            // reads (`OptConfig::from_env` at engine construction), so the
            // flags just pin the variables before anything resolves them.
            "--opt" => std::env::set_var("HB_OPT", "1"),
            "--no-opt" => {
                std::env::set_var("HB_OPT", "0");
                std::env::set_var("HB_OPT_AUDIT", "0");
            }
            "--help" | "-h" => {
                return Err(
                    "usage: hbrun FILE.{cb,s} [FILE.{cb,s} ...] [--mode M] [--encoding E] \
                     [--stats] [--metrics] [--disasm] [--engine|--interp] [--opt|--no-opt] \
                     [--profile] [--meta summary|walk|charge]"
                        .to_owned(),
                )
            }
            other if !other.starts_with('-') => paths.push(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if paths.is_empty() {
        return Err("no input file (try --help)".to_owned());
    }
    Ok(Args {
        paths,
        mode,
        encoding,
        stats,
        metrics,
        disasm,
        engine,
        profile,
        meta,
    })
}

fn is_listing(path: &str) -> bool {
    std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e == "s")
}

/// Loads the program image. All-`.s` inputs parse individually and link
/// with the listing merger; all-`.cb` inputs concatenate into one
/// translation unit compiled with the runtime linked in.
fn load(args: &Args, sources: &[(String, String)]) -> Result<Program, String> {
    let listings = sources.iter().filter(|(p, _)| is_listing(p)).count();
    if listings != 0 && listings != sources.len() {
        return Err("cannot mix .s listings and Cb sources in one run".to_owned());
    }
    if listings != 0 {
        let parts = sources
            .iter()
            .map(|(path, text)| {
                hardbound_isa::parse_program(text).map_err(|e| format!("{path}: {e}"))
            })
            .collect::<Result<Vec<Program>, String>>()?;
        let program = hardbound_isa::merge_programs(parts).map_err(|e| e.to_string())?;
        program
            .validate()
            .map_err(|e| format!("invalid linked listing: {e}"))?;
        Ok(program)
    } else {
        let combined = sources
            .iter()
            .map(|(_, text)| text.as_str())
            .collect::<Vec<&str>>()
            .join("\n");
        compile(&combined, args.mode).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut sources = Vec::new();
    for path in &args.paths {
        match std::fs::read_to_string(path) {
            Ok(s) => sources.push((path.clone(), s)),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let program = match load(&args, &sources) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    };
    if args.disasm {
        // Print the listing and stop: stdout then carries only the `.s`
        // grammar, so `hbrun --disasm prog.cb > prog.s && hbrun prog.s`
        // round-trips.
        print!("{}", program.disassemble());
        return ExitCode::SUCCESS;
    }

    let mut config = machine_config(args.mode, args.encoding);
    if let Some(meta) = args.meta {
        config = config.with_meta_path(meta);
    }
    // Three execution paths, outermost first: the corpus service (engine +
    // shared decode cache + result store), the bare engine, and the
    // interpreter. All observationally identical. `args.engine` already
    // folds in HB_INTERP *and* the --engine/--interp overrides, so only
    // HB_SERVICE is consulted here — `service_enabled()` would re-read
    // HB_INTERP and silently defeat an explicit `--engine`.
    let through_service = args.engine && env_flag("HB_SERVICE").unwrap_or(true);
    // `--stats` reports *this run's* registry activity: snapshot the
    // process-global cells before executing and print the delta after, so
    // a long-lived embedder (or a test running two grids back to back)
    // never sees one run's counters polluted by an earlier one.
    let registry_before = args.stats.then(metrics_snapshot);
    // Forensics re-runs on a fresh interpreter machine after a trap; the
    // run paths below consume the image, so keep a copy for that path.
    let forensics = (program.clone(), config.clone());
    let out = if through_service {
        run_job(program, args.mode, config)
    } else {
        let machine = build_machine_with_config(program, args.mode, config);
        if args.engine {
            Engine::new(machine).run()
        } else {
            let mut machine = machine;
            machine.run()
        }
    };
    print!("{}", out.output);
    if let Some(trap) = &out.trap {
        eprintln!("trap: {trap}");
        let (program, config) = forensics;
        if let Some(report) = hardbound_runtime::violation_report(program, args.mode, config) {
            eprint!("{report}");
        }
    }
    if args.stats {
        // Per-run registry activity (see the snapshot above the run).
        let registry = metrics_snapshot().delta(
            registry_before
                .as_ref()
                .expect("--stats snapshots the registry before the run"),
        );
        let s = &out.stats;
        eprintln!(
            "-- stats ({} mode, {} encoding, {}) --",
            args.mode,
            args.encoding,
            if through_service {
                "service"
            } else if args.engine {
                "engine"
            } else {
                "interpreter"
            }
        );
        eprintln!("cycles:          {}", s.cycles());
        eprintln!("µops:            {}", s.uops);
        eprintln!("setbound µops:   {}", s.setbound_uops);
        eprintln!("metadata µops:   {}", s.meta_uops);
        eprintln!("bounds checks:   {}", s.bounds_checks);
        eprintln!("loads/stores:    {}/{}", s.loads, s.stores);
        eprintln!(
            "ptr compression: {}/{} stores ({:.1}%)",
            s.compressed_ptr_stores,
            s.ptr_stores,
            100.0 * s.store_compression_rate()
        );
        eprintln!(
            "pages:           {} data, {} tag, {} base/bound",
            s.data_pages, s.tag_pages, s.shadow_pages
        );
        eprintln!(
            "stalls:          {} data, {} metadata",
            s.hierarchy.data_stall_cycles,
            s.metadata_stall_cycles()
        );
        // Per-class stall intensity. Structures a mode never touches (the
        // tag and shadow planes under baseline, shadow under malloc-only
        // programs with no uncompressed pointers) report 0.0, not NaN —
        // every ratio routes through the checked helper.
        eprintln!(
            "stalls/access:   {:.2} data, {:.2} tag, {:.2} base/bound",
            checked_ratio(s.hierarchy.data_stall_cycles, s.hierarchy.data_accesses),
            checked_ratio(s.hierarchy.tag_stall_cycles, s.hierarchy.tag_accesses),
            checked_ratio(s.hierarchy.shadow_stall_cycles, s.hierarchy.shadow_accesses),
        );
        if args.engine {
            // Hierarchy lookup-machinery activity, read back from the
            // process registry (the engine records residency-filter and
            // sampling counters there after each run).
            let (fast_hits, fast_misses) = (
                registry.counter("hb_hier_fastpath_hits"),
                registry.counter("hb_hier_fastpath_misses"),
            );
            eprintln!(
                "hier fast path:  {} proofs, {} scans ({:.1}% proved){}",
                fast_hits,
                fast_misses,
                100.0 * checked_ratio(fast_hits, fast_hits + fast_misses),
                match registry.counter("hb_hier_sampled_sets") {
                    0 => String::new(),
                    n => format!(", {n} sampled sets [APPROXIMATE]"),
                }
            );
        }
        let cc = compile_cache_stats();
        eprintln!("compile cache:   {} hits, {} misses", cc.hits, cc.misses);
        let opt = OptConfig::from_env();
        if opt.enabled {
            // Decode-time optimizer activity, read back from the process
            // registry (the engine records there as it optimizes blocks).
            eprintln!(
                "opt checks:      {} emitted, {} elided, {} hoisted, {} coalesced{}",
                registry.counter("hb_checks_emitted"),
                registry.counter("hb_checks_elided"),
                registry.counter("hb_checks_hoisted"),
                registry.counter("hb_checks_coalesced"),
                if opt.audit { " [audited]" } else { "" }
            );
        }
        if through_service {
            let remote = remote_stats();
            if remote.round_trips > 0 {
                // The run was offloaded (`HB_SERVE_ADDR`); the store and
                // cache counters live in the server's process, not here.
                eprintln!(
                    "remote server:   {} round-trips, {} cells shipped",
                    remote.round_trips, remote.cells
                );
                if remote.retries + remote.reroutes > 0 {
                    eprintln!(
                        "remote failover: {} retries, {} re-routed submissions",
                        remote.retries, remote.reroutes
                    );
                }
            } else {
                let svc = service_stats();
                eprintln!(
                    "result store:    {} hits, {} misses, {} stored, {} evicted",
                    svc.store.hits, svc.store.misses, svc.store_len, svc.store.evicted
                );
                if let Some(log) = store_log_stats() {
                    eprintln!(
                        "store log:       {} loaded, {} appended, {} flushes, {} compactions{}{}{}",
                        log.loaded,
                        log.appended,
                        log.flushes,
                        log.compactions,
                        if log.read_only > 0 {
                            " [READ-ONLY: another process holds the lock]"
                        } else {
                            ""
                        },
                        if log.cold_start > 0 {
                            " [cold start: version/format mismatch]"
                        } else {
                            ""
                        },
                        if log.dropped_bytes > 0 {
                            " [corrupt tail truncated]"
                        } else {
                            ""
                        },
                    );
                }
                eprintln!(
                    "block cache:     {} hits, {} decoded, {} evicted, {} invalidated",
                    svc.cache.hits, svc.cache.decoded, svc.cache.evicted, svc.cache.invalidated
                );
                eprintln!(
                    "programs:        {} registered, {} blocks resident",
                    svc.programs, svc.blocks_resident
                );
            }
        }
    }
    if args.metrics {
        // The full registry exposition — the same cells `--stats` (and a
        // server's `METRICS` request) read, in Prometheus text form.
        eprint!("{}", metrics_snapshot().render());
    }
    if args.profile {
        // The engine flushed its per-block counters into the process-wide
        // accumulator at the end of the run; both renders read the same
        // snapshot so the table and the folded stacks agree exactly.
        let p = hardbound_telemetry::profile::global().snapshot();
        eprintln!("-- hot-spot profile (ranked blocks) --");
        eprint!("{}", p.render_table(20));
        eprintln!("-- folded stacks (flamegraph collapse) --");
        eprint!("{}", p.render_folded());
    }
    // The HB_TRACE sink is a static BufWriter with no exit destructor;
    // flush here so bare-engine/interpreter runs keep their spans too.
    hardbound_telemetry::trace::flush();
    match out.trap {
        Some(_) => ExitCode::from(3),
        None => ExitCode::from(out.exit_code.unwrap_or(0).clamp(0, 255) as u8),
    }
}
