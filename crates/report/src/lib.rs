//! Experiment drivers and table rendering for the HardBound evaluation.
//!
//! Each public function in [`experiments`] regenerates one of the paper's
//! evaluation artefacts (Figures 5–7, the §5.2 correctness suite, the §5.4
//! check-µop ablation and a tag-cache sensitivity sweep); [`render`] prints
//! them as text tables shaped like the paper's figures. The `hardbound-
//! bench` crate exposes these as `cargo bench` targets; EXPERIMENTS.md
//! records the paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod render;

pub use experiments::{
    ablation_check_uop, corpus_report, correctness, fig5, fig6, fig7, granularity, tag_cache_sweep,
    AblationRow, Fig5Row, Fig6Row, Fig7Row, GranularityRow, TagCacheRow,
};
