//! Text rendering of the experiment results, shaped like the paper's
//! figures.

use std::fmt::Write as _;

use hardbound_core::{checked_ratio, PointerEncoding};
use hardbound_workloads::published;

use crate::experiments::{
    average, AblationRow, Fig5Row, Fig6Row, Fig7Row, GranularityRow, TagCacheRow,
};

/// Figure 5 as a text table: one row per benchmark × encoding, with the
/// four stacked overhead components as percentages of the baseline.
#[must_use]
pub fn fig5_table(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5 — runtime overhead (% of baseline), stacked components\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>9} | {:>9} {:>9} {:>10} {:>10} | {:>8} {:>6}",
        "bench", "encoding", "setbound", "meta-µop", "meta-stall", "pollution", "total", "compr"
    );
    let _ = writeln!(out, "{}", "-".repeat(86));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>9} | {:>8.2}% {:>8.2}% {:>9.2}% {:>9.2}% | {:>7.2}% {:>5.1}%",
            r.bench,
            r.encoding.label(),
            100.0 * r.frac(r.setbound_uops as f64),
            100.0 * r.frac(r.meta_uops as f64),
            100.0 * r.frac(r.meta_stall_cycles as f64),
            100.0 * r.frac(r.pollution_cycles as f64),
            100.0 * (r.relative_runtime() - 1.0),
            100.0 * r.compression_rate,
        );
    }
    for enc in PointerEncoding::ALL {
        let avg = average(
            rows.iter()
                .filter(|r| r.encoding == enc)
                .map(Fig5Row::relative_runtime),
        );
        let _ = writeln!(
            out,
            "average overhead {:>10}: {:>6.2}%   (paper: extern-4 9%, intern-4 7%, intern-11 5%)",
            enc.label(),
            100.0 * (avg - 1.0)
        );
    }
    out
}

/// Figure 6 as a text table: extra distinct pages (% of baseline), split
/// into tag metadata and base/bound metadata.
#[must_use]
pub fn fig6_table(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6 — extra distinct 4 KB pages touched (% of baseline)\n\
         (our scaled-down inputs touch tens of pages, so percentages\n\
          quantize coarsely for the small-footprint benchmarks)\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>9} | {:>10} {:>9} {:>11} | {:>7}",
        "bench", "encoding", "base pages", "tag", "base/bound", "extra"
    );
    let _ = writeln!(out, "{}", "-".repeat(70));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>9} | {:>10} {:>8.1}% {:>10.1}% | {:>6.1}%",
            r.bench,
            r.encoding.label(),
            r.base_pages,
            100.0 * checked_ratio(r.tag_pages as u64, r.base_pages as u64),
            100.0 * checked_ratio(r.shadow_pages as u64, r.base_pages as u64),
            100.0 * r.extra_fraction(),
        );
    }
    for enc in PointerEncoding::ALL {
        let avg = average(
            rows.iter()
                .filter(|r| r.encoding == enc)
                .map(Fig6Row::extra_fraction),
        );
        let _ = writeln!(
            out,
            "average extra pages {:>10}: {:>6.1}%  (paper: extern-4 55%, intern-11 10%)",
            enc.label(),
            100.0 * avg
        );
    }
    out
}

/// Figure 7 as a text table, with the paper's published columns printed
/// alongside our measurements.
#[must_use]
pub fn fig7_table(rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7 — relative runtimes: software schemes vs HardBound\n\
         (columns marked [paper] are the published values for context;\n\
          ours model an un-elided object table and un-inferred fat pointers — see EXPERIMENTS.md)\n"
    );
    let _ = writeln!(
        out,
        "{:<10} | {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "bench",
        "objtab",
        "[paper]",
        "sb-µops",
        "[paper]",
        "sb-time",
        "[paper]",
        "extern4",
        "intern4",
        "intrn11",
    );
    let _ = writeln!(out, "{}", "-".repeat(104));
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<10} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}",
            r.bench,
            r.objtable_runtime,
            published::JK_RL_DA[i],
            r.softbound_uops,
            published::CCURED_SIM_UOPS[i],
            r.softbound_runtime,
            published::CCURED_SIM_RUNTIME[i],
            r.hardbound[0],
            r.hardbound[1],
            r.hardbound[2],
        );
    }
    let _ = writeln!(
        out,
        "{:<10} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}",
        "average",
        average(rows.iter().map(|r| r.objtable_runtime)),
        average(published::JK_RL_DA),
        average(rows.iter().map(|r| r.softbound_uops)),
        average(published::CCURED_SIM_UOPS),
        average(rows.iter().map(|r| r.softbound_runtime)),
        average(published::CCURED_SIM_RUNTIME),
        average(rows.iter().map(|r| r.hardbound[0])),
        average(rows.iter().map(|r| r.hardbound[1])),
        average(rows.iter().map(|r| r.hardbound[2])),
    );
    let _ = writeln!(
        out,
        "\npaper HardBound averages: extern-4 {:.2}, intern-4 {:.2}, intern-11 {:.2}",
        average(published::HB_EXTERN4),
        average(published::HB_INTERN4),
        average(published::HB_INTERN11),
    );
    out
}

/// The §5.4 check-µop ablation as a text table.
#[must_use]
pub fn ablation_table(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§5.4 ablation — bounds check of uncompressed pointers costs one µop\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>9} | {:>14} {:>14} {:>8}",
        "bench", "encoding", "parallel-check", "shared-ALU", "delta"
    );
    let _ = writeln!(out, "{}", "-".repeat(62));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>9} | {:>14.3} {:>14.3} {:>+7.2}%",
            r.bench,
            r.encoding.label(),
            r.parallel_check,
            r.shared_alu_check,
            100.0 * (r.shared_alu_check - r.parallel_check),
        );
    }
    let delta = average(rows.iter().map(|r| r.shared_alu_check - r.parallel_check));
    let _ = writeln!(
        out,
        "average delta: {:+.2}%  (paper: ≈ +3% average, max +10% on tsp)",
        100.0 * delta
    );
    out
}

/// The tag-cache sweep as a text table.
#[must_use]
pub fn tag_cache_table(rows: &[TagCacheRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation — tag metadata cache capacity sweep (intern-4 encoding)\n"
    );
    let _ = writeln!(
        out,
        "{:<10} | {:>8} {:>12} {:>12}",
        "bench", "tag KB", "rel.runtime", "tag stalls"
    );
    let _ = writeln!(out, "{}", "-".repeat(50));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} | {:>8} {:>12.3} {:>12}",
            r.bench,
            r.tag_cache_bytes / 1024,
            r.relative_runtime,
            r.tag_stall_cycles,
        );
    }
    out
}

/// The §6 protection-granularity contrast as a text table.
#[must_use]
pub fn granularity_table(rows: &[GranularityRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§6 — protection granularity across the violation corpus\n\
         (sub-object = an array inside a struct overflowing into a sibling\n\
          field: the access stays inside the allocation, so object- and\n\
          malloc-granular schemes cannot see it; word-granular `setbound`\n\
          bounds the array itself and traps)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:<20} | {:>15} {:>15} | {:>6}",
        "scheme", "granularity", "sub-object", "other", "false+"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:<20} | {:>7}/{:<4} {:>3.0}% {:>7}/{:<4} {:>3.0}% | {:>6}",
            r.scheme,
            r.granularity,
            r.subobject_detected,
            r.subobject_total,
            100.0 * r.subobject_rate(),
            r.other_detected,
            r.other_total,
            100.0 * r.other_rate(),
            r.false_positives,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_core::ExecStats;

    fn sample_fig5_row() -> Fig5Row {
        Fig5Row {
            bench: "treeadd",
            encoding: PointerEncoding::Extern4,
            base_cycles: 1000,
            hb_cycles: 1090,
            setbound_uops: 20,
            meta_uops: 10,
            meta_stall_cycles: 40,
            pollution_cycles: 20,
            compression_rate: 0.9,
            stats: ExecStats::default(),
        }
    }

    #[test]
    fn fig5_row_math() {
        let r = sample_fig5_row();
        assert!((r.relative_runtime() - 1.09).abs() < 1e-9);
        assert!((r.frac(20.0) - 0.02).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_render_as_zero_not_nan() {
        // A structure nothing ever touched (zero baseline cycles/pages)
        // must render 0.0, never NaN.
        let mut r = sample_fig5_row();
        r.base_cycles = 0;
        assert_eq!(r.relative_runtime(), 0.0);
        assert_eq!(r.frac(20.0), 0.0);

        let f6 = fig6_table(&[Fig6Row {
            bench: "empty",
            encoding: PointerEncoding::Intern11,
            base_pages: 0,
            tag_pages: 0,
            shadow_pages: 0,
        }]);
        assert!(!f6.contains("NaN"), "{f6}");
        assert!(f6.contains("0.0%"), "{f6}");
    }

    #[test]
    fn tables_render_nonempty() {
        let f5 = fig5_table(&[sample_fig5_row()]);
        assert!(f5.contains("treeadd"));
        assert!(f5.contains("extern-4"));

        let f6 = fig6_table(&[Fig6Row {
            bench: "mst",
            encoding: PointerEncoding::Intern11,
            base_pages: 100,
            tag_pages: 4,
            shadow_pages: 6,
        }]);
        assert!(f6.contains("mst"));
        assert!(f6.contains("10.0%"));

        let f7 = fig7_table(
            &(0..9)
                .map(|i| Fig7Row {
                    bench: hardbound_workloads::published::BENCHMARKS[i],
                    objtable_runtime: 1.5,
                    softbound_uops: 2.0,
                    softbound_runtime: 1.8,
                    hardbound: [1.09, 1.07, 1.05],
                })
                .collect::<Vec<_>>(),
        );
        assert!(f7.contains("average"));
        assert!(f7.contains("bisort"));

        let ab = ablation_table(&[AblationRow {
            bench: "tsp",
            encoding: PointerEncoding::Intern4,
            parallel_check: 1.05,
            shared_alu_check: 1.08,
        }]);
        assert!(ab.contains("tsp"));

        let tc = tag_cache_table(&[TagCacheRow {
            bench: "health",
            tag_cache_bytes: 2048,
            relative_runtime: 1.04,
            tag_stall_cycles: 1234,
        }]);
        assert!(tc.contains("health"));
    }

    #[test]
    fn average_helper() {
        assert_eq!(average([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(average(std::iter::empty()), 0.0);
    }
}
