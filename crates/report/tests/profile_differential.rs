//! Profiling differential: arming the hot-spot profiler must be invisible
//! to execution. For every cell of the full protection matrix (5 modes ×
//! 3 pointer encodings) the engine runs the same workload twice — profiler
//! off, profiler on — and the two [`RunOutcome`]s must be **equal**, which
//! is the repo's observational identity (exit code, trap, output, printed
//! ints, and every simulation statistic including cycle counts). The
//! profiled run must also actually populate the process-wide accumulator,
//! and the unprofiled run must leave it untouched.
//!
//! [`RunOutcome`]: hardbound_core::RunOutcome

use hardbound_compiler::Mode;
use hardbound_core::PointerEncoding;
use hardbound_exec::Engine;
use hardbound_runtime::{build_machine_with_config, compile, machine_config};
use hardbound_telemetry::profile;
use hardbound_workloads::{all, Scale};

#[test]
fn profiling_is_byte_identical_across_the_matrix() {
    let workload = &all(Scale::Smoke)[0];
    for mode in [
        Mode::Baseline,
        Mode::MallocOnly,
        Mode::HardBound,
        Mode::SoftBound,
        Mode::ObjectTable,
    ] {
        let program = compile(&workload.source, mode)
            .unwrap_or_else(|e| panic!("{} ({mode}): compile failed: {e}", workload.name));
        for enc in PointerEncoding::ALL {
            let config = machine_config(mode, enc);
            let mut off = Engine::new(build_machine_with_config(
                program.clone(),
                mode,
                config.clone(),
            ));
            off.set_profiling(false);
            let _ = profile::global().take();
            let plain = off.run();
            assert_eq!(
                profile::global().snapshot().total_execs(),
                0,
                "{mode}/{enc}: unprofiled run recorded profile data"
            );
            let mut on = Engine::new(build_machine_with_config(program.clone(), mode, config));
            on.set_profiling(true);
            let profiled = on.run();
            assert_eq!(
                plain, profiled,
                "{mode}/{enc}: profiling perturbed the outcome"
            );
            let recorded = profile::global().take();
            assert!(
                recorded.total_execs() > 0,
                "{mode}/{enc}: profiled run recorded nothing"
            );
            assert!(
                recorded.total_cycles() > 0,
                "{mode}/{enc}: profiled run attributed no cycles"
            );
        }
    }
}
