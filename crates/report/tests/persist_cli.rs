//! Cross-process persistence differential, through the real binary: an
//! `hbrun` under `HB_STORE_PATH` persists its cell; a second `hbrun`
//! **process** on the same path replays it byte-identically with zero
//! re-simulated cells (store stats prove the replay). This is the
//! acceptance criterion the in-process suites cannot cover — every byte
//! of warm state crosses a process boundary here.

use std::path::PathBuf;
use std::process::{Command, Output};

const SOURCE: &str = r"
    int main() {
        int *a = (int*)malloc(6 * sizeof(int));
        for (int i = 0; i < 6; i = i + 1) a[i] = i * i;
        int s = 0;
        for (int i = 0; i < 6; i = i + 1) s = s + a[i];
        print_int(s);
        free(a);
        return 0;
    }
";

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hbrun-persist-{}-{name}", std::process::id()))
}

fn hbrun(cb: &PathBuf, store: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hbrun"))
        .arg(cb.to_str().unwrap())
        .arg("--stats")
        .env("HB_STORE_PATH", store)
        .output()
        .expect("hbrun spawns")
}

#[test]
fn warm_replay_survives_a_process_restart() {
    let cb = temp("prog.cb");
    let store = temp("store.bin");
    std::fs::write(&cb, SOURCE).expect("source writes");
    let _ = std::fs::remove_file(&store);

    let cold = hbrun(&cb, &store);
    assert!(cold.status.success(), "{cold:?}");
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(
        cold_err.contains("result store:    0 hits, 1 misses"),
        "the first process simulates its cell: {cold_err}"
    );
    assert!(
        cold_err.contains("store log:       0 loaded, 1 appended"),
        "the outcome must be persisted: {cold_err}"
    );
    assert!(store.exists(), "the store file must exist after the run");

    let warm = hbrun(&cb, &store);
    assert!(warm.status.success(), "{warm:?}");
    assert_eq!(
        cold.stdout, warm.stdout,
        "cross-process warm replay must be byte-identical"
    );
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("result store:    1 hits, 0 misses"),
        "the restarted process must replay with zero re-simulated cells: {warm_err}"
    );
    assert!(
        warm_err.contains("store log:       1 loaded, 0 appended"),
        "replays append nothing: {warm_err}"
    );
    // The cycle decompositions agree line for line (stats are computed
    // from the replayed outcome, which is byte-identical).
    let stat_lines = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.starts_with("cycles:") || l.starts_with("µops:"))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(stat_lines(&cold_err), stat_lines(&warm_err));

    let _ = std::fs::remove_file(&cb);
    let _ = std::fs::remove_file(&store);
}

#[test]
fn corrupt_store_recovers_and_recomputes() {
    let cb = temp("recover.cb");
    let store = temp("recover-store.bin");
    std::fs::write(&cb, SOURCE).expect("source writes");
    let _ = std::fs::remove_file(&store);

    let cold = hbrun(&cb, &store);
    assert!(cold.status.success(), "{cold:?}");

    // Tear the file mid-record: the next process must load cleanly and
    // recompute exactly the lost cell.
    let bytes = std::fs::read(&store).expect("store exists");
    std::fs::write(&store, &bytes[..bytes.len() - 9]).expect("truncates");

    let recovered = hbrun(&cb, &store);
    assert!(recovered.status.success(), "{recovered:?}");
    assert_eq!(cold.stdout, recovered.stdout, "recovery changes nothing");
    let err = String::from_utf8_lossy(&recovered.stderr);
    assert!(
        err.contains("result store:    0 hits, 1 misses"),
        "the torn cell re-executes: {err}"
    );
    assert!(
        err.contains("store log:       0 loaded, 1 appended"),
        "…and is re-persisted: {err}"
    );

    // Third process: warm again.
    let warm = hbrun(&cb, &store);
    let err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        err.contains("result store:    1 hits, 0 misses"),
        "the re-persisted store serves the third process: {err}"
    );

    let _ = std::fs::remove_file(&cb);
    let _ = std::fs::remove_file(&store);
}
