//! End-to-end smoke tests of the `hbserve` binary: spawn a real server
//! process, drive cell grids through the `hardbound_serve` client, and
//! hold the remote path **byte-identical** to in-process execution — the
//! `HB_SERVE_ADDR` acceptance criterion. Also exercises `hbrun` as a
//! transparent client via the environment variable.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use hardbound_compiler::Mode;
use hardbound_core::PointerEncoding;
use hardbound_exec::CorpusService;
use hardbound_runtime::{build_machine_with_config, compile, machine_config};
use hardbound_serve::{Client, WireJob};

/// An `hbserve` child that dies with the test (no orphaned listeners when
/// an assertion fails before the explicit shutdown).
struct ServerGuard {
    child: Child,
    addr: String,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(extra: &[&str]) -> ServerGuard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hbserve"))
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("hbserve spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("hbserve prints its address");
    let addr = line
        .trim()
        .strip_prefix("hbserve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_owned();
    ServerGuard { child, addr }
}

const PROGRAMS: &[&str] = &[
    r"
    struct node { int v; struct node *next; };
    int main() {
        struct node *head = 0;
        for (int i = 0; i < 9; i = i + 1) {
            struct node *n = (struct node*)malloc(sizeof(struct node));
            n->v = i * 3; n->next = head; head = n;
        }
        int s = 0;
        for (struct node *p = head; p != 0; p = p->next) s = s + p->v;
        print_int(s);
        return 0;
    }
    ",
    r#"
    int main() {
        char *buf = (char*)malloc(16);
        strcpy(buf, "remote");
        print_str(buf);
        return strlen(buf);
    }
    "#,
];

const MODES: [Mode; 3] = [Mode::Baseline, Mode::HardBound, Mode::ObjectTable];

/// The test grid: every program × mode × encoding, as wire jobs plus the
/// matching in-process service jobs.
fn grid() -> (Vec<WireJob>, Vec<hardbound_exec::Job<Mode>>) {
    let mut wire = Vec::new();
    let mut local = Vec::new();
    for source in PROGRAMS {
        for mode in MODES {
            let program = compile(source, mode).expect("compiles");
            for encoding in PointerEncoding::ALL {
                let config = machine_config(mode, encoding);
                wire.push(WireJob::new(
                    &program,
                    config.clone(),
                    mode as u64,
                    mode as u64,
                ));
                local.push(hardbound_exec::Job {
                    program: program.clone(),
                    config,
                    salt: mode as u64,
                    tag: mode,
                });
            }
        }
    }
    (wire, local)
}

#[test]
fn remote_grid_is_byte_identical_to_in_process_service() {
    let server = spawn_server(&[]);
    let (wire_jobs, local_jobs) = grid();

    // The in-process reference: the same grid through a local service —
    // what `HB_SERVICE=1` runs.
    let mut svc = CorpusService::new(2);
    let expected = svc.run_batch(&local_jobs, |program, config, &mode| {
        build_machine_with_config(program, mode, config)
    });

    let mut client = Client::connect(&server.addr).expect("connects");
    let cold = client.run_jobs(&wire_jobs).expect("remote batch runs");
    assert_eq!(
        cold, expected,
        "hbserve outcomes must be byte-identical to the in-process service"
    );

    // Warm pass: every cell replays from the server's store.
    let before = client.stats().expect("stats");
    let warm = client.run_jobs(&wire_jobs).expect("remote warm batch runs");
    assert_eq!(warm, expected, "warm replay must be byte-identical");
    let after = client.stats().expect("stats");
    assert_eq!(
        after.hits - before.hits,
        wire_jobs.len() as u64,
        "the warm pass must be pure replay: {after:?}"
    );
    assert_eq!(after.misses, before.misses, "no new executions");

    client.shutdown().expect("shutdown");
    let mut guard = server;
    let status = guard.child.wait().expect("hbserve exits");
    assert!(status.success(), "hbserve must exit cleanly: {status}");
}

#[test]
fn hbrun_offloads_transparently_via_hb_serve_addr() {
    let server = spawn_server(&[]);
    let cb = std::env::temp_dir().join(format!("hbserve-test-{}.cb", std::process::id()));
    std::fs::write(&cb, PROGRAMS[0]).expect("temp source writes");
    let run = |envs: &[(&str, &str)]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_hbrun"));
        cmd.arg(cb.to_str().unwrap()).arg("--stats");
        for (k, v) in envs {
            cmd.env(k, v);
        }
        cmd.output().expect("hbrun runs")
    };
    let local = run(&[]);
    let remote = run(&[("HB_SERVE_ADDR", server.addr.as_str())]);
    assert!(local.status.success(), "{:?}", local);
    assert!(remote.status.success(), "{:?}", remote);
    assert_eq!(
        local.stdout, remote.stdout,
        "remote offload must not change program output"
    );
    assert_eq!(local.status.code(), remote.status.code());
    let stderr = String::from_utf8_lossy(&remote.stderr);
    assert!(
        stderr.contains("remote server:   1 round-trips, 1 cells shipped"),
        "remote stats must be surfaced: {stderr}"
    );

    let mut client = Client::connect(&server.addr).expect("connects");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.misses, 1, "the server executed hbrun's cell");
    client.shutdown().expect("shutdown");
    let _ = std::fs::remove_file(&cb);
}

#[test]
fn persistent_server_restarts_warm() {
    let store = std::env::temp_dir().join(format!("hbserve-store-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&store);
    let (wire_jobs, local_jobs) = grid();
    // Distinct store keys: cells sharing a `(program, config, salt)` —
    // the software modes run one baseline config for all encodings —
    // dedup within the batch, so only the distinct keys execute cold.
    let distinct = local_jobs
        .iter()
        .map(hardbound_exec::Job::key)
        .collect::<std::collections::HashSet<_>>()
        .len() as u64;

    // First server: cold, computes and persists.
    let server = spawn_server(&["--store", store.to_str().unwrap()]);
    let mut client = Client::connect(&server.addr).expect("connects");
    let cold = client.run_jobs(&wire_jobs).expect("cold batch");
    assert_eq!(client.stats().expect("stats").misses, distinct);
    client.shutdown().expect("shutdown");
    drop(client);
    let mut guard = server;
    assert!(guard.child.wait().expect("exits").success());
    drop(guard);

    // Second server process: the store file is its only warm state.
    let server = spawn_server(&["--store", store.to_str().unwrap()]);
    let mut client = Client::connect(&server.addr).expect("connects");
    let warm = client.run_jobs(&wire_jobs).expect("warm batch");
    assert_eq!(
        warm, cold,
        "a restarted hbserve must replay byte-identically from disk"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stats.misses, 0, "zero re-simulated cells after restart");
    assert_eq!(stats.hits, wire_jobs.len() as u64);
    client.shutdown().expect("shutdown");
    let _ = std::fs::remove_file(&store);
}
