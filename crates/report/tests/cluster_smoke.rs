//! End-to-end smoke tests of the **sharded hbserve cluster**: spawn real
//! `hbserve --shard k/n` processes, scatter a figure grid across them via
//! the runtime's consistent-hash client, and hold the cluster
//! **byte-identical** to a single in-process run — including with one
//! shard dead (the failover acceptance criterion: retry/re-route, never a
//! panic, never a wrong or missing cell).
//!
//! The observability acceptance rides the same harness: the `METRICS`
//! exposition of all shards must sum to the grid size, and a traced grid
//! (`HB_TRACE`) must produce one merged JSONL trace whose client
//! round-trip spans enclose the matching server-side execution spans —
//! with results byte-identical to tracing off, including on the
//! kill-one-shard re-route path.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use hardbound_compiler::Mode;
use hardbound_core::{PointerEncoding, RunOutcome};
use hardbound_exec::CorpusService;
use hardbound_runtime::{
    build_machine_with_config, compile, machine_config, remote_stats, run_jobs_remote_to, SimJob,
};
use hardbound_serve::Client;
use hardbound_telemetry::{scrape_value, trace, SpanEvent};

/// An `hbserve` child that dies with the test.
struct ServerGuard {
    child: Child,
    addr: String,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(extra: &[&str]) -> ServerGuard {
    spawn_server_with_env(extra, &[])
}

fn spawn_server_with_env(extra: &[&str], env: &[(&str, &str)]) -> ServerGuard {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hbserve"));
    cmd.args(["--listen", "127.0.0.1:0"]).args(extra);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("hbserve spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("hbserve prints its address");
    let addr = line
        .trim()
        .strip_prefix("hbserve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_owned();
    ServerGuard { child, addr }
}

/// Spawns an `n`-shard cluster, each member told its ring position.
fn spawn_cluster(n: usize) -> Vec<ServerGuard> {
    (0..n)
        .map(|k| spawn_server(&["--shard", &format!("{k}/{n}")]))
        .collect()
}

fn addrs_of(cluster: &[ServerGuard]) -> Vec<String> {
    cluster.iter().map(|s| s.addr.clone()).collect()
}

const PROGRAMS: &[&str] = &[
    r"
    struct node { int v; struct node *next; };
    int main() {
        struct node *head = 0;
        for (int i = 0; i < 9; i = i + 1) {
            struct node *n = (struct node*)malloc(sizeof(struct node));
            n->v = i * 3; n->next = head; head = n;
        }
        int s = 0;
        for (struct node *p = head; p != 0; p = p->next) s = s + p->v;
        print_int(s);
        return 0;
    }
    ",
    r#"
    int main() {
        char *buf = (char*)malloc(16);
        strcpy(buf, "cluster");
        print_str(buf);
        return strlen(buf);
    }
    "#,
];

const MODES: [Mode; 3] = [Mode::Baseline, Mode::HardBound, Mode::ObjectTable];

/// The figure grid (program × mode × encoding) as runtime jobs, plus the
/// matching in-process service jobs for the reference run.
fn grid() -> (Vec<SimJob>, Vec<hardbound_exec::Job<Mode>>) {
    let mut sim = Vec::new();
    let mut local = Vec::new();
    for source in PROGRAMS {
        for mode in MODES {
            let program = compile(source, mode).expect("compiles");
            for encoding in PointerEncoding::ALL {
                sim.push(SimJob::new(program.clone(), mode, encoding));
                local.push(hardbound_exec::Job {
                    program: program.clone(),
                    config: machine_config(mode, encoding),
                    salt: mode as u64,
                    tag: mode,
                });
            }
        }
    }
    (sim, local)
}

/// The single in-process reference run the cluster is measured against.
fn reference(local_jobs: &[hardbound_exec::Job<Mode>]) -> Vec<RunOutcome> {
    let mut svc = CorpusService::new(2);
    svc.run_batch(local_jobs, |program, config, &mode| {
        build_machine_with_config(program, mode, config)
    })
}

#[test]
fn three_shard_cluster_matches_the_in_process_run() {
    let cluster = spawn_cluster(3);
    let addrs = addrs_of(&cluster);
    let (sim_jobs, local_jobs) = grid();
    let expected = reference(&local_jobs);

    let out = run_jobs_remote_to(&addrs, &sim_jobs);
    assert_eq!(
        out, expected,
        "the sharded cluster must be byte-identical to a single in-process run"
    );

    // Distinct store keys in the grid (the software modes share one
    // baseline config across encodings, so those cells dedup).
    let distinct = local_jobs
        .iter()
        .map(hardbound_exec::Job::key)
        .collect::<std::collections::HashSet<_>>()
        .len() as u64;

    // Every shard served only cells it owns (no failover traffic on the
    // happy path), the work actually spread out, and across the cluster
    // each distinct key executed exactly once.
    let mut misses = 0;
    let mut served = 0;
    let mut scraped_cells = 0;
    for (k, guard) in cluster.iter().enumerate() {
        let mut client = Client::connect(&guard.addr).expect("connects");
        let stats = client.stats().expect("stats");
        assert_eq!(stats.shard_index, k as u64, "banner order is shard order");
        assert_eq!(stats.shard_count, 3);
        assert_eq!(stats.foreign_cells, 0, "shard {k} saw re-routed cells");
        assert!(stats.owned_cells > 0, "shard {k} sat idle: {stats:?}");
        assert_eq!(stats.tickets_finished, 1, "one submission per shard");
        assert_eq!(stats.tickets_active, 0, "nothing in flight after DONE");
        assert_eq!(stats.cells_in_flight, 0, "nothing in flight after DONE");
        misses += stats.misses;
        served += stats.hits + stats.misses;

        // The Prometheus exposition tells the same story as STATS: this
        // shard executed exactly the cells the ring routed to it.
        let text = client.metrics().expect("metrics");
        let cells = scrape_value(&text, "hbserve_cells_executed").unwrap_or_else(|| {
            panic!("shard {k} exposition lacks hbserve_cells_executed:\n{text}")
        });
        assert_eq!(
            cells,
            stats.owned_cells + stats.foreign_cells,
            "shard {k}: executed cells must equal owned + foreign"
        );
        assert_eq!(
            scrape_value(&text, "hbserve_shard_index"),
            Some(k as u64),
            "shard {k} exposition carries its ring position"
        );
        scraped_cells += cells;
        client.shutdown().expect("shutdown");
    }
    assert_eq!(misses, distinct, "each distinct key executed exactly once");
    assert_eq!(served, sim_jobs.len() as u64, "every cell was served");
    assert_eq!(
        scraped_cells,
        sim_jobs.len() as u64,
        "summed hbserve_cells_executed across the cluster must equal the grid size"
    );

    for mut guard in cluster {
        let status = guard.child.wait().expect("hbserve exits");
        assert!(status.success(), "hbserve must exit cleanly: {status}");
    }
}

#[test]
fn dead_shard_reroutes_to_survivors_with_zero_wrong_cells() {
    let mut cluster = spawn_cluster(3);
    let addrs = addrs_of(&cluster);
    let (sim_jobs, local_jobs) = grid();
    let expected = reference(&local_jobs);

    // Kill shard 1 outright: its cells must re-route to the survivors —
    // no panic, no wrong cell, no missing cell.
    {
        let dead = &mut cluster[1];
        dead.child.kill().expect("kill");
        dead.child.wait().expect("reap");
    }
    let before = remote_stats();
    let out = run_jobs_remote_to(&addrs, &sim_jobs);
    assert_eq!(
        out, expected,
        "losing a shard must not change a single outcome"
    );
    let after = remote_stats();
    assert!(
        after.reroutes > before.reroutes,
        "the dead shard's cells must re-route: {after:?}"
    );

    // The survivors picked up the dead shard's cells as foreign traffic.
    let mut foreign = 0;
    for k in [0usize, 2] {
        let mut client = Client::connect(&cluster[k].addr).expect("connects");
        foreign += client.stats().expect("stats").foreign_cells;
    }
    assert!(foreign > 0, "survivors must have served re-routed cells");
}

#[test]
fn shard_killed_mid_grid_recovers() {
    // A slower grid (distinct arithmetic loops) so the kill lands while
    // cells are still streaming; whenever it lands — before connect,
    // mid-stream, or after the grid finished — the client must come back
    // byte-identical.
    let cluster = spawn_cluster(2);
    let addrs = addrs_of(&cluster);
    let mut sim_jobs = Vec::new();
    let mut local_jobs = Vec::new();
    for k in 0..24 {
        let source = format!(
            "int main() {{\n\
               int s = 0;\n\
               for (int i = 0; i < {}; i = i + 1) s = s + i % 7;\n\
               print_int(s);\n\
               return 0;\n\
             }}",
            20_000 + k * 13
        );
        let program = compile(&source, Mode::HardBound).expect("compiles");
        sim_jobs.push(SimJob::new(
            program.clone(),
            Mode::HardBound,
            PointerEncoding::Intern4,
        ));
        local_jobs.push(hardbound_exec::Job {
            program,
            config: machine_config(Mode::HardBound, PointerEncoding::Intern4),
            salt: Mode::HardBound as u64,
            tag: Mode::HardBound,
        });
    }
    let expected = reference(&local_jobs);

    let mut cluster = cluster;
    let mut victim = cluster.remove(0);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        victim.child.kill().expect("kill");
        victim.child.wait().expect("reap");
    });
    let out = run_jobs_remote_to(&addrs, &sim_jobs);
    killer.join().expect("killer thread");
    drop(cluster);
    assert_eq!(
        out, expected,
        "a shard dying mid-grid must degrade to retry/re-route, not corrupt cells"
    );
}

/// The profiler acceptance criterion: a grid over a 3-shard cluster
/// running with `HB_PROF=1` yields per-shard hot-spot profiles whose
/// client-side merge conserves counts **exactly** — every merged block's
/// retire count equals the sum of that block's per-shard counts, and the
/// merged totals equal the summed per-shard totals. Profiling the servers
/// must not change a single grid outcome, and after a shard dies the
/// merge must degrade to the survivors (reported as skipped, never an
/// error).
#[test]
fn profiled_cluster_merges_with_exact_count_conservation() {
    let mut cluster: Vec<ServerGuard> = (0..3)
        .map(|k| spawn_server_with_env(&["--shard", &format!("{k}/3")], &[("HB_PROF", "1")]))
        .collect();
    let addrs = addrs_of(&cluster);
    let (sim_jobs, local_jobs) = grid();
    let expected = reference(&local_jobs);

    let out = run_jobs_remote_to(&addrs, &sim_jobs);
    assert_eq!(
        out, expected,
        "profiling on the servers must not change a single grid outcome"
    );

    // Scrape each shard the same way a dashboard would, then merge the
    // cluster through the runtime helper.
    let per_shard: Vec<hardbound_telemetry::Profile> = cluster
        .iter()
        .map(|g| {
            Client::connect(&g.addr)
                .expect("connects")
                .profile()
                .expect("profile scrape")
        })
        .collect();
    assert!(
        per_shard.iter().all(|p| p.total_execs() > 0),
        "every shard executed cells, so every shard must have profile data"
    );
    let (merged, skipped) = hardbound_runtime::cluster_profile(&addrs);
    assert!(skipped.is_empty(), "all shards alive, none may be skipped");

    // Exact conservation, block by block and in total.
    assert_eq!(
        merged.total_execs(),
        per_shard
            .iter()
            .map(hardbound_telemetry::Profile::total_execs)
            .sum::<u64>(),
        "merged block retires must equal the sum of per-shard scrapes"
    );
    assert_eq!(
        merged.total_cycles(),
        per_shard
            .iter()
            .map(hardbound_telemetry::Profile::total_cycles)
            .sum::<u64>(),
        "merged cycle attribution must equal the sum of per-shard scrapes"
    );
    for (key, stat) in &merged.blocks {
        let (execs, cycles) = per_shard
            .iter()
            .filter_map(|p| p.blocks.get(key))
            .fold((0u64, 0u64), |(e, c), s| (e + s.execs, c + s.cycles));
        assert_eq!(
            (stat.execs, stat.cycles),
            (execs, cycles),
            "block {key:?} not conserved by the merge"
        );
    }

    // Kill shard 1: the merge degrades to the survivors and stays exact.
    {
        let dead = &mut cluster[1];
        dead.child.kill().expect("kill");
        dead.child.wait().expect("reap");
    }
    let (survivors, skipped) = hardbound_runtime::cluster_profile(&addrs);
    assert_eq!(
        skipped,
        vec![addrs[1].clone()],
        "exactly the dead shard is reported as skipped"
    );
    assert_eq!(
        survivors.total_execs(),
        per_shard[0].total_execs() + per_shard[2].total_execs(),
        "survivor merge must equal the sum of the surviving shards' scrapes"
    );
}

/// The observability acceptance criterion: one traced grid over a
/// 3-shard cluster — with one shard killed to force the re-route path —
/// yields a single merged JSONL trace in which every successful client
/// round-trip span encloses the matching server-side execution span,
/// while the grid results stay byte-identical to tracing off.
#[test]
fn traced_cluster_produces_one_merged_trace_with_enclosing_spans() {
    // 14 distinct cells: a grid size no other test in this binary uses,
    // so this grid's root span is identifiable even though the trace
    // sink is process-global and other tests may emit concurrently.
    const CELLS: u64 = 14;
    let mut sim_jobs = Vec::new();
    let mut local_jobs = Vec::new();
    for k in 0..CELLS {
        let source = format!(
            "int main() {{\n\
               int *a = (int*)malloc({} * sizeof(int));\n\
               int s = 0;\n\
               for (int i = 0; i < {}; i = i + 1) {{ a[i] = i * {k}; s = s + a[i]; }}\n\
               print_int(s);\n\
               return 0;\n\
             }}",
            4 + k,
            4 + k,
        );
        let program = compile(&source, Mode::HardBound).expect("compiles");
        sim_jobs.push(SimJob::new(
            program.clone(),
            Mode::HardBound,
            PointerEncoding::Intern4,
        ));
        local_jobs.push(hardbound_exec::Job {
            program,
            config: machine_config(Mode::HardBound, PointerEncoding::Intern4),
            salt: Mode::HardBound as u64,
            tag: Mode::HardBound,
        });
    }
    let expected = reference(&local_jobs);

    // Precondition (deterministic in the consistent hash): the shard we
    // are about to kill owns cells, so the re-route path really runs.
    let ring = hardbound_serve::ShardRing::new(3);
    let owned_by_victim = sim_jobs
        .iter()
        .filter(|j| {
            let pid = hardbound_exec::ProgramId::of(&j.program, &j.config);
            let fp = hardbound_exec::service::config_fingerprint(&j.config, j.mode as u64);
            ring.owner_of_cell(pid.0, fp) == 1
        })
        .count();
    assert!(
        owned_by_victim > 0,
        "test grid routes no cells to shard 1; vary the generator"
    );

    let mut cluster = spawn_cluster(3);
    let addrs = addrs_of(&cluster);

    // Baseline with tracing off, on the full cluster.
    trace::disable();
    let untraced = run_jobs_remote_to(&addrs, &sim_jobs);
    assert_eq!(untraced, expected, "untraced cluster run disagrees");

    // Kill shard 1, then run the same grid traced: the dead shard's
    // cells re-route, and the trace must record both the failures and
    // the enclosing server spans of the successful attempts.
    {
        let dead = &mut cluster[1];
        dead.child.kill().expect("kill");
        dead.child.wait().expect("reap");
    }
    let path = std::env::temp_dir().join(format!("hb-cluster-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    trace::install(&path).expect("trace sink installs");
    let traced = run_jobs_remote_to(&addrs, &sim_jobs);
    trace::disable();
    assert_eq!(
        traced, expected,
        "HB_TRACE on vs off must be byte-identical in grid results"
    );

    // Every emitted line re-parses under the documented schema.
    let text = std::fs::read_to_string(&path).expect("trace file exists");
    let events: Vec<SpanEvent> = text
        .lines()
        .map(|l| SpanEvent::parse(l).unwrap_or_else(|e| panic!("bad trace line {l:?}: {e}")))
        .collect();
    let _ = std::fs::remove_file(&path);

    // Exactly one grid root for this test's cell count; everything below
    // is keyed on its trace id — the "one coherent trace" criterion.
    let grids: Vec<&SpanEvent> = events
        .iter()
        .filter(|e| e.kind == "grid" && e.field_u64("cells") == Some(CELLS))
        .collect();
    assert_eq!(
        grids.len(),
        1,
        "expected exactly one {CELLS}-cell grid span"
    );
    let grid = grids[0];
    assert_eq!(grid.field_u64("shards"), Some(3));
    assert_eq!(grid.field_u64("failures"), Some(0));
    let in_trace: Vec<&SpanEvent> = events.iter().filter(|e| e.trace == grid.trace).collect();

    let rts: Vec<&&SpanEvent> = in_trace.iter().filter(|e| e.kind == "remote_rt").collect();
    let execs: Vec<&&SpanEvent> = in_trace
        .iter()
        .filter(|e| e.kind == "ticket_exec")
        .collect();
    assert!(!rts.is_empty(), "no round-trip spans in the grid trace");

    // The re-route story is attributable: the dead shard left failed
    // attempts (no ticket, an err field), and at least one later hop
    // succeeded elsewhere.
    let failed: Vec<&&&SpanEvent> = rts
        .iter()
        .filter(|e| e.field_u64("ticket").is_none())
        .collect();
    assert!(
        !failed.is_empty(),
        "the killed shard must leave failed round-trip spans"
    );
    assert!(
        failed.iter().all(|e| e.field_u64("shard") == Some(1)),
        "every failed attempt names the shard that died"
    );
    assert!(
        rts.iter()
            .any(|e| e.field_u64("hop").is_some_and(|h| h > 0) && e.field_u64("ticket").is_some()),
        "a re-routed (hop > 0) round trip must have succeeded"
    );

    // Enclosure: every successful round trip parents exactly one server
    // execution span (same trace, parent = the client span, same ticket),
    // and the server's wall-clock window sits inside the client's.
    // SystemTime is shared across local processes; the slack absorbs
    // microsecond rounding at the window edges.
    const SLACK_US: u64 = 5_000;
    let mut cells_enclosed = 0;
    for rt in rts.iter().filter(|e| e.field_u64("ticket").is_some()) {
        let matches: Vec<&&&SpanEvent> = execs.iter().filter(|e| e.parent == rt.span).collect();
        assert_eq!(
            matches.len(),
            1,
            "round trip {:?} must parent exactly one server exec span",
            rt.span
        );
        let ex = matches[0];
        assert_eq!(
            ex.field_u64("ticket"),
            rt.field_u64("ticket"),
            "client and server must agree on the ticket id"
        );
        assert!(
            ex.start_us + SLACK_US >= rt.start_us,
            "server span starts before its round trip: {ex:?} vs {rt:?}"
        );
        assert!(
            ex.end_us() <= rt.end_us() + SLACK_US,
            "server span outlives its round trip: {ex:?} vs {rt:?}"
        );
        // The per-chunk children the server shipped back ride under the
        // exec span.
        assert!(
            in_trace
                .iter()
                .any(|c| c.kind == "chunk" && c.parent == ex.span),
            "exec span {:?} has no chunk children",
            ex.span
        );
        cells_enclosed += ex.field_u64("cells").expect("exec spans carry cells");
    }
    assert!(
        cells_enclosed >= CELLS,
        "every cell must be covered by an enclosed server span \
         (got {cells_enclosed} of {CELLS}; resubmissions may exceed)"
    );
}
