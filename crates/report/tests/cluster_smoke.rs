//! End-to-end smoke tests of the **sharded hbserve cluster**: spawn real
//! `hbserve --shard k/n` processes, scatter a figure grid across them via
//! the runtime's consistent-hash client, and hold the cluster
//! **byte-identical** to a single in-process run — including with one
//! shard dead (the failover acceptance criterion: retry/re-route, never a
//! panic, never a wrong or missing cell).

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use hardbound_compiler::Mode;
use hardbound_core::{PointerEncoding, RunOutcome};
use hardbound_exec::CorpusService;
use hardbound_runtime::{
    build_machine_with_config, compile, machine_config, remote_stats, run_jobs_remote_to, SimJob,
};
use hardbound_serve::Client;

/// An `hbserve` child that dies with the test.
struct ServerGuard {
    child: Child,
    addr: String,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(extra: &[&str]) -> ServerGuard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hbserve"))
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("hbserve spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("hbserve prints its address");
    let addr = line
        .trim()
        .strip_prefix("hbserve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_owned();
    ServerGuard { child, addr }
}

/// Spawns an `n`-shard cluster, each member told its ring position.
fn spawn_cluster(n: usize) -> Vec<ServerGuard> {
    (0..n)
        .map(|k| spawn_server(&["--shard", &format!("{k}/{n}")]))
        .collect()
}

fn addrs_of(cluster: &[ServerGuard]) -> Vec<String> {
    cluster.iter().map(|s| s.addr.clone()).collect()
}

const PROGRAMS: &[&str] = &[
    r"
    struct node { int v; struct node *next; };
    int main() {
        struct node *head = 0;
        for (int i = 0; i < 9; i = i + 1) {
            struct node *n = (struct node*)malloc(sizeof(struct node));
            n->v = i * 3; n->next = head; head = n;
        }
        int s = 0;
        for (struct node *p = head; p != 0; p = p->next) s = s + p->v;
        print_int(s);
        return 0;
    }
    ",
    r#"
    int main() {
        char *buf = (char*)malloc(16);
        strcpy(buf, "cluster");
        print_str(buf);
        return strlen(buf);
    }
    "#,
];

const MODES: [Mode; 3] = [Mode::Baseline, Mode::HardBound, Mode::ObjectTable];

/// The figure grid (program × mode × encoding) as runtime jobs, plus the
/// matching in-process service jobs for the reference run.
fn grid() -> (Vec<SimJob>, Vec<hardbound_exec::Job<Mode>>) {
    let mut sim = Vec::new();
    let mut local = Vec::new();
    for source in PROGRAMS {
        for mode in MODES {
            let program = compile(source, mode).expect("compiles");
            for encoding in PointerEncoding::ALL {
                sim.push(SimJob::new(program.clone(), mode, encoding));
                local.push(hardbound_exec::Job {
                    program: program.clone(),
                    config: machine_config(mode, encoding),
                    salt: mode as u64,
                    tag: mode,
                });
            }
        }
    }
    (sim, local)
}

/// The single in-process reference run the cluster is measured against.
fn reference(local_jobs: &[hardbound_exec::Job<Mode>]) -> Vec<RunOutcome> {
    let mut svc = CorpusService::new(2);
    svc.run_batch(local_jobs, |program, config, &mode| {
        build_machine_with_config(program, mode, config)
    })
}

#[test]
fn three_shard_cluster_matches_the_in_process_run() {
    let cluster = spawn_cluster(3);
    let addrs = addrs_of(&cluster);
    let (sim_jobs, local_jobs) = grid();
    let expected = reference(&local_jobs);

    let out = run_jobs_remote_to(&addrs, &sim_jobs);
    assert_eq!(
        out, expected,
        "the sharded cluster must be byte-identical to a single in-process run"
    );

    // Distinct store keys in the grid (the software modes share one
    // baseline config across encodings, so those cells dedup).
    let distinct = local_jobs
        .iter()
        .map(hardbound_exec::Job::key)
        .collect::<std::collections::HashSet<_>>()
        .len() as u64;

    // Every shard served only cells it owns (no failover traffic on the
    // happy path), the work actually spread out, and across the cluster
    // each distinct key executed exactly once.
    let mut misses = 0;
    let mut served = 0;
    for (k, guard) in cluster.iter().enumerate() {
        let mut client = Client::connect(&guard.addr).expect("connects");
        let stats = client.stats().expect("stats");
        assert_eq!(stats.shard_index, k as u64, "banner order is shard order");
        assert_eq!(stats.shard_count, 3);
        assert_eq!(stats.foreign_cells, 0, "shard {k} saw re-routed cells");
        assert!(stats.owned_cells > 0, "shard {k} sat idle: {stats:?}");
        misses += stats.misses;
        served += stats.hits + stats.misses;
        client.shutdown().expect("shutdown");
    }
    assert_eq!(misses, distinct, "each distinct key executed exactly once");
    assert_eq!(served, sim_jobs.len() as u64, "every cell was served");

    for mut guard in cluster {
        let status = guard.child.wait().expect("hbserve exits");
        assert!(status.success(), "hbserve must exit cleanly: {status}");
    }
}

#[test]
fn dead_shard_reroutes_to_survivors_with_zero_wrong_cells() {
    let mut cluster = spawn_cluster(3);
    let addrs = addrs_of(&cluster);
    let (sim_jobs, local_jobs) = grid();
    let expected = reference(&local_jobs);

    // Kill shard 1 outright: its cells must re-route to the survivors —
    // no panic, no wrong cell, no missing cell.
    {
        let dead = &mut cluster[1];
        dead.child.kill().expect("kill");
        dead.child.wait().expect("reap");
    }
    let before = remote_stats();
    let out = run_jobs_remote_to(&addrs, &sim_jobs);
    assert_eq!(
        out, expected,
        "losing a shard must not change a single outcome"
    );
    let after = remote_stats();
    assert!(
        after.reroutes > before.reroutes,
        "the dead shard's cells must re-route: {after:?}"
    );

    // The survivors picked up the dead shard's cells as foreign traffic.
    let mut foreign = 0;
    for k in [0usize, 2] {
        let mut client = Client::connect(&cluster[k].addr).expect("connects");
        foreign += client.stats().expect("stats").foreign_cells;
    }
    assert!(foreign > 0, "survivors must have served re-routed cells");
}

#[test]
fn shard_killed_mid_grid_recovers() {
    // A slower grid (distinct arithmetic loops) so the kill lands while
    // cells are still streaming; whenever it lands — before connect,
    // mid-stream, or after the grid finished — the client must come back
    // byte-identical.
    let cluster = spawn_cluster(2);
    let addrs = addrs_of(&cluster);
    let mut sim_jobs = Vec::new();
    let mut local_jobs = Vec::new();
    for k in 0..24 {
        let source = format!(
            "int main() {{\n\
               int s = 0;\n\
               for (int i = 0; i < {}; i = i + 1) s = s + i % 7;\n\
               print_int(s);\n\
               return 0;\n\
             }}",
            20_000 + k * 13
        );
        let program = compile(&source, Mode::HardBound).expect("compiles");
        sim_jobs.push(SimJob::new(
            program.clone(),
            Mode::HardBound,
            PointerEncoding::Intern4,
        ));
        local_jobs.push(hardbound_exec::Job {
            program,
            config: machine_config(Mode::HardBound, PointerEncoding::Intern4),
            salt: Mode::HardBound as u64,
            tag: Mode::HardBound,
        });
    }
    let expected = reference(&local_jobs);

    let mut cluster = cluster;
    let mut victim = cluster.remove(0);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        victim.child.kill().expect("kill");
        victim.child.wait().expect("reap");
    });
    let out = run_jobs_remote_to(&addrs, &sim_jobs);
    killer.join().expect("killer thread");
    drop(cluster);
    assert_eq!(
        out, expected,
        "a shard dying mid-grid must degrade to retry/re-route, not corrupt cells"
    );
}
