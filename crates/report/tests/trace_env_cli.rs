//! The `HB_TRACE` environment path, through the real binary: an `hbrun`
//! process with `HB_TRACE=path` in its environment must run to
//! completion, produce output byte-identical to an untraced run, and
//! leave a sink where every line re-parses. The in-process suites all
//! install the sink programmatically ([`trace::install`]), so only a
//! spawned process exercises the lazy env-driven initialization — which
//! once deadlocked on a recursive `Once::call_once` (`ensure_env_init`
//! calling `install` calling `call_once` again). The watchdog below
//! turns a regression back into a test failure instead of a CI hang.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::Duration;

use hardbound_telemetry::SpanEvent;

const SOURCE: &str = r"
    int main() {
        int *a = (int*)malloc(6 * sizeof(int));
        for (int i = 0; i < 6; i = i + 1) a[i] = i * 7;
        int s = 0;
        for (int i = 0; i < 6; i = i + 1) s = s + a[i];
        print_int(s);
        free(a);
        return 0;
    }
";

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hbrun-trace-env-{}-{name}", std::process::id()))
}

/// Runs `hbrun` with the given extra env, killing it (and failing the
/// test) if it does not exit within 60 seconds — the regression this
/// suite pins was a deadlock, and a deadlock must not become a CI hang.
fn hbrun_watchdogged(cb: &PathBuf, envs: &[(&str, &PathBuf)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hbrun"));
    cmd.arg(cb.to_str().unwrap());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.stdout(std::process::Stdio::piped());
    cmd.stderr(std::process::Stdio::piped());
    let mut child = cmd.spawn().expect("hbrun spawns");
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        match child.try_wait().expect("wait works") {
            Some(_) => return child.wait_with_output().expect("output collects"),
            None if std::time::Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("hbrun did not exit within 60s — the HB_TRACE env path hangs");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn hb_trace_env_runs_to_completion_and_sink_parses() {
    let cb = temp("prog.cb");
    let sink = temp("trace.jsonl");
    std::fs::write(&cb, SOURCE).expect("source writes");
    let _ = std::fs::remove_file(&sink);

    let untraced = hbrun_watchdogged(&cb, &[]);
    assert!(untraced.status.success(), "{untraced:?}");

    let traced = hbrun_watchdogged(&cb, &[("HB_TRACE", &sink)]);
    assert!(traced.status.success(), "{traced:?}");
    assert_eq!(
        untraced.stdout, traced.stdout,
        "HB_TRACE must not change a byte of program output"
    );

    let text = std::fs::read_to_string(&sink).expect("trace sink written");
    let _ = std::fs::remove_file(&sink);
    assert!(!text.trim().is_empty(), "the traced run must emit spans");
    let mut kinds = std::collections::BTreeSet::new();
    for line in text.lines() {
        let ev = SpanEvent::parse(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        kinds.insert(ev.kind);
    }
    // A local service run stamps at least the compile and batch kinds.
    for kind in ["compile", "batch", "store_lookup", "batch_exec", "decode"] {
        assert!(kinds.contains(kind), "missing `{kind}` spans: {kinds:?}");
    }

    // Two *processes* must never mint the same ids: a second traced run
    // (fresh process, fresh sink) shares no trace or span id with the
    // first. The id generator once hashed its pre-seed counter value, so
    // every process's first id — a client's first trace and the shard
    // serving it's first span — was one deterministic constant.
    let sink2 = temp("trace2.jsonl");
    let _ = std::fs::remove_file(&sink2);
    let traced2 = hbrun_watchdogged(&cb, &[("HB_TRACE", &sink2)]);
    assert!(traced2.status.success(), "{traced2:?}");
    let text2 = std::fs::read_to_string(&sink2).expect("second trace sink written");
    let _ = std::fs::remove_file(&sink2);
    let _ = std::fs::remove_file(&cb);
    let ids = |t: &str| -> std::collections::BTreeSet<u64> {
        t.lines()
            .map(|l| SpanEvent::parse(l).expect("parses"))
            .flat_map(|ev| [ev.trace.0, ev.span.0])
            .collect()
    };
    let shared: Vec<u64> = ids(&text).intersection(&ids(&text2)).copied().collect();
    assert!(
        shared.is_empty(),
        "two processes minted the same ids: {shared:x?}"
    );
}
