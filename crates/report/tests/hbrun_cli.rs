//! End-to-end smoke tests of the `hbrun` binary: `.s` listing input and
//! the `--disasm` → `.s` → run round trip, plus the `--interp` escape
//! hatch agreeing with the default engine path.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hbrun(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hbrun"))
        .args(args)
        .output()
        .expect("hbrun spawns")
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hbrun-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("temp file writes");
    path
}

const COUNTDOWN_CB: &str = r"
    int main() {
        int *a = (int*)malloc(3 * sizeof(int));
        a[0] = 5; a[1] = 6; a[2] = 7;
        print_int(a[0] + a[1] + a[2]);
        free(a);
        return 0;
    }
";

#[test]
fn runs_a_handwritten_s_listing() {
    let path = write_temp(
        "hand.s",
        "; a bare µop listing: print 42 and exit 0\n\
         li    a0, 42\n\
         sys   print_int\n\
         li    a0, 0\n\
         sys   halt\n",
    );
    let out = hbrun(&[path.to_str().unwrap(), "--mode", "baseline"]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    assert_eq!(String::from_utf8_lossy(&out.stdout), "42\n");
    let _ = std::fs::remove_file(path);
}

#[test]
fn rejects_a_malformed_listing() {
    let path = write_temp("bad.s", "frobnicate a0\n");
    let out = hbrun(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn disasm_listing_round_trips_through_dot_s() {
    // The documented round trip, verbatim:
    //   hbrun --disasm prog.cb > prog.s && hbrun prog.s
    let cb = write_temp("rt.cb", COUNTDOWN_CB);
    let disasm = hbrun(&[cb.to_str().unwrap(), "--disasm"]);
    assert!(disasm.status.success(), "{disasm:?}");
    let listing = String::from_utf8(disasm.stdout).expect("utf-8 listing");
    assert!(
        listing.starts_with("; entry:"),
        "--disasm stdout is the bare listing"
    );
    let s = write_temp("rt.s", &listing);

    let from_cb = hbrun(&[cb.to_str().unwrap()]);
    let from_s = hbrun(&[s.to_str().unwrap()]);
    assert!(from_cb.status.success(), "{:?}", from_cb);
    assert!(from_s.status.success(), "{:?}", from_s);
    assert_eq!(
        from_cb.stdout, from_s.stdout,
        "listing must reproduce the run"
    );
    assert_eq!(String::from_utf8_lossy(&from_cb.stdout), "18\n");

    // The escape hatch agrees with the engine default.
    let interp = hbrun(&[s.to_str().unwrap(), "--interp", "--stats"]);
    let engine = hbrun(&[s.to_str().unwrap(), "--engine", "--stats"]);
    assert!(interp.status.success());
    assert_eq!(interp.stdout, engine.stdout);
    let strip = |o: &Output| {
        String::from_utf8_lossy(&o.stderr)
            .lines()
            .skip(1) // the header names the execution path
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&interp), strip(&engine), "stats must be identical");

    let _ = std::fs::remove_file(cb);
    let _ = std::fs::remove_file(s);
}
