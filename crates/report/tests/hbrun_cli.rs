//! End-to-end smoke tests of the `hbrun` binary: `.s` listing input and
//! the `--disasm` → `.s` → run round trip, plus the `--interp` escape
//! hatch agreeing with the default engine path.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hbrun(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hbrun"))
        .args(args)
        .output()
        .expect("hbrun spawns")
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hbrun-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("temp file writes");
    path
}

const COUNTDOWN_CB: &str = r"
    int main() {
        int *a = (int*)malloc(3 * sizeof(int));
        a[0] = 5; a[1] = 6; a[2] = 7;
        print_int(a[0] + a[1] + a[2]);
        free(a);
        return 0;
    }
";

#[test]
fn runs_a_handwritten_s_listing() {
    let path = write_temp(
        "hand.s",
        "; a bare µop listing: print 42 and exit 0\n\
         li    a0, 42\n\
         sys   print_int\n\
         li    a0, 0\n\
         sys   halt\n",
    );
    let out = hbrun(&[path.to_str().unwrap(), "--mode", "baseline"]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    assert_eq!(String::from_utf8_lossy(&out.stdout), "42\n");
    let _ = std::fs::remove_file(path);
}

#[test]
fn rejects_a_malformed_listing() {
    let path = write_temp("bad.s", "frobnicate a0\n");
    let out = hbrun(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn disasm_listing_round_trips_through_dot_s() {
    // The documented round trip, verbatim:
    //   hbrun --disasm prog.cb > prog.s && hbrun prog.s
    let cb = write_temp("rt.cb", COUNTDOWN_CB);
    let disasm = hbrun(&[cb.to_str().unwrap(), "--disasm"]);
    assert!(disasm.status.success(), "{disasm:?}");
    let listing = String::from_utf8(disasm.stdout).expect("utf-8 listing");
    assert!(
        listing.starts_with("; entry:"),
        "--disasm stdout is the bare listing"
    );
    let s = write_temp("rt.s", &listing);

    let from_cb = hbrun(&[cb.to_str().unwrap()]);
    let from_s = hbrun(&[s.to_str().unwrap()]);
    assert!(from_cb.status.success(), "{:?}", from_cb);
    assert!(from_s.status.success(), "{:?}", from_s);
    assert_eq!(
        from_cb.stdout, from_s.stdout,
        "listing must reproduce the run"
    );
    assert_eq!(String::from_utf8_lossy(&from_cb.stdout), "18\n");

    // The escape hatch agrees with the engine default (the service path
    // appends its own counters — result store, block cache — which the
    // interpreter path does not have; the simulated stats must agree).
    let interp = hbrun(&[s.to_str().unwrap(), "--interp", "--stats"]);
    let engine = hbrun(&[s.to_str().unwrap(), "--engine", "--stats"]);
    assert!(interp.status.success());
    assert_eq!(interp.stdout, engine.stdout);
    let strip = |o: &Output| {
        String::from_utf8_lossy(&o.stderr)
            .lines()
            .skip(1) // the header names the execution path
            .filter(|l| {
                !l.starts_with("result store:")
                    && !l.starts_with("block cache:")
                    && !l.starts_with("programs:")
                    && !l.starts_with("hier fast path:")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&interp), strip(&engine), "stats must be identical");
    assert!(
        String::from_utf8_lossy(&engine.stderr).contains("result store:"),
        "the service path surfaces its counters under --stats: {:?}",
        engine.stderr
    );

    let _ = std::fs::remove_file(cb);
    let _ = std::fs::remove_file(s);
}

#[test]
fn links_multiple_listings_with_stub_resolution() {
    // main.s calls fn#1, declared as a body-less stub named `triple`;
    // lib.s provides the definition. `hbrun main.s lib.s` links them.
    let main_s = write_temp(
        "link-main.s",
        "; entry: fn#0\n\
         fn#0 <main> (args=0, frame=0):\n\
           li    a0, 14\n\
           call  fn#1\n\
           sys   print_int\n\
           li    a0, 0\n\
           sys   halt\n\
         fn#1 <triple> (args=1, frame=0):\n",
    );
    let lib_s = write_temp(
        "link-lib.s",
        "fn#0 <triple> (args=1, frame=0):\n\
           mul   a0, a0, 3\n\
           ret\n",
    );
    let out = hbrun(&[
        main_s.to_str().unwrap(),
        lib_s.to_str().unwrap(),
        "--mode",
        "baseline",
    ]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    assert_eq!(String::from_utf8_lossy(&out.stdout), "42\n");

    // The unresolved stub alone fails with a linker diagnostic.
    let alone = hbrun(&[main_s.to_str().unwrap(), "--mode", "baseline"]);
    assert_eq!(alone.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&alone.stderr).contains("undefined symbol `triple`"),
        "stderr: {:?}",
        alone.stderr
    );

    let _ = std::fs::remove_file(main_s);
    let _ = std::fs::remove_file(lib_s);
}

#[test]
fn mixing_listing_and_cb_inputs_is_rejected() {
    let cb = write_temp("mix.cb", COUNTDOWN_CB);
    let s = write_temp("mix.s", "li a0, 0\nsys halt\n");
    let out = hbrun(&[cb.to_str().unwrap(), s.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot mix"));
    let _ = std::fs::remove_file(cb);
    let _ = std::fs::remove_file(s);
}
