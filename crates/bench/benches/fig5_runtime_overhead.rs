//! Regenerates paper Figure 5: runtime overhead of the three pointer
//! encodings on the Olden ports, decomposed into the paper's four stacked
//! components.

fn main() {
    let scale = hardbound_bench::scale_from_env();
    let t0 = std::time::Instant::now();
    let rows = hardbound_report::fig5(scale);
    println!("{}", hardbound_report::render::fig5_table(&rows));
    println!("(regenerated in {:.1?} at {scale:?} scale)", t0.elapsed());
}
