//! Regenerates the §5.4 design-choice experiment: charging one µop per
//! bounds check of an uncompressed pointer (a "more modest implementation"
//! using shared ALUs instead of a dedicated checker).

fn main() {
    let scale = hardbound_bench::scale_from_env();
    let t0 = std::time::Instant::now();
    let rows = hardbound_report::ablation_check_uop(scale);
    println!("{}", hardbound_report::render::ablation_table(&rows));
    println!("(regenerated in {:.1?} at {scale:?} scale)", t0.elapsed());
}
