//! Tag-metadata-cache capacity sweep: the paper fixes 2 KB (1-bit tags)
//! and 8 KB (4-bit tags); this ablation shows how sensitive the overhead
//! is to that design choice.

fn main() {
    let scale = hardbound_bench::scale_from_env();
    let t0 = std::time::Instant::now();
    let sizes = [1024, 2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024];
    let rows = hardbound_report::tag_cache_sweep(scale, &sizes);
    println!("{}", hardbound_report::render::tag_cache_table(&rows));
    println!("(regenerated in {:.1?} at {scale:?} scale)", t0.elapsed());
}
