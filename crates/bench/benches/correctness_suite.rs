//! Regenerates the §5.2 functional-correctness experiment: the 288-pair
//! spatial-violation corpus under full HardBound protection, for each
//! pointer encoding (paper: "HardBound detects all the violations and
//! generates no false positives"), followed by the §6
//! protection-granularity contrast (word vs object vs malloc-only) that
//! documents the sub-object blind spot of coarser-grained schemes.
//!
//! The corpus fans out across threads through `exec::batch` with
//! deterministic, corpus-ordered aggregation — the output is byte-identical
//! to the serial driver it replaced.

use hardbound_core::PointerEncoding;

fn main() {
    let t0 = std::time::Instant::now();
    for encoding in PointerEncoding::ALL {
        let report = hardbound_report::correctness(encoding);
        println!("§5.2 corpus under full HardBound, {encoding} encoding:");
        println!("{report}");
        println!(
            "verdict: {}",
            if report.is_perfect() {
                "all violations detected, no false positives (matches paper)"
            } else {
                "MISMATCH with the paper's claim — inspect the report"
            }
        );
        println!();
        assert!(report.is_perfect(), "correctness suite must be perfect");
    }

    let rows = hardbound_report::granularity(PointerEncoding::Intern4);
    println!("{}", hardbound_report::render::granularity_table(&rows));
    let hb = &rows[0];
    assert_eq!(hb.scheme, "hardbound");
    assert_eq!(
        (hb.subobject_detected, hb.other_detected),
        (hb.subobject_total, hb.other_total),
        "word granularity covers the whole corpus"
    );
    let ot = &rows[1];
    assert!(
        ot.subobject_rate() < 1.0,
        "§6: the object table must exhibit the sub-object blind spot"
    );

    println!("(regenerated in {:.1?})", t0.elapsed());
}
