//! Regenerates the §5.2 functional-correctness experiment: the 288-pair
//! spatial-violation corpus under full HardBound protection, for each
//! pointer encoding (paper: "HardBound detects all the violations and
//! generates no false positives").

use hardbound_core::PointerEncoding;

fn main() {
    let t0 = std::time::Instant::now();
    for encoding in PointerEncoding::ALL {
        let report = hardbound_report::correctness(encoding);
        println!("§5.2 corpus under full HardBound, {encoding} encoding:");
        println!("{report}");
        println!(
            "verdict: {}",
            if report.is_perfect() {
                "all violations detected, no false positives (matches paper)"
            } else {
                "MISMATCH with the paper's claim — inspect the report"
            }
        );
        println!();
        assert!(report.is_perfect(), "correctness suite must be perfect");
    }
    println!("(regenerated in {:.1?})", t0.elapsed());
}
