//! Regenerates paper Figure 6: extra distinct 4 KB pages touched for tag
//! and base/bound metadata, per benchmark and encoding.

fn main() {
    let scale = hardbound_bench::scale_from_env();
    let t0 = std::time::Instant::now();
    let rows = hardbound_report::fig6(scale);
    println!("{}", hardbound_report::render::fig6_table(&rows));
    println!("(regenerated in {:.1?} at {scale:?} scale)", t0.elapsed());
}
