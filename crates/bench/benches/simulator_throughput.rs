//! Criterion wall-clock benchmarks of the simulator infrastructure itself
//! (not a paper artefact): how fast the machine executes instrumented vs
//! baseline binaries, and how expensive compilation is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hardbound_compiler::Mode;
use hardbound_core::PointerEncoding;
use hardbound_runtime::{build_machine, compile};
use hardbound_workloads::{by_name, Scale};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_treeadd_smoke");
    group.sample_size(20);
    let w = by_name("treeadd", Scale::Smoke).expect("treeadd exists");
    for mode in [Mode::Baseline, Mode::HardBound, Mode::SoftBound] {
        let program = compile(&w.source, mode).expect("compiles");
        group.bench_with_input(BenchmarkId::from_parameter(mode), &program, |b, p| {
            b.iter(|| {
                let out = build_machine(p.clone(), mode, PointerEncoding::Intern4).run();
                assert!(out.trap.is_none());
                out.stats.cycles()
            });
        });
    }
    group.finish();
}

fn bench_compilation(c: &mut Criterion) {
    let w = by_name("bh", Scale::Smoke).expect("bh exists");
    c.bench_function("compile_bh_hardbound", |b| {
        b.iter(|| compile(&w.source, Mode::HardBound).expect("compiles"));
    });
}

criterion_group!(benches, bench_simulation, bench_compilation);
criterion_main!(benches);
