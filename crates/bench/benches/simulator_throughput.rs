//! Criterion wall-clock benchmarks of the simulator infrastructure itself
//! (not a paper artefact): how fast the two execution paths — the
//! one-µop-per-step interpreter and the pre-decoded basic-block engine —
//! run instrumented vs baseline binaries, and how expensive compilation is.
//!
//! Ends with the engine-vs-interpreter throughput report at `HB_SCALE`
//! (default `Full`):
//!
//! 1. **dispatch-bound** — a call/ALU-heavy microloop where instruction
//!    dispatch dominates; the block engine's home turf,
//! 2. **per-workload** — Olden ports, where the shared memory-hierarchy
//!    simulation (identical on both paths by construction) bounds the gap,
//! 3. **fleet** — the whole Olden suite, serial interpreter vs the
//!    `exec::batch` parallel engine driver: the configuration every figure
//!    pipeline actually runs.
//!
//! Set `HB_ENGINE_GATE=<ratio>` to turn the report into a hard gate: the
//! dispatch-bound speedup must reach `<ratio>` (CI pins `1.8` — the ≥ 2×
//! acceptance threshold minus 10% runner-noise headroom) and the fleet
//! must never fall below 0.9× of the serial interpreter, so an engine-path
//! throughput regression of more than 10% fails the build.
//!
//! Set `HB_META_GATE=<ratio>` to gate the **metadata fast path**: a
//! tag-sparse Olden-style workload must run at least `<ratio>`× faster on
//! the engine with the fast path on (`MetaPath::Summary`) than with it
//! off (`MetaPath::Charge`, every memory op charging tag traffic), so
//! metadata-walk skipping can never silently regress.
//!
//! Set `HB_OPT_GATE=<ratio>` to gate the **static bounds-check
//! optimizer**: a check-dense loop fleet must run at least `<ratio>`×
//! faster on the engine with `HB_OPT` on than off (CI pins `1.15`), and
//! the telemetry counters must show checks actually elided, hoisted, and
//! coalesced — the win has to come from proved-redundant checks, not
//! noise.
//!
//! Set `HB_TRACE_GATE=<ratio>` to gate the **tracing overhead**: an
//! identical engine fleet with the `HB_TRACE` JSONL sink installed must
//! stay within `<ratio>`× of the untraced baseline (CI pins `1.1` —
//! tracing-enabled throughput within 10%), so span emission can never
//! creep into the hot path.
//!
//! Set `HB_PROF_GATE=<ratio>` to gate the **profiling overhead**: an
//! identical engine fleet with the per-superblock hot-spot profiler armed
//! must stay within `<ratio>`× of the unprofiled baseline (CI pins `1.1`
//! — profiled throughput within 10%), so retire-counter bookkeeping can
//! never creep into the dispatch loop.
//!
//! Set `HB_HIER_GATE=<ratio>` to gate the **hierarchy fast path**: an
//! irregular-gather fleet whose hot blocks stay resident must run at
//! least `<ratio>`× faster under `HierPath::Event` (residency-proof
//! filter + branchless way-scan) than under the `HierPath::Walk`
//! reference (CI pins `1.2`), with the telemetry counters proving the
//! residency filter actually answered lookups. Independent of any gate,
//! `sampled_error_report` asserts the `HierPath::Sampled` 1-in-8
//! set-sampled estimate stays within 5% of the exact fleet stall total.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};

use hardbound_bench::scale_from_env;
use hardbound_compiler::Mode;
use hardbound_core::{HierPath, Machine, MachineConfig, MetaPath, PointerEncoding};
use hardbound_exec::{batch, CorpusService, Engine, Job, OptConfig};
use hardbound_isa::{BinOp, CmpOp, FuncId, FunctionBuilder, Program, Reg};
use hardbound_runtime::{build_machine, compile, env_parse, machine_config};
use hardbound_workloads::{all, by_name, Scale};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_treeadd_smoke");
    group.sample_size(20);
    let w = by_name("treeadd", Scale::Smoke).expect("treeadd exists");
    for mode in [Mode::Baseline, Mode::HardBound, Mode::SoftBound] {
        let program = compile(&w.source, mode).expect("compiles");
        group.bench_with_input(BenchmarkId::new("interp", mode), &program, |b, p| {
            b.iter(|| {
                let out = build_machine(p.clone(), mode, PointerEncoding::Intern4).run();
                assert!(out.trap.is_none());
                out.stats.cycles()
            });
        });
        group.bench_with_input(BenchmarkId::new("engine", mode), &program, |b, p| {
            b.iter(|| {
                let machine = build_machine(p.clone(), mode, PointerEncoding::Intern4);
                let out = Engine::new(machine).run();
                assert!(out.trap.is_none());
                out.stats.cycles()
            });
        });
    }
    group.finish();
}

fn bench_compilation(c: &mut Criterion) {
    let w = by_name("bh", Scale::Smoke).expect("bh exists");
    c.bench_function("compile_bh_hardbound", |b| {
        // The uncached path: with the process-wide compile memo in front
        // of `compile`, the memoized call would measure a HashMap hit.
        b.iter(|| {
            hardbound_runtime::compile_uncached(&w.source, Mode::HardBound).expect("compiles")
        });
    });
}

/// Best-of-N wall times of two closures, sampled interleaved so slow
/// machine phases (frequency scaling, noisy neighbours) hit both sides
/// equally instead of skewing the ratio.
fn compare<R>(
    n: usize,
    mut a: impl FnMut() -> R,
    mut b: impl FnMut() -> R,
) -> (Duration, Duration) {
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    for _ in 0..n {
        let t0 = Instant::now();
        black_box(a());
        best_a = best_a.min(t0.elapsed());
        let t0 = Instant::now();
        black_box(b());
        best_b = best_b.min(t0.elapsed());
    }
    (best_a, best_b)
}

/// A dispatch-bound microloop: leaf calls + straight ALU runs, the shape
/// where per-instruction decode/dispatch dominates simulated time.
fn dispatch_loop(iters: i32) -> Program {
    let mut leaf = FunctionBuilder::new("leaf", 0);
    leaf.addi(Reg::A1, Reg::A1, 3);
    leaf.ret();
    let mut main = FunctionBuilder::new("main", 0);
    main.li(Reg::A0, 0);
    main.li(Reg::A1, 1);
    let head = main.bind_label();
    main.call(FuncId(1));
    main.addi(Reg::A2, Reg::A1, 5);
    main.bin(BinOp::Xor, Reg::A3, Reg::A2, Reg::A1);
    main.bin(BinOp::And, Reg::A4, Reg::A3, Reg::A2);
    main.bin(BinOp::Or, Reg::A5, Reg::A4, Reg::A2);
    main.mov(Reg::A6, Reg::A5);
    main.addi(Reg::A0, Reg::A0, 1);
    let done = main.new_label();
    main.branch(CmpOp::Ge, Reg::A0, iters, done);
    main.jump(head);
    main.bind(done);
    main.li(Reg::A0, 0);
    main.halt();
    Program::with_entry(vec![main.finish(), leaf.finish()])
}

/// A tag-sparse Olden-style workload (em3d-shaped): an irregular gather
/// through an index array, with the working pointers held in bounded
/// registers — so, like em3d's node sweep, every memory access lands on
/// data pages that never hold a pointer. The random access pattern defeats
/// the same-block memos: with the fast path off every access pays the
/// full tag-metadata charge; with it on, the page summaries prove there is
/// nothing to fetch.
fn tag_sparse_gather(n: u32, rounds: i32) -> Program {
    use hardbound_isa::{layout, Width};
    assert!(n.is_power_of_two());
    let mut f = FunctionBuilder::new("gather", 0);
    // A0 = data (bounded), A1 = idx (bounded), A2 = i, A3 = s, A4 = n.
    f.li(Reg::A0, layout::HEAP_BASE);
    f.setbound_imm(Reg::A0, Reg::A0, (n * 4) as i32);
    f.li(Reg::A1, layout::HEAP_BASE + n * 4);
    f.setbound_imm(Reg::A1, Reg::A1, (n * 4) as i32);
    f.li(Reg::A4, n);
    // Init: data[i] = i; idx[i] = lcg(i) & (n - 1).
    f.li(Reg::A2, 0);
    f.li(Reg::temp(3), 7);
    let init = f.bind_label();
    f.bin(BinOp::Shl, Reg::temp(0), Reg::A2, 2);
    f.add(Reg::temp(1), Reg::A0, Reg::temp(0));
    f.store(Width::Word, Reg::A2, Reg::temp(1), 0);
    f.bin(BinOp::Mul, Reg::temp(3), Reg::temp(3), 1_103_515_245);
    f.addi(Reg::temp(3), Reg::temp(3), 12345);
    f.bin(BinOp::And, Reg::temp(2), Reg::temp(3), (n - 1) as i32);
    f.add(Reg::temp(1), Reg::A1, Reg::temp(0));
    f.store(Width::Word, Reg::temp(2), Reg::temp(1), 0);
    f.addi(Reg::A2, Reg::A2, 1);
    f.branch(CmpOp::Lt, Reg::A2, Reg::A4, init);
    // Gather: s += data[idx[i]], `rounds` passes.
    f.li(Reg::A3, 0);
    f.li(Reg::temp(4), rounds as u32);
    let outer = f.bind_label();
    f.li(Reg::A2, 0);
    let inner = f.bind_label();
    f.bin(BinOp::Shl, Reg::temp(0), Reg::A2, 2);
    f.add(Reg::temp(1), Reg::A1, Reg::temp(0));
    f.load(Width::Word, Reg::temp(2), Reg::temp(1), 0); // idx[i]: sequential
    f.bin(BinOp::Shl, Reg::temp(2), Reg::temp(2), 2);
    f.add(Reg::temp(1), Reg::A0, Reg::temp(2));
    f.load(Width::Word, Reg::temp(2), Reg::temp(1), 0); // data[idx[i]]: random
    f.add(Reg::A3, Reg::A3, Reg::temp(2));
    f.addi(Reg::A2, Reg::A2, 1);
    f.branch(CmpOp::Lt, Reg::A2, Reg::A4, inner);
    f.addi(Reg::temp(4), Reg::temp(4), -1);
    f.branch(CmpOp::Gt, Reg::temp(4), 0, outer);
    f.li(Reg::A0, 0);
    f.halt();
    Program::with_entry(vec![f.finish()])
}

/// The metadata-fast-path throughput comparison (and optional CI gate):
/// engine runs of the tag-sparse gather, `MetaPath::Summary` vs
/// `MetaPath::Charge`.
fn meta_fast_path_report() {
    let gate = env_parse::<f64>("HB_META_GATE").unwrap_or_else(|e| panic!("{e}"));
    let program = tag_sparse_gather(32768, 6);
    let run = |meta: MetaPath| {
        let cfg = machine_config(Mode::HardBound, PointerEncoding::Intern4).with_meta_path(meta);
        let out = Engine::new(Machine::new(program.clone(), cfg)).run();
        assert!(out.is_success(), "{:?}", out.trap);
        out.stats.cycles()
    };
    let (charge, fast) = compare(5, || run(MetaPath::Charge), || run(MetaPath::Summary));
    let speedup = charge.as_secs_f64() / fast.as_secs_f64();
    println!("\nmetadata fast path (tag-sparse gather, engine):");
    println!(
        "  {:<24} charge {charge:>10.2?}  summary {fast:>10.2?}  speedup {speedup:>5.2}x",
        "tag-sparse gather"
    );
    if let Some(required) = gate {
        assert!(
            speedup >= required,
            "metadata fast-path gate: tag-sparse speedup {speedup:.2}x \
             below the required {required:.2}x"
        );
        println!("  gate: {speedup:.2}x >= {required:.2}x — ok");
    }
}

/// A check-dense self-loop: the body is almost entirely word loads off a
/// loop-invariant bounded pointer whose accesses straddle a page boundary
/// — the one access shape whose region probe the machine cannot memoize,
/// so the per-access check work (pointer test, bounds compare, slow
/// region probe) is real per-µop cost, while the loads themselves keep
/// hitting the same cache blocks. Hoisting replaces every in-loop check
/// with one widened loop-top guard; the rotating window feeds redundancy
/// elimination, and a run of adjacent stores in `main`'s straight-line
/// prologue feeds the coalescing pass. The loop lives in its own
/// function so the whole body is a single self-loop superblock.
fn check_dense_loop(loads: i32, iters: i32) -> Program {
    use hardbound_isa::{layout, FuncId, Width};
    let mut main = FunctionBuilder::new("main", 0);
    // Bounded pointer two bytes shy of a page boundary: every word load
    // off it straddles the page.
    main.li(Reg::A0, layout::SW_SHADOW_BASE + 4092);
    main.setbound_imm(Reg::A0, Reg::A0, 16);
    main.addi(Reg::A0, Reg::A0, 2);
    // Adjacent-field stores: the coalescing pass's shape.
    main.li(Reg::A1, layout::HEAP_BASE + 512);
    main.setbound_imm(Reg::A1, Reg::A1, 16);
    main.store(Width::Word, Reg::A2, Reg::A1, 0);
    main.store(Width::Word, Reg::A2, Reg::A1, 4);
    main.store(Width::Word, Reg::A2, Reg::A1, 8);
    main.li(Reg::A2, 0);
    main.call(FuncId(1));
    main.li(Reg::A0, 0);
    main.halt();
    let mut f = FunctionBuilder::new("checks", 0);
    let head = f.bind_label();
    for k in 0..loads {
        f.load(
            Width::Word,
            Reg::temp(0),
            Reg::A0,
            [-1, 0, 1][k as usize % 3],
        );
    }
    f.addi(Reg::A2, Reg::A2, 1);
    f.branch(CmpOp::Lt, Reg::A2, iters, head);
    f.ret();
    Program::with_entry(vec![main.finish(), f.finish()])
}

/// The hierarchy fast-path comparison (and optional CI gate): engine runs
/// of an irregular-gather fleet, `HierPath::Event` vs `HierPath::Walk`.
/// The gather's hot region (data + index arrays) is sized to the L1 — and
/// to the residency filter's reach — so almost every access resolves by
/// residency proof on the event path while the walk path re-scans its
/// ways every time. The two paths are exact twins (the differential
/// suites pin byte-identical outcomes), so the entire measured gap is
/// lookup machinery. Gated via `HB_HIER_GATE=<ratio>` (CI pins `1.2`);
/// independent of the gate, the run asserts identical outcomes and that
/// the telemetry delta shows the filter both proving and falling back —
/// the win has to come from answered residency probes, not noise.
fn hier_fast_report() {
    let gate = env_parse::<f64>("HB_HIER_GATE").unwrap_or_else(|e| panic!("{e}"));
    let scale = scale_from_env();
    let rounds = match scale {
        Scale::Smoke => 8,
        Scale::Full => 48,
    };
    // 4096 words of data + 4096 of indices = 32 KB hot: exactly the L1
    // capacity and the residency filter's 1024-block reach.
    let program = tag_sparse_gather(4096, rounds);
    let run = |path: HierPath| {
        let mut cfg =
            machine_config(Mode::HardBound, PointerEncoding::Intern4).with_hier_path(path);
        // Associativity-stressed geometry (same capacities as the paper's
        // §5.1 hierarchy, wider sets): the way-walk pays per-way compare
        // work on every hit while the residency proof stays O(1), so this
        // is the shape the event path exists for — and the shape where a
        // fast-path regression shows up first.
        cfg.hierarchy.l1_ways = 16;
        cfg.hierarchy.l2_ways = 16;
        cfg.hierarchy.tag_cache_ways = 16;
        cfg.hierarchy.tlb_ways = 16;
        let out = Engine::new(Machine::new(program.clone(), cfg)).run();
        assert!(out.is_success(), "{:?}", out.trap);
        out
    };
    let before = hardbound_telemetry::global().snapshot();
    let (walk, event) = compare(5, || run(HierPath::Walk), || run(HierPath::Event));
    let after = hardbound_telemetry::global().snapshot();
    assert_eq!(
        run(HierPath::Event),
        run(HierPath::Walk),
        "HierPath::Event and HierPath::Walk must be observationally identical"
    );
    let delta = |name: &str| after.counter(name) - before.counter(name);
    let (proofs, scans) = (
        delta("hb_hier_fastpath_hits"),
        delta("hb_hier_fastpath_misses"),
    );
    assert!(
        proofs > 0 && scans > 0,
        "the gather must drive the residency filter both ways: \
         {proofs} proofs, {scans} scans"
    );
    let speedup = walk.as_secs_f64() / event.as_secs_f64();
    println!("\nhierarchy fast path (irregular gather, engine):");
    println!(
        "  {:<24} walk {walk:>10.2?}  event {event:>10.2?}  speedup {speedup:>5.2}x",
        "irregular gather"
    );
    println!("  residency filter: {proofs} proofs, {scans} scans");
    if let Some(required) = gate {
        assert!(
            speedup >= required,
            "hierarchy fast-path gate: irregular-gather speedup {speedup:.2}x \
             below the required {required:.2}x"
        );
        println!("  gate: {speedup:.2}x >= {required:.2}x — ok");
    }
}

/// The sampled-hierarchy error bound: the Olden fleet runs exact
/// (`HierPath::Event`) and 1-in-8 set-sampled (`HierPath::Sampled`), and
/// the sampled estimate of the fleet's total stall cycles must land
/// within 5% of the exact total. Always asserted — the approximate mode's
/// documented contract, not an opt-in gate. Access counts must stay
/// exact: sampling estimates *stalls*, never event counts.
fn sampled_error_report() {
    let scale = scale_from_env();
    let programs: Vec<Program> = all(scale)
        .iter()
        .map(|w| compile(&w.source, Mode::HardBound).expect("compiles"))
        .collect();
    let fleet = |path: HierPath| -> Vec<_> {
        programs
            .iter()
            .map(|p| {
                let cfg =
                    machine_config(Mode::HardBound, PointerEncoding::Intern4).with_hier_path(path);
                let out = Engine::new(Machine::new(p.clone(), cfg)).run();
                assert!(out.is_success(), "{:?}", out.trap);
                out
            })
            .collect()
    };
    let exact = fleet(HierPath::Event);
    let sampled = fleet(HierPath::sampled(8));
    let stalls = |outs: &[hardbound_core::RunOutcome]| -> u64 {
        outs.iter()
            .map(|o| o.stats.hierarchy.total_stall_cycles())
            .sum()
    };
    for (e, s) in exact.iter().zip(&sampled) {
        assert_eq!(
            (
                e.stats.hierarchy.data_accesses,
                e.stats.hierarchy.tag_accesses,
                e.stats.hierarchy.shadow_accesses,
            ),
            (
                s.stats.hierarchy.data_accesses,
                s.stats.hierarchy.tag_accesses,
                s.stats.hierarchy.shadow_accesses,
            ),
            "sampling must keep access counts exact"
        );
    }
    let (exact_stalls, sampled_stalls) = (stalls(&exact), stalls(&sampled));
    let error = (sampled_stalls as f64 - exact_stalls as f64).abs() / exact_stalls as f64;
    println!("\nsampled hierarchy error ({scale:?} fleet, 1-in-8 sets):");
    println!(
        "  {:<24} exact {exact_stalls:>12} stalls  sampled {sampled_stalls:>12}  error {:>5.2}%",
        "fleet stall total",
        100.0 * error
    );
    assert!(
        error < 0.05,
        "sampled hierarchy error bound: 1-in-8 estimate off by {:.2}% (>5%) \
         ({sampled_stalls} vs {exact_stalls} exact stall cycles)",
        100.0 * error
    );
    println!("  bound: {:.2}% < 5.00% — ok", 100.0 * error);
}

/// The static bounds-check optimizer comparison (and optional CI gate):
/// the same engine fleet with the optimizer off vs on, over check-dense
/// loops built so redundancy elimination, hoisting, and coalescing all
/// fire. Gated via `HB_OPT_GATE=<ratio>` (CI pins `1.15`); independent of
/// the gate, the telemetry counters must show checks actually elided,
/// hoisted, and coalesced — the speedup has to come from proved-redundant
/// checks, not measurement noise.
fn opt_speedup_report() {
    let gate = env_parse::<f64>("HB_OPT_GATE").unwrap_or_else(|e| panic!("{e}"));
    let scale = scale_from_env();
    let iters = match scale {
        Scale::Smoke => 20_000,
        Scale::Full => 120_000,
    };
    let programs: Vec<Program> = [20, 40, 60]
        .into_iter()
        .map(|loads| check_dense_loop(loads, iters))
        .collect();
    let run = |opt: OptConfig| {
        for p in &programs {
            let cfg = machine_config(Mode::HardBound, PointerEncoding::Intern4);
            let out = Engine::with_opt(Machine::new(p.clone(), cfg), opt).run();
            assert!(out.is_success(), "{:?}", out.trap);
        }
    };
    let before = hardbound_telemetry::global().snapshot();
    let (plain, optimized) = compare(5, || run(OptConfig::OFF), || run(OptConfig::ON));
    let after = hardbound_telemetry::global().snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    let (emitted, elided, hoisted, coalesced) = (
        delta("hb_checks_emitted"),
        delta("hb_checks_elided"),
        delta("hb_checks_hoisted"),
        delta("hb_checks_coalesced"),
    );
    let speedup = plain.as_secs_f64() / optimized.as_secs_f64();
    println!("\nstatic check optimizer ({scale:?} iterations, engine):");
    println!(
        "  {:<24} off {plain:>10.2?}  on {optimized:>10.2?}  speedup {speedup:>5.2}x",
        "check-dense loop fleet"
    );
    println!(
        "  checks: {emitted} emitted, {elided} elided, {hoisted} hoisted, {coalesced} coalesced"
    );
    assert!(
        elided > 0 && hoisted > 0 && coalesced > 0,
        "the check-dense fleet must drive every pass: \
         {emitted} emitted, {elided} elided, {hoisted} hoisted, {coalesced} coalesced"
    );
    if let Some(required) = gate {
        assert!(
            speedup >= required,
            "opt gate: check-dense fleet speedup {speedup:.2}x \
             below the required {required:.2}x"
        );
        println!("  gate: {speedup:.2}x >= {required:.2}x — ok");
    }
}

/// The engine-vs-interpreter throughput comparison (and optional CI gate).
fn engine_speedup_report() {
    let scale = scale_from_env();
    let gate = env_parse::<f64>("HB_ENGINE_GATE").unwrap_or_else(|e| panic!("{e}"));
    let samples = match scale {
        Scale::Smoke => 10,
        Scale::Full => 3,
    };
    println!("\nengine vs interpreter throughput ({scale:?} inputs):");

    // 1. Dispatch-bound microloop — the gated engine-vs-interpreter
    //    number (single-machine, so it holds on single-core runners too).
    let p = dispatch_loop(1_000_000);
    let (interp, engine) = compare(
        5,
        || {
            let out = Machine::new(p.clone(), MachineConfig::default()).run();
            assert!(out.is_success());
        },
        || {
            let out = Engine::new(Machine::new(p.clone(), MachineConfig::default())).run();
            assert!(out.is_success());
        },
    );
    let dispatch_speedup = interp.as_secs_f64() / engine.as_secs_f64();
    println!(
        "  {:<24} interp {interp:>10.2?}  engine {engine:>10.2?}  speedup {dispatch_speedup:>5.2}x",
        "dispatch-bound loop"
    );

    // 2. Individual Olden ports (shared memory-hierarchy simulation
    //    bounds the single-machine gap).
    for (bench, mode) in [("treeadd", Mode::HardBound), ("em3d", Mode::HardBound)] {
        let w = by_name(bench, scale).expect("workload exists");
        let program = compile(&w.source, mode).expect("compiles");
        let (interp, engine) = compare(
            samples,
            || {
                let out = build_machine(program.clone(), mode, PointerEncoding::Intern4).run();
                assert!(out.trap.is_none());
            },
            || {
                let machine = build_machine(program.clone(), mode, PointerEncoding::Intern4);
                let out = Engine::new(machine).run();
                assert!(out.trap.is_none());
            },
        );
        println!(
            "  {:<24} interp {interp:>10.2?}  engine {engine:>10.2?}  speedup {:>5.2}x",
            format!("{bench}/{mode}"),
            interp.as_secs_f64() / engine.as_secs_f64()
        );
    }

    // 3. The fleet: all nine Olden ports under full HardBound — serial
    //    interpreter vs the parallel engine batch driver (what the figure
    //    pipelines run). This is the gated number.
    let programs: Vec<Program> = all(scale)
        .iter()
        .map(|w| compile(&w.source, Mode::HardBound).expect("compiles"))
        .collect();
    let (serial_interp, parallel_engine) = compare(
        3,
        || {
            for p in &programs {
                let out = build_machine(p.clone(), Mode::HardBound, PointerEncoding::Intern4).run();
                assert!(out.trap.is_none());
            }
        },
        || {
            let outs = batch::map(&programs, |_, p| {
                Engine::new(build_machine(
                    p.clone(),
                    Mode::HardBound,
                    PointerEncoding::Intern4,
                ))
                .run()
            });
            assert!(outs.iter().all(|o| o.trap.is_none()));
        },
    );
    let fleet_speedup = serial_interp.as_secs_f64() / parallel_engine.as_secs_f64();
    println!(
        "  {:<24} interp {serial_interp:>10.2?}  engine {parallel_engine:>10.2?}  speedup {fleet_speedup:>5.2}x  ({} workers)",
        "fleet (9 workloads)",
        batch::default_workers()
    );

    if let Some(required) = gate {
        // The dispatch-bound ratio is core-count independent; the fleet
        // ratio scales with workers, so it is gated only against outright
        // regression (engine path more than 10% slower than the serial
        // interpreter would be a bug even on one core).
        assert!(
            dispatch_speedup >= required,
            "engine throughput gate: dispatch-bound speedup {dispatch_speedup:.2}x \
             below the required {required:.2}x"
        );
        assert!(
            fleet_speedup >= 0.9,
            "engine throughput gate: parallel-engine fleet is {fleet_speedup:.2}x \
             of the serial interpreter — a >10% regression of the engine path"
        );
        println!(
            "  gate: dispatch {dispatch_speedup:.2}x >= {required:.2}x, \
             fleet {fleet_speedup:.2}x >= 0.90x — ok"
        );
    }
}

/// The corpus-service warm-vs-cold comparison (and optional CI gate): the
/// full figure-style grid — every workload × (baseline + HardBound per
/// encoding) — runs twice on one fresh [`CorpusService`]. The cold pass
/// simulates every cell; the warm pass must replay each one from the
/// program-hash result store, byte-identically and (gated via
/// `HB_SERVICE_GATE=<ratio>`, CI pins `2`) at least `<ratio>`× faster.
fn service_warm_cold_report() {
    let gate = env_parse::<f64>("HB_SERVICE_GATE").unwrap_or_else(|e| panic!("{e}"));
    let scale = scale_from_env();
    let workloads = all(scale);
    let mut specs = vec![(Mode::Baseline, PointerEncoding::Intern4)];
    for encoding in PointerEncoding::ALL {
        specs.push((Mode::HardBound, encoding));
    }
    let jobs: Vec<Job<Mode>> = workloads
        .iter()
        .flat_map(|w| {
            specs.iter().map(|&(mode, encoding)| Job {
                program: compile(&w.source, mode).expect("compiles"),
                config: machine_config(mode, encoding),
                salt: mode as u64,
                tag: mode,
            })
        })
        .collect();
    let build = |program, config, &mode: &Mode| {
        hardbound_runtime::build_machine_with_config(program, mode, config)
    };

    let mut svc = CorpusService::new(batch::default_workers());
    let t0 = Instant::now();
    let cold_outs = svc.run_batch(&jobs, build);
    let cold = t0.elapsed();
    let after_cold = svc.stats();
    let t1 = Instant::now();
    let warm_outs = svc.run_batch(&jobs, build);
    let warm = t1.elapsed().max(Duration::from_nanos(1));
    let after_warm = svc.stats();

    assert_eq!(cold_outs, warm_outs, "warm replay must be byte-identical");
    let replayed = after_warm.store.hits - after_cold.store.hits;
    assert!(
        replayed >= jobs.len() as u64,
        "warm re-run must replay every cell from the result store \
         ({replayed} hits for {} cells)",
        jobs.len()
    );
    assert_eq!(
        after_warm.cache.decoded, after_cold.cache.decoded,
        "warm re-run must add no decode work"
    );
    let speedup = cold.as_secs_f64() / warm.as_secs_f64();
    println!(
        "\ncorpus service warm vs cold ({scale:?} inputs, {} cells):",
        jobs.len()
    );
    println!(
        "  {:<24} cold {cold:>10.2?}  warm {warm:>10.2?}  speedup {speedup:>5.2}x",
        "figure grid"
    );
    println!(
        "  store: {} executed cold, {replayed} replayed warm; shards decoded {} blocks",
        after_cold.store.misses, after_cold.cache.decoded
    );
    if let Some(required) = gate {
        assert!(
            speedup >= required,
            "service gate: warm corpus re-run speedup {speedup:.2}x \
             below the required {required:.2}x"
        );
        println!("  gate: {speedup:.2}x >= {required:.2}x — ok");
    }
}

/// The persistent-store warm-start comparison (and optional CI gate): a
/// figure-style grid runs cold on a [`PersistentService`] backed by a
/// fresh store file; the service is then **dropped and reopened from
/// disk** — every byte of warm state crosses the serialization boundary,
/// the same boundary a process restart crosses — and the grid re-runs.
/// The warm pass must replay every distinct cell from the persisted
/// store (zero re-simulated cells), byte-identically, and (gated via
/// `HB_PERSIST_GATE=<ratio>`, CI pins `2`) at least `<ratio>`× faster
/// than the cold pass. Compile memoization makes the warm pass
/// compile-free as well, which is part of what the gate measures.
fn persist_warm_report() {
    use hardbound_serve::PersistentService;
    let gate = env_parse::<f64>("HB_PERSIST_GATE").unwrap_or_else(|e| panic!("{e}"));
    let scale = scale_from_env();
    let workloads = all(scale);
    let mut specs = vec![(Mode::Baseline, PointerEncoding::Intern4)];
    for encoding in PointerEncoding::ALL {
        specs.push((Mode::HardBound, encoding));
    }
    let build = |program, config, &mode: &Mode| {
        hardbound_runtime::build_machine_with_config(program, mode, config)
    };
    let make_jobs = || -> Vec<Job<Mode>> {
        workloads
            .iter()
            .flat_map(|w| {
                specs.iter().map(|&(mode, encoding)| Job {
                    program: compile(&w.source, mode).expect("compiles"),
                    config: machine_config(mode, encoding),
                    salt: mode as u64,
                    tag: mode,
                })
            })
            .collect()
    };

    let path = std::env::temp_dir().join(format!("hb-persist-bench-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let workers = batch::default_workers();

    let t0 = Instant::now();
    let mut svc = PersistentService::open(workers, &path).expect("store opens");
    let cold_outs = svc.run_batch(&make_jobs(), build);
    let after_cold = svc.stats();
    drop(svc); // flush; all warm state now lives in the file
    let cold = t0.elapsed();

    let t1 = Instant::now();
    let mut svc = PersistentService::open(workers, &path).expect("store reopens");
    let warm_outs = svc.run_batch(&make_jobs(), build);
    let warm = t1.elapsed().max(Duration::from_nanos(1));
    let after_warm = svc.stats();

    assert_eq!(
        cold_outs, warm_outs,
        "disk warm replay must be byte-identical"
    );
    assert_eq!(
        after_warm.service.store.misses, 0,
        "a warm start must re-simulate zero cells: {after_warm:?}"
    );
    assert_eq!(
        after_warm.service.cache.decoded, 0,
        "a pure replay decodes nothing"
    );
    let loaded = after_warm.log.expect("persistent").loaded;
    assert_eq!(
        loaded, after_cold.service.store.misses,
        "every executed cell must round-trip through the log"
    );
    let speedup = cold.as_secs_f64() / warm.as_secs_f64();
    println!(
        "\npersistent store warm start ({scale:?} inputs, {} cells, {} persisted):",
        cold_outs.len(),
        loaded
    );
    println!(
        "  {:<24} cold {cold:>10.2?}  warm {warm:>10.2?}  speedup {speedup:>5.2}x",
        "figure grid (restart)"
    );
    if let Some(required) = gate {
        assert!(
            speedup >= required,
            "persist gate: cross-process warm start speedup {speedup:.2}x \
             below the required {required:.2}x"
        );
        println!("  gate: {speedup:.2}x >= {required:.2}x — ok");
    }
    let _ = std::fs::remove_file(&path);
}

/// The tracing overhead comparison (and optional CI gate): identical
/// engine fleet runs with the `HB_TRACE` JSONL sink installed vs
/// disabled. Each pass builds fresh engines, so every block re-decodes
/// and stamps a decode span — the traced side pays real span emission,
/// not just a disabled-flag check. Gated via `HB_TRACE_GATE=<ratio>`,
/// CI pins `1.1` (traced throughput within 10% of baseline).
fn trace_overhead_report() {
    use hardbound_telemetry::trace;
    let gate = env_parse::<f64>("HB_TRACE_GATE").unwrap_or_else(|e| panic!("{e}"));
    let scale = scale_from_env();
    let samples = match scale {
        Scale::Smoke => 10,
        Scale::Full => 3,
    };
    let programs: Vec<Program> = all(scale)
        .iter()
        .map(|w| compile(&w.source, Mode::HardBound).expect("compiles"))
        .collect();
    let fleet = || {
        for p in &programs {
            let machine = build_machine(p.clone(), Mode::HardBound, PointerEncoding::Intern4);
            let out = Engine::new(machine).run();
            assert!(out.trap.is_none());
        }
    };
    let path = std::env::temp_dir().join(format!("hb-trace-bench-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // `compare` interleaves the two closures, so the sink flips off/on
    // each iteration — exactly the state transition `HB_TRACE` users see.
    let (off, on) = compare(
        samples,
        || {
            trace::disable();
            fleet();
        },
        || {
            trace::install(&path).expect("trace sink installs");
            fleet();
        },
    );
    trace::disable();
    let spans = std::fs::read_to_string(&path).map_or(0, |t| t.lines().count());
    let _ = std::fs::remove_file(&path);
    let ratio = on.as_secs_f64() / off.as_secs_f64();
    println!("\ntracing overhead ({scale:?} fleet, engine; {spans} spans emitted):");
    println!(
        "  {:<24} off {off:>10.2?}  on {on:>10.2?}  ratio {ratio:>5.2}x",
        "HB_TRACE sink"
    );
    assert!(spans > 0, "the traced passes must emit spans");
    if let Some(allowed) = gate {
        assert!(
            ratio <= allowed,
            "trace gate: traced fleet runs at {ratio:.2}x the untraced baseline, \
             above the allowed {allowed:.2}x"
        );
        println!("  gate: {ratio:.2}x <= {allowed:.2}x — ok");
    }
}

/// The profiling overhead comparison (and optional CI gate): identical
/// engine fleet runs with the per-superblock hot-spot profiler armed vs
/// off. Each pass builds fresh engines, so the profiled side pays the
/// full per-block bookkeeping (retire counters, cycle attribution, the
/// end-of-run flush into the process accumulator), not just a disabled
/// `Option` check. Gated via `HB_PROF_GATE=<ratio>`, CI pins `1.1`
/// (profiled throughput within 10% of baseline). Independent of the
/// gate, the profiled passes must actually populate the accumulator and
/// the two sides must produce identical outcomes.
fn prof_overhead_report() {
    use hardbound_telemetry::profile;
    let gate = env_parse::<f64>("HB_PROF_GATE").unwrap_or_else(|e| panic!("{e}"));
    let scale = scale_from_env();
    let samples = match scale {
        Scale::Smoke => 10,
        Scale::Full => 3,
    };
    let programs: Vec<Program> = all(scale)
        .iter()
        .map(|w| compile(&w.source, Mode::HardBound).expect("compiles"))
        .collect();
    let fleet = |profiled: bool| {
        for p in &programs {
            let machine = build_machine(p.clone(), Mode::HardBound, PointerEncoding::Intern4);
            let mut engine = Engine::new(machine);
            engine.set_profiling(profiled);
            let out = engine.run();
            assert!(out.trap.is_none());
        }
    };
    let _ = profile::global().take();
    let (off, on) = compare(samples, || fleet(false), || fleet(true));
    let recorded = profile::global().take();
    assert!(
        recorded.total_execs() > 0,
        "the profiled passes must record block retires"
    );
    let ratio = on.as_secs_f64() / off.as_secs_f64();
    println!(
        "\nprofiling overhead ({scale:?} fleet, engine; {} blocks profiled):",
        recorded.blocks.len()
    );
    println!(
        "  {:<24} off {off:>10.2?}  on {on:>10.2?}  ratio {ratio:>5.2}x",
        "HB_PROF hot-spot profiler"
    );
    if let Some(allowed) = gate {
        assert!(
            ratio <= allowed,
            "prof gate: profiled fleet runs at {ratio:.2}x the unprofiled baseline, \
             above the allowed {allowed:.2}x"
        );
        println!("  gate: {ratio:.2}x <= {allowed:.2}x — ok");
    }
}

criterion_group!(benches, bench_simulation, bench_compilation);

fn main() {
    benches();
    engine_speedup_report();
    meta_fast_path_report();
    hier_fast_report();
    sampled_error_report();
    opt_speedup_report();
    service_warm_cold_report();
    persist_warm_report();
    trace_overhead_report();
    prof_overhead_report();
}
