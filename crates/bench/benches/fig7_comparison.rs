//! Regenerates paper Figure 7: the comparison of an object-table scheme
//! (JK/RL/DA-style), software fat pointers (CCured-style), and HardBound
//! under its three encodings, with the paper's published columns printed
//! alongside.

fn main() {
    let scale = hardbound_bench::scale_from_env();
    let t0 = std::time::Instant::now();
    let rows = hardbound_report::fig7(scale);
    println!("{}", hardbound_report::render::fig7_table(&rows));
    println!("(regenerated in {:.1?} at {scale:?} scale)", t0.elapsed());
}
