//! Benchmark harness support for the HardBound evaluation.
//!
//! The actual experiment logic lives in `hardbound-report`; this crate's
//! `benches/` directory exposes one `cargo bench` target per paper
//! artefact:
//!
//! | target | regenerates |
//! |---|---|
//! | `fig5_runtime_overhead` | Figure 5 (runtime overhead, stacked components) |
//! | `fig6_memory_overhead` | Figure 6 (extra distinct pages touched) |
//! | `fig7_comparison` | Figure 7 (software schemes vs HardBound) |
//! | `correctness_suite` | §5.2 (288-pair spatial-violation corpus) |
//! | `ablation_check_uop` | §5.4 (bounds check costs one µop) |
//! | `ablation_tag_cache` | tag-cache capacity sensitivity |
//! | `simulator_throughput` | criterion wall-clock benchmarks of the simulator itself |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scale selection for bench targets: `HB_SCALE=smoke` uses tiny inputs
/// (useful in CI); anything else runs the full evaluation inputs.
#[must_use]
pub fn scale_from_env() -> hardbound_workloads::Scale {
    match std::env::var("HB_SCALE").as_deref() {
        Ok("smoke") => hardbound_workloads::Scale::Smoke,
        _ => hardbound_workloads::Scale::Full,
    }
}
