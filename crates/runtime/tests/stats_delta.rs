//! Regression test for per-run registry reporting (`hbrun --stats`).
//!
//! The metrics registry is process-global and monotonic: a second grid in
//! the same process starts on top of the first grid's counters. Anything
//! that reports "this run's" activity must therefore snapshot the
//! registry before the run and print `Snapshot::delta` after — which is
//! exactly how `hbrun --stats` is routed. This pins the property that
//! routing depends on: two identical back-to-back grids produce two
//! *identical* deltas, while the absolute registry keeps accumulating.

use hardbound_compiler::Mode;
use hardbound_core::PointerEncoding;
use hardbound_exec::Engine;
use hardbound_runtime::{build_machine_with_config, compile, machine_config, metrics_snapshot};

const SRC: &str = "
int main() {
  int *a = malloc(16 * sizeof(int));
  int i;
  int s = 0;
  for (i = 0; i < 16; i = i + 1) {
    a[i] = i * 3;
  }
  for (i = 0; i < 16; i = i + 1) {
    s = s + a[i];
  }
  print_int(s);
  return 0;
}
";

/// One grid: the source under two protection modes and every encoding,
/// run on the bare block engine (no result store, so both grids really
/// execute and their registry contributions are equal).
fn run_grid() {
    for mode in [Mode::HardBound, Mode::SoftBound] {
        let program = compile(SRC, mode).unwrap();
        for enc in PointerEncoding::ALL {
            let config = machine_config(mode, enc);
            let out = Engine::new(build_machine_with_config(program.clone(), mode, config)).run();
            assert_eq!(out.trap, None, "{mode}/{enc} trapped");
        }
    }
}

#[test]
fn per_run_deltas_are_stable_across_back_to_back_grids() {
    let before_first = metrics_snapshot();
    run_grid();
    let after_first = metrics_snapshot();
    run_grid();
    let after_second = metrics_snapshot();

    let first = after_first.delta(&before_first);
    let second = after_second.delta(&after_first);
    // The hierarchy fast-path counters are recorded per memory access at
    // run time (not at decode time, which the process-wide block cache
    // would dedup), so identical grids contribute identical deltas.
    for name in ["hb_hier_fastpath_hits", "hb_hier_fastpath_misses"] {
        assert!(
            first.counter(name) > 0,
            "{name}: first grid recorded nothing"
        );
        assert_eq!(
            first.counter(name),
            second.counter(name),
            "{name}: identical grids must show identical per-grid deltas"
        );
        // The regression the delta routing guards against: the absolute
        // registry has accumulated both grids, so reporting it as the
        // second run's activity would double-count.
        assert!(
            after_second.counter(name) >= 2 * first.counter(name),
            "{name}: registry no longer accumulates"
        );
        assert!(
            second.counter(name) < after_second.counter(name),
            "{name}: delta must exclude the earlier grid"
        );
    }
}
