//! The simulated C runtime for the HardBound evaluation, and the glue that
//! pairs each compiler [`Mode`] with the right machine configuration.
//!
//! The paper's heap protection story (§3.2) is entirely runtime-driven:
//! "Heap-allocated objects are bounded by instrumenting `malloc()` and
//! related runtime-library functions." [`RUNTIME_SOURCE`] is that
//! instrumented runtime, written in Cb and prepended to every program by
//! [`link`]; its `malloc` announces allocation extents with
//! `__setbound(p, n)`, which each compiler mode lowers to its own scheme
//! (a `setbound` instruction, fat-pointer construction, an object-table
//! registration, or nothing for the baseline).
//!
//! [`SplayTable`] is the object-lookup structure of §2.2 used by the
//! JK/RL/DA comparison mode.
//!
//! ```
//! use hardbound_compiler::Mode;
//! use hardbound_core::PointerEncoding;
//! use hardbound_runtime::compile_and_run;
//!
//! let out = compile_and_run(
//!     r#"
//!     int main() {
//!         int *a = (int*)malloc(10 * sizeof(int));
//!         for (int i = 0; i < 10; i = i + 1) a[i] = i;
//!         int s = 0;
//!         for (int i = 0; i < 10; i = i + 1) s = s + a[i];
//!         free(a);
//!         return s;
//!     }
//!     "#,
//!     Mode::HardBound,
//!     PointerEncoding::Intern4,
//! )?;
//! assert_eq!(out.exit_code, Some(45));
//! # Ok::<(), hardbound_compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod source;
mod splay;

pub use source::RUNTIME_SOURCE;
pub use splay::SplayTable;

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use hardbound_compiler::{compile_program, CompileError, Mode, Options};
use hardbound_core::{
    BoundsOrigin, Fnv64, HardboundConfig, HierPath, Machine, MachineConfig, MetaPath,
    PointerEncoding, RunOutcome, ViolationReport,
};
use hardbound_exec::service::{config_fingerprint, Job};
use hardbound_exec::{batch, ProgramId, ServiceStats};
use hardbound_isa::Program;
use hardbound_serve::{
    Client, PersistStats, PersistentService, ServeError, ShardRing, StoreLogStats, WireJob,
};
use hardbound_telemetry::{trace, Counter, Field, Histogram, SpanId, SpanTimer, TraceCtx};

/// Parses one `HB_*` boolean flag value: `0`, `false` (any case) and the
/// empty string mean *off*; anything else means *on*. This is the one
/// shared definition every flag-shaped environment variable routes
/// through, so `HB_INTERP=FALSE` and `HB_INTERP=false` can never drift
/// apart again.
#[must_use]
pub fn parse_flag(value: &str) -> bool {
    let v = value.trim();
    !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false"))
}

/// Reads the environment flag `name`: `None` when unset, otherwise
/// [`parse_flag`] of its value.
#[must_use]
pub fn env_flag(name: &str) -> Option<bool> {
    std::env::var(name).ok().map(|v| parse_flag(&v))
}

/// Reads and parses the environment variable `name` as a `T`: `Ok(None)`
/// when unset or empty, `Err` with a diagnostic naming the variable and
/// quoting the value when it does not parse — never a silent fallback.
///
/// # Errors
///
/// Returns the diagnostic described above on unparseable values.
pub fn env_parse<T: std::str::FromStr>(name: &str) -> Result<Option<T>, String> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(v) if v.trim().is_empty() => Ok(None),
        Ok(v) => v
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| format!("{name} must be a {}, got `{v}`", std::any::type_name::<T>())),
    }
}

/// Prepends the runtime library to a user program.
#[must_use]
pub fn link(user_source: &str) -> String {
    format!("{RUNTIME_SOURCE}\n{user_source}")
}

/// Compiles a user program together with the runtime library, memoized by
/// `(source hash, mode)` in a process-wide cache — figure passes compile
/// each distinct `(workload, mode)` once per process, and a warm pass
/// (every figure after the first, warm service replays) is compile-free.
/// `HB_COMPILE_CACHE=0` opts out; see [`compile_uncached`] for the
/// underlying compilation.
///
/// # Errors
///
/// Propagates [`CompileError`]s from the front end or code generator
/// (errors are never cached — a fixed source recompiles).
pub fn compile(user_source: &str, mode: Mode) -> Result<Program, CompileError> {
    if !env_flag("HB_COMPILE_CACHE").unwrap_or(true) {
        return compile_uncached(user_source, mode);
    }
    let mut h = Fnv64::default();
    h.mix_bytes(user_source.as_bytes());
    let key = (h.value(), mode);
    {
        let cache = compile_cache()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(program) = cache.get(&key) {
            metrics().compile_hits.inc();
            return Ok(program.clone());
        }
    }
    // Compile outside the lock: parallel drivers (`batch::map` over
    // (workload, mode) pairs) must not serialize their cold compiles.
    metrics().compile_misses.inc();
    let program = compile_uncached(user_source, mode)?;
    let mut cache = compile_cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if cache.len() >= COMPILE_CACHE_CAP {
        // Crude but bounded: a process sweeping unbounded generated
        // sources (fuzzers) must not leak. Real corpora hold a few
        // thousand distinct translation units at most.
        cache.clear();
    }
    cache.insert(key, program.clone());
    Ok(program)
}

/// [`compile`] without the memo: always runs the front end and code
/// generator.
///
/// # Errors
///
/// Propagates [`CompileError`]s.
pub fn compile_uncached(user_source: &str, mode: Mode) -> Result<Program, CompileError> {
    // The allocator is trusted runtime code: its header bookkeeping is
    // exempt from software checks, as an uninstrumented libc would be.
    let opts = Options::mode(mode).with_unchecked(["malloc", "free"]);
    // Compiles happen before any grid exists, so the span is a root of
    // its own trace rather than a child of a later grid span.
    let timer =
        trace::enabled().then(|| SpanTimer::start(trace::new_trace(), SpanId::NONE, "compile"));
    let started = Instant::now();
    let result = compile_program(&link(user_source), &opts);
    metrics().compile_us.record_duration(started.elapsed());
    if let Some(t) = timer {
        t.emit(vec![
            ("mode".to_owned(), Field::from(mode.to_string())),
            ("ok".to_owned(), Field::from(u64::from(result.is_ok()))),
        ]);
    }
    result
}

/// Upper bound on memoized compilations before the cache resets.
const COMPILE_CACHE_CAP: usize = 1 << 12;

/// Registry-backed handles for every runtime-layer counter. All of them
/// live in the process-global [`hardbound_telemetry::Registry`], so
/// `hbrun --stats`, the Prometheus exposition and snapshot/delta metering
/// read the same cells the hot paths increment.
struct RuntimeMetrics {
    compile_hits: Counter,
    compile_misses: Counter,
    compile_us: Histogram,
    remote_round_trips: Counter,
    remote_cells: Counter,
    remote_retries: Counter,
    remote_reroutes: Counter,
    remote_rt_us: Histogram,
}

fn metrics() -> &'static RuntimeMetrics {
    static METRICS: OnceLock<RuntimeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = hardbound_telemetry::global();
        RuntimeMetrics {
            compile_hits: g.counter("hb_compile_hits"),
            compile_misses: g.counter("hb_compile_misses"),
            compile_us: g.histogram("hb_compile_us"),
            remote_round_trips: g.counter("hb_remote_round_trips"),
            remote_cells: g.counter("hb_remote_cells"),
            remote_retries: g.counter("hb_remote_retries"),
            remote_reroutes: g.counter("hb_remote_reroutes"),
            remote_rt_us: g.histogram("hb_remote_rt_us"),
        }
    })
}

/// A point-in-time snapshot of the process-global metrics registry:
/// compile-memo and remote-client counters, the service mirror gauges,
/// and the latency histograms. Pair two snapshots with
/// [`hardbound_telemetry::Snapshot::delta`] to meter one region, or
/// render the Prometheus text exposition with
/// [`hardbound_telemetry::Snapshot::render`].
#[must_use]
pub fn metrics_snapshot() -> hardbound_telemetry::Snapshot {
    hardbound_telemetry::global().snapshot()
}

fn compile_cache() -> &'static Mutex<HashMap<(u64, Mode), Program>> {
    static CACHE: OnceLock<Mutex<HashMap<(u64, Mode), Program>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Counters of the compile memo (surfaced by `hbrun --stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileCacheStats {
    /// Compilations answered from the memo.
    pub hits: u64,
    /// Compilations that ran the front end and code generator.
    pub misses: u64,
}

/// Snapshot of the process-wide compile-memo counters (reads the
/// `hb_compile_hits` / `hb_compile_misses` registry cells).
#[must_use]
pub fn compile_cache_stats() -> CompileCacheStats {
    let m = metrics();
    CompileCacheStats {
        hits: m.compile_hits.get(),
        misses: m.compile_misses.get(),
    }
}

/// The default [`MetaPath`]: the summary fast path, unless `HB_META_FAST`
/// is explicitly turned off — the escape hatch restoring the paper's §4.2
/// model where every memory operation generates tag traffic.
#[must_use]
pub fn meta_path_default() -> MetaPath {
    if env_flag("HB_META_FAST").unwrap_or(true) {
        MetaPath::Summary
    } else {
        MetaPath::Charge
    }
}

/// The default [`HierPath`], from the environment:
///
/// * `HB_HIER_SAMPLE=K` (power of two ≥ 2) selects the explicitly
///   *approximate* 1-in-K set-sampled hierarchy — capacity-planning
///   sweeps only; never stored, never shipped to a server;
/// * otherwise `HB_HIER_FAST` (default on) selects the exact event-driven
///   fast path, and `HB_HIER_FAST=0` the exact reference walk.
///
/// # Panics
///
/// Panics when `HB_HIER_SAMPLE` is set to anything but a power of two ≥ 2.
#[must_use]
pub fn hier_path_default() -> HierPath {
    if let Some(k) = env_parse::<u32>("HB_HIER_SAMPLE").unwrap_or_else(|e| panic!("{e}")) {
        return HierPath::sampled(k);
    }
    if env_flag("HB_HIER_FAST").unwrap_or(true) {
        HierPath::Event
    } else {
        HierPath::Walk
    }
}

/// The machine configuration that corresponds to a compiler mode (paper
/// §5.1): HardBound hardware for the HardBound/MallocOnly modes, the plain
/// baseline machine for the software-only schemes. The metadata fast path
/// follows [`meta_path_default`], the hierarchy lookup machinery
/// [`hier_path_default`].
#[must_use]
pub fn machine_config(mode: Mode, encoding: PointerEncoding) -> MachineConfig {
    let cfg = match mode {
        Mode::Baseline | Mode::SoftBound | Mode::ObjectTable => MachineConfig::baseline(),
        Mode::MallocOnly => MachineConfig::hardbound(HardboundConfig::malloc_only(encoding)),
        Mode::HardBound => MachineConfig::hardbound(HardboundConfig::full(encoding)),
    };
    cfg.with_meta_path(meta_path_default())
        .with_hier_path(hier_path_default())
}

/// The flight-recorder depth (`HB_FLIGHT=N`): `None` when unset, empty or
/// `0` — the default, under which machines pay one `Option` discriminant
/// test per memory access and record nothing.
///
/// # Panics
///
/// Panics with a diagnostic on an unparseable value.
#[must_use]
pub fn flight_depth() -> Option<usize> {
    env_parse::<usize>("HB_FLIGHT")
        .unwrap_or_else(|e| panic!("{e}"))
        .filter(|&n| n > 0)
}

/// Builds a machine for `program` under `mode`, attaching the splay-tree
/// object table when the mode needs one.
#[must_use]
pub fn build_machine(program: Program, mode: Mode, encoding: PointerEncoding) -> Machine {
    build_machine_with_config(program, mode, machine_config(mode, encoding))
}

/// [`build_machine`] with an explicit configuration (used by the ablation
/// experiments that tweak the hierarchy or enable the check-µop model).
/// `HB_FLIGHT=N` arms the machine's flight recorder — invisible to
/// [`RunOutcome`] equality, so every differential suite holds either way.
#[must_use]
pub fn build_machine_with_config(program: Program, mode: Mode, config: MachineConfig) -> Machine {
    let mut m = Machine::new(program, config);
    if mode == Mode::ObjectTable {
        m.set_object_table(Box::new(SplayTable::new()));
    }
    if let Some(depth) = flight_depth() {
        m.enable_flight(depth);
    }
    m
}

/// Assembles the violation forensics report for a trapped run of
/// `program`: a fresh machine (flight recorder armed per `HB_FLIGHT`)
/// re-runs the cell on the interpreter and hands back its
/// [`Machine::violation_report`]. `None` when the run does not trap.
///
/// The re-run is how forensics stay free on the hot paths: outcomes from
/// the engine, the result store, or a remote shard carry no machine state,
/// so the (rare, already-failed) trapping cell is replayed once, in full,
/// with the provenance table and flight recorder live.
#[must_use]
pub fn violation_report(
    program: Program,
    mode: Mode,
    config: MachineConfig,
) -> Option<ViolationReport> {
    let mut m = build_machine_with_config(program, mode, config);
    let _ = m.run();
    let report = m.violation_report();
    if let Some(r) = &report {
        emit_violation_span(r);
    }
    report
}

/// Emits one `violation` span carrying the report's forensics fields into
/// the JSONL trace sink (no-op when `HB_TRACE` is off), so traced cluster
/// runs ship structured forensics alongside their timing spans.
pub fn emit_violation_span(report: &ViolationReport) {
    if !trace::enabled() {
        return;
    }
    let timer = SpanTimer::start(trace::new_trace(), SpanId::NONE, "violation");
    let mut fields = vec![("trap".to_owned(), Field::from(report.trap.to_string()))];
    if let Some(pc) = report.pc {
        fields.push(("pc".to_owned(), Field::from(pc.to_string())));
    }
    if let Some(addr) = report.addr {
        fields.push(("addr".to_owned(), Field::from(u64::from(addr))));
    }
    if let Some((base, bound)) = report.bounds {
        fields.push(("base".to_owned(), Field::from(u64::from(base))));
        fields.push(("bound".to_owned(), Field::from(u64::from(bound))));
    }
    if let Some(oob) = report.oob {
        fields.push(("oob".to_owned(), Field::from(oob.to_string())));
    }
    match report.origin {
        BoundsOrigin::Setbound { site, id } => {
            fields.push(("setbound_site".to_owned(), Field::from(site.to_string())));
            fields.push(("provenance_id".to_owned(), Field::from(id)));
        }
        BoundsOrigin::Region => {
            fields.push(("origin".to_owned(), Field::from("region")));
        }
        BoundsOrigin::Unknown => {}
    }
    fields.push((
        "flight_events".to_owned(),
        Field::from(report.flight.len() as u64),
    ));
    timer.emit(fields);
    trace::flush();
}

/// Compile (with runtime), build the paired machine, and run to completion
/// **on the interpreter**. This is the semantic reference the
/// engine-vs-interpreter differential suite compares against; use
/// [`run_machine`] / [`compile_and_run_default`] for the fast path.
///
/// # Errors
///
/// Propagates compilation errors; runtime traps are reported in the
/// returned [`RunOutcome`].
pub fn compile_and_run(
    user_source: &str,
    mode: Mode,
    encoding: PointerEncoding,
) -> Result<RunOutcome, CompileError> {
    let program = compile(user_source, mode)?;
    Ok(build_machine(program, mode, encoding).run())
}

/// Whether the block execution engine is the default execution path.
/// Setting `HB_INTERP=1` (any value except `0`, `false` in any case, or
/// empty — see [`parse_flag`]) in the environment is the global `--interp`
/// escape hatch: every driver that runs through [`run_machine`] falls back
/// to the one-µop-per-step interpreter.
#[must_use]
pub fn engine_default() -> bool {
    !env_flag("HB_INTERP").unwrap_or(false)
}

/// Runs a prepared machine on the default execution path: the basic-block
/// engine (`hardbound-exec`), or the interpreter when `HB_INTERP` is set.
/// The two paths are observationally identical (enforced by the
/// differential suite). One-shot callers route through here; the corpus
/// drivers go through [`run_jobs`], which adds the shared decode cache and
/// the program-hash result store on top of the same engine.
#[must_use]
pub fn run_machine(machine: Machine) -> RunOutcome {
    if engine_default() {
        hardbound_exec::Engine::new(machine).run()
    } else {
        let mut machine = machine;
        machine.run()
    }
}

/// Whether corpus work routes through the process-wide [`CorpusService`]
/// (shared decode cache + program-hash result store). On by default;
/// `HB_SERVICE=0` is the escape hatch that restores the direct
/// one-machine-one-engine path (and `HB_INTERP` implies it — the service
/// is an engine-path construct).
#[must_use]
pub fn service_enabled() -> bool {
    engine_default() && env_flag("HB_SERVICE").unwrap_or(true)
}

/// Whether the service's result store is consulted and grown
/// (`HB_RESULT_CACHE`, on by default). With the store off the service
/// still shares decode work across jobs; it just re-executes every cell.
#[must_use]
pub fn result_cache_enabled() -> bool {
    env_flag("HB_RESULT_CACHE").unwrap_or(true)
}

/// The persistent-store path (`HB_STORE_PATH`): when set, the process-wide
/// service's result store loads from — and appends to — this file, so warm
/// starts survive process boundaries (and CI runs). Corrupt or
/// version-mismatched files recover per `hardbound_serve::StoreLog`.
#[must_use]
pub fn store_path() -> Option<String> {
    let v = std::env::var("HB_STORE_PATH").ok()?;
    let v = v.trim();
    (!v.is_empty()).then(|| v.to_owned())
}

/// The remote corpus server (`HB_SERVE_ADDR`): when set, [`run_jobs`]
/// offloads cell grids to that `hbserve` instance instead of the local
/// service, so many processes share one warm store.
#[must_use]
pub fn serve_addr() -> Option<String> {
    let v = std::env::var("HB_SERVE_ADDR").ok()?;
    let v = v.trim();
    (!v.is_empty()).then(|| v.to_owned())
}

/// The `hbserve` shard list: `HB_SERVE_ADDR` split on commas, in shard
/// order (address *i* is shard *i* of *n* on the cluster's
/// [`ShardRing`]). A single address is a one-shard cluster; `None` when
/// the variable is unset or holds no addresses.
#[must_use]
pub fn serve_addrs() -> Option<Vec<String>> {
    let addrs: Vec<String> = serve_addr()?
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .map(str::to_owned)
        .collect();
    (!addrs.is_empty()).then_some(addrs)
}

/// The result-store idle TTL in seconds (`HB_STORE_TTL`): entries
/// untouched for that long are garbage-collected at the next batch.
/// `None` (unset or empty) disables expiry.
///
/// # Panics
///
/// Panics with a diagnostic on an unparseable value — a silently ignored
/// TTL would let a long-lived store grow stale without a trace.
#[must_use]
pub fn store_ttl() -> Option<std::time::Duration> {
    env_parse::<u64>("HB_STORE_TTL")
        .unwrap_or_else(|e| panic!("{e}"))
        .map(std::time::Duration::from_secs)
}

/// The process-wide corpus service: one shared decode-cache shard per
/// [`batch::default_workers`] worker plus the result store, living for the
/// whole process so every figure driver, corpus sweep and CI invocation
/// in it reuses earlier work. With `HB_STORE_PATH` set the store is
/// persistent — loaded here once, appended after every batch.
///
/// # Panics
///
/// Panics with a diagnostic when `HB_STORE_PATH` is set but unusable
/// (permissions, missing parent directory) — a silent fall-back to a
/// volatile store would defeat the warm-start contract without a trace.
fn service() -> &'static Mutex<PersistentService> {
    static SERVICE: OnceLock<Mutex<PersistentService>> = OnceLock::new();
    SERVICE.get_or_init(|| {
        let workers = batch::default_workers();
        let mut svc = match store_path() {
            Some(path) => PersistentService::open(workers, &path)
                .unwrap_or_else(|e| panic!("HB_STORE_PATH={path}: cannot open store: {e}")),
            None => PersistentService::new(workers),
        };
        svc.set_ttl(store_ttl());
        register_service_gauges();
        Mutex::new(svc)
    })
}

/// Mirrors the process-wide service's counters into the global registry
/// as `hb_*` gauges, so one `METRICS`-style snapshot carries the result
/// store and decode cache story without a second bookkeeping path. Each
/// closure locks the service mutex at snapshot time — never snapshot the
/// registry while holding that lock.
fn register_service_gauges() {
    let g = hardbound_telemetry::global();
    type Sel = fn(&PersistStats) -> u64;
    let gauges: [(&str, Sel); 12] = [
        ("hb_store_hits", |s| s.service.store.hits),
        ("hb_store_misses", |s| s.service.store.misses),
        ("hb_store_stored", |s| s.service.store.stored),
        ("hb_store_evicted", |s| s.service.store.evicted),
        ("hb_store_expired", |s| s.service.store.expired),
        ("hb_store_len", |s| s.service.store_len as u64),
        ("hb_block_hits", |s| s.service.cache.hits),
        ("hb_block_decoded", |s| s.service.cache.decoded),
        ("hb_block_evicted", |s| s.service.cache.evicted),
        ("hb_blocks_resident", |s| s.service.blocks_resident as u64),
        ("hb_log_appended", |s| {
            s.log.as_ref().map_or(0, |l| l.appended)
        }),
        ("hb_log_flushes", |s| {
            s.log.as_ref().map_or(0, |l| l.flushes)
        }),
    ];
    for (name, sel) in gauges {
        g.gauge_fn(name, move || {
            let stats = service()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .stats();
            sel(&stats)
        });
    }
}

/// Counters of the remote-offload client path (`HB_SERVE_ADDR`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Submissions sent to servers (one per shard group on the happy
    /// path; resubmissions count again).
    pub round_trips: u64,
    /// Cells shipped across all submissions (resubmitted cells count
    /// again).
    pub cells: u64,
    /// Repeat attempts against a shard after a transient failure.
    pub retries: u64,
    /// Submissions re-routed to a fallback shard after the preferred
    /// shard's attempts exhausted.
    pub reroutes: u64,
}

/// Snapshot of this process's remote-offload counters (reads the
/// `hb_remote_*` registry cells).
#[must_use]
pub fn remote_stats() -> RemoteStats {
    let m = metrics();
    RemoteStats {
        round_trips: m.remote_round_trips.get(),
        cells: m.remote_cells.get(),
        retries: m.remote_retries.get(),
        reroutes: m.remote_reroutes.get(),
    }
}

/// Snapshot of the persistent store log's counters — `None` when the
/// process runs without `HB_STORE_PATH`.
#[must_use]
pub fn store_log_stats() -> Option<StoreLogStats> {
    service()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .stats()
        .log
}

/// Compacts the persistent store log down to the live store entries (an
/// atomic rewrite; see `hardbound_serve::PersistentService::checkpoint`).
/// A no-op without `HB_STORE_PATH`.
///
/// # Errors
///
/// Propagates I/O errors from the rewrite.
pub fn checkpoint_store() -> std::io::Result<()> {
    service()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .checkpoint()
}

/// One corpus cell: a compiled program to simulate under a mode-paired
/// machine configuration.
#[derive(Clone, Debug)]
pub struct SimJob {
    /// The compiled image.
    pub program: Program,
    /// Compiler mode (decides machine extras such as the object table).
    pub mode: Mode,
    /// Full machine configuration.
    pub config: MachineConfig,
}

impl SimJob {
    /// A job for `program` under the standard mode-paired configuration
    /// (see [`machine_config`]).
    #[must_use]
    pub fn new(program: Program, mode: Mode, encoding: PointerEncoding) -> SimJob {
        SimJob {
            program,
            mode,
            config: machine_config(mode, encoding),
        }
    }
}

/// Runs a batch of corpus cells, returning outcomes in input order.
///
/// This is the drivers' front door, choosing among three byte-identical
/// paths (pinned by `tests/service_differential.rs` and the `hbserve`
/// smoke suite):
///
/// 1. **Remote** — `HB_SERVE_ADDR` set: the grid ships to that `hbserve`
///    server (programs as listings, configs on the wire), which dedups
///    against its shared warm store and streams outcomes back.
/// 2. **Local service** (default) — the process-wide persistent
///    [`PersistentService`]: result-store hits replay, misses run on
///    per-worker shared-cache shards, fresh outcomes append to
///    `HB_STORE_PATH` when set.
/// 3. **Direct** — `HB_SERVICE=0` (or `HB_INTERP`): each cell runs the
///    plain [`run_machine`] path in a parallel batch.
///
/// # Panics
///
/// Panics with a diagnostic when `HB_SERVE_ADDR` is set but the server is
/// unreachable or rejects the submission — a silent local fallback would
/// hide that the warm server is not being used.
#[must_use]
pub fn run_jobs(jobs: Vec<SimJob>) -> Vec<RunOutcome> {
    if !service_enabled() {
        return batch::map(&jobs, |_, j| {
            run_machine(build_machine_with_config(
                j.program.clone(),
                j.mode,
                j.config.clone(),
            ))
        });
    }
    if let Some(addrs) = serve_addrs() {
        // The wire codec deliberately does not express `hier_path`:
        // `Sampled` is approximate and shares a stable fingerprint with its
        // exact twins, so shipping such a job would silently run `Event` on
        // the server and hand back an exact outcome the caller believes is
        // sampled (or worse, a warm-store replay). Fail loudly instead.
        assert!(
            !jobs.iter().any(|j| j.config.hier_path.is_sampled()),
            "HierPath::Sampled cannot run through HB_SERVE_ADDR: the wire \
             protocol deliberately does not express approximate hierarchy \
             modes. Unset HB_HIER_SAMPLE (or HB_SERVE_ADDR) for this grid."
        );
        return run_jobs_remote_to(&addrs, &jobs);
    }
    let jobs: Vec<Job<Mode>> = jobs
        .into_iter()
        .map(|j| Job {
            program: j.program,
            config: j.config,
            salt: j.mode as u64,
            tag: j.mode,
        })
        .collect();
    let mut svc = service().lock().unwrap_or_else(PoisonError::into_inner);
    svc.set_result_cache(result_cache_enabled());
    let outs = svc.run_batch(&jobs, |program, config, &mode| {
        build_machine_with_config(program, mode, config)
    });
    drop(svc);
    // The sink's BufWriter is a static — no destructor runs at process
    // exit, so every grid boundary flushes (`HB_TRACE` users would
    // otherwise lose the buffered tail of short runs).
    if trace::enabled() {
        trace::flush();
    }
    outs
}

/// Attempts per shard address before falling through to the next shard on
/// the ring's fallback route: one initial submission plus one
/// reconnect-and-resubmit of the still-missing cells.
const ATTEMPTS_PER_SHARD: usize = 2;

/// One submission attempt against `addr`: connect, submit over the v2
/// ticket flow, stream into `out`. On a mid-stream failure the slots
/// filled so far stay filled — the caller resubmits only the rest.
///
/// With `ctx` present the attempt runs under a `remote_rt` span: the
/// submission carries the span as the server-side parent (SUBMIT3), the
/// returned server spans are re-emitted into the local sink so the grid's
/// trace is one merged file, and a failed attempt records the error so
/// the following retry/re-route is attributable to the shard that died.
fn try_shard_once(
    addr: &str,
    sub: &[WireJob],
    out: &mut [Option<RunOutcome>],
    ctx: Option<TraceCtx>,
    (shard, hop, attempt): (u64, u64, u64),
) -> Result<(), ServeError> {
    let m = metrics();
    let started = Instant::now();
    let timer = ctx.map(|c| SpanTimer::start(c.trace, c.parent, "remote_rt"));
    let result = (|| {
        let mut client = Client::connect(addr)?;
        let sub_ctx = ctx.zip(timer.as_ref()).map(|(c, t)| TraceCtx {
            trace: c.trace,
            parent: t.span(),
        });
        let (ticket, _traced) = client.submit_traced(sub, sub_ctx)?;
        m.remote_round_trips.inc();
        m.remote_cells.add(sub.len() as u64);
        let mut spans = Vec::new();
        let watched = client.watch_into_traced(ticket, out, &mut spans);
        for ev in &spans {
            trace::emit(ev);
        }
        watched.map(|()| ticket)
    })();
    m.remote_rt_us.record_duration(started.elapsed());
    if let Some(t) = timer {
        let mut fields = vec![
            ("addr".to_owned(), Field::from(addr)),
            ("shard".to_owned(), Field::from(shard)),
            ("hop".to_owned(), Field::from(hop)),
            ("attempt".to_owned(), Field::from(attempt)),
            ("cells".to_owned(), Field::from(sub.len() as u64)),
        ];
        match &result {
            Ok(ticket) => fields.push(("ticket".to_owned(), Field::from(*ticket))),
            Err(e) => fields.push(("err".to_owned(), Field::from(e.to_string()))),
        }
        t.emit(fields);
    }
    result.map(|_| ())
}

/// Fetches one shard group's cells (`idxs` into `wire_jobs`), walking the
/// ring's fallback route: bounded attempts per shard, resubmitting only
/// the cells still missing (results the cluster already streamed — or
/// already computed into a surviving shard's store — are never thrown
/// away). A server *rejection* (invalid job) is non-transient and fails
/// immediately; connection/stream failures try the next attempt or shard.
fn fetch_group(
    addrs: &[String],
    order: &[usize],
    wire_jobs: &[WireJob],
    idxs: &[usize],
    ctx: Option<TraceCtx>,
) -> Result<Vec<(usize, RunOutcome)>, String> {
    let mut results: Vec<Option<RunOutcome>> = vec![None; idxs.len()];
    let mut errors: Vec<String> = Vec::new();
    for (hop, &shard) in order.iter().enumerate() {
        let addr = &addrs[shard];
        for attempt in 0..ATTEMPTS_PER_SHARD {
            let missing: Vec<usize> = (0..idxs.len()).filter(|&k| results[k].is_none()).collect();
            if missing.is_empty() {
                break;
            }
            if attempt > 0 {
                metrics().remote_retries.inc();
            } else if hop > 0 {
                metrics().remote_reroutes.inc();
            }
            let sub: Vec<WireJob> = missing
                .iter()
                .map(|&k| wire_jobs[idxs[k]].clone())
                .collect();
            let mut sub_results: Vec<Option<RunOutcome>> = vec![None; sub.len()];
            let outcome = try_shard_once(
                addr,
                &sub,
                &mut sub_results,
                ctx,
                (shard as u64, hop as u64, attempt as u64),
            );
            for (&k, out) in missing.iter().zip(sub_results) {
                if out.is_some() {
                    results[k] = out;
                }
            }
            match outcome {
                Ok(()) if results.iter().all(Option::is_some) => {
                    return Ok(idxs
                        .iter()
                        .zip(results)
                        .map(|(&i, out)| (i, out.expect("checked above")))
                        .collect());
                }
                // A DONE with holes is a server bug; treat as transient
                // and resubmit the holes.
                Ok(()) => errors.push(format!("{addr}: incomplete result stream")),
                // A rejection means the submission itself is invalid —
                // every shard would reject it the same way.
                Err(e @ (ServeError::Server(_) | ServeError::Oversized { .. })) => {
                    return Err(format!("{addr}: {e}"));
                }
                Err(e) => errors.push(format!("{addr}: {e}")),
            }
        }
    }
    Err(format!(
        "all shards exhausted for {} cells [{}]",
        results.iter().filter(|r| r.is_none()).count(),
        errors.join("; ")
    ))
}

/// The `HB_SERVE_ADDR` client path: scatter the grid across the shard
/// cluster by consistent hashing over each cell's store key, gather the
/// streams, and merge outcomes back into input order. Shard groups fetch
/// concurrently; a shard's transient failure retries and then re-routes
/// along the ring (see [`fetch_group`]).
///
/// Public so the cluster differential tests can drive an explicit shard
/// list without racing on the process environment.
///
/// # Panics
///
/// Panics with per-shard diagnostics when a submission is rejected or
/// every shard's attempts exhaust — a silent local fallback (or a silent
/// hole in the grid) would hide that the cluster is not being used.
#[must_use]
pub fn run_jobs_remote_to(addrs: &[String], jobs: &[SimJob]) -> Vec<RunOutcome> {
    assert!(!addrs.is_empty(), "empty hbserve shard list");
    if jobs.is_empty() {
        return Vec::new();
    }
    let wire_jobs: Vec<WireJob> = jobs
        .iter()
        .map(|j| WireJob::new(&j.program, j.config.clone(), j.mode as u64, j.mode as u64))
        .collect();
    let ring = ShardRing::new(addrs.len());
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); addrs.len()];
    for (i, j) in jobs.iter().enumerate() {
        let pid = ProgramId::of(&j.program, &j.config);
        let fp = config_fingerprint(&j.config, j.mode as u64);
        groups[ring.owner_of_cell(pid.0, fp)].push(i);
    }
    // The whole scatter/gather runs under one fresh trace: the `grid` root
    // span parents every per-attempt `remote_rt` span, and the server
    // spans each attempt brings back are re-emitted locally, so a single
    // JSONL file tells the cluster-wide story of this grid.
    let grid_timer =
        trace::enabled().then(|| SpanTimer::start(trace::new_trace(), SpanId::NONE, "grid"));
    let ctx = grid_timer.as_ref().map(|t| TraceCtx {
        trace: t.trace(),
        parent: t.span(),
    });
    let fetched: Vec<Result<Vec<(usize, RunOutcome)>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .map(|(shard, idxs)| {
                let order = ring.route_from(shard);
                let wire_jobs = &wire_jobs;
                scope.spawn(move || fetch_group(addrs, &order, wire_jobs, idxs, ctx))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    let mut results: Vec<Option<RunOutcome>> = vec![None; jobs.len()];
    let mut failures: Vec<String> = Vec::new();
    for group in fetched {
        match group {
            Ok(cells) => {
                for (i, out) in cells {
                    results[i] = Some(out);
                }
            }
            Err(msg) => failures.push(msg),
        }
    }
    if let Some(t) = grid_timer {
        t.emit(vec![
            ("cells".to_owned(), Field::from(jobs.len() as u64)),
            ("shards".to_owned(), Field::from(addrs.len() as u64)),
            ("failures".to_owned(), Field::from(failures.len() as u64)),
        ]);
        trace::flush();
    }
    assert!(
        failures.is_empty(),
        "HB_SERVE_ADDR={}: remote batch failed: {}",
        addrs.join(","),
        failures.join(" | ")
    );
    results
        .into_iter()
        .map(|r| r.expect("every group resolved or failed loudly"))
        .collect()
}

/// Scrapes and merges the hot-spot profiles of every reachable shard in
/// `addrs` into one cluster-wide [`hardbound_telemetry::Profile`]. Merging
/// is exact summation key-by-key, so the merged block counts equal the
/// sums of the per-shard counts. Unreachable shards and pre-profile
/// servers (which answer `ERR "unknown request kind"`) contribute an
/// empty profile — the same degradation path the result fetchers use for
/// a killed shard; their addresses come back in the second element.
#[must_use]
pub fn cluster_profile(addrs: &[String]) -> (hardbound_telemetry::Profile, Vec<String>) {
    let mut merged = hardbound_telemetry::Profile::new();
    let mut skipped = Vec::new();
    for addr in addrs {
        let scraped = Client::connect(addr)
            .map_err(ServeError::from)
            .and_then(|mut c| c.profile());
        match scraped {
            Ok(p) => merged.merge(&p),
            Err(_) => skipped.push(addr.clone()),
        }
    }
    (merged, skipped)
}

/// [`run_jobs`] for a single cell (`hbrun`, one-shot tools).
#[must_use]
pub fn run_job(program: Program, mode: Mode, config: MachineConfig) -> RunOutcome {
    run_jobs(vec![SimJob {
        program,
        mode,
        config,
    }])
    .pop()
    .expect("one job, one outcome")
}

/// Snapshot of the process-wide service's counters (result-store
/// hits/misses/evictions, block-cache behaviour over all shards) —
/// surfaced by `hbrun --stats` and the bench harness. The persistent
/// log's counters ride along via [`store_log_stats`].
#[must_use]
pub fn service_stats() -> ServiceStats {
    service()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .stats()
        .service
}

/// [`compile_and_run`] on the default execution path (see
/// [`run_machine`]).
///
/// # Errors
///
/// Propagates compilation errors; runtime traps are reported in the
/// returned [`RunOutcome`].
pub fn compile_and_run_default(
    user_source: &str,
    mode: Mode,
    encoding: PointerEncoding,
) -> Result<RunOutcome, CompileError> {
    let program = compile(user_source, mode)?;
    Ok(run_machine(build_machine(program, mode, encoding)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_core::Trap;
    use hardbound_isa::layout;

    fn run_all_modes(src: &str) -> RunOutcome {
        let reference =
            compile_and_run(src, Mode::Baseline, PointerEncoding::Intern4).expect("compiles");
        assert_eq!(
            reference.trap, None,
            "baseline trapped: {:?}",
            reference.trap
        );
        for mode in [
            Mode::MallocOnly,
            Mode::HardBound,
            Mode::SoftBound,
            Mode::ObjectTable,
        ] {
            let out = compile_and_run(src, mode, PointerEncoding::Intern4).expect("compiles");
            assert_eq!(out.trap, None, "{mode} trapped: {:?}", out.trap);
            assert_eq!(out.exit_code, reference.exit_code, "{mode} exit differs");
            assert_eq!(out.output, reference.output, "{mode} output differs");
        }
        reference
    }

    #[test]
    fn flag_parsing_is_case_insensitive_and_matches_the_docs() {
        // "any value except `0`, `false`, or empty" — in any case, with
        // surrounding whitespace tolerated. `HB_INTERP=FALSE` used to
        // enable the interpreter because the comparison was case-sensitive.
        for off in ["", "0", "false", "FALSE", "False", " false ", " 0 "] {
            assert!(!parse_flag(off), "`{off}` must read as off");
        }
        for on in ["1", "true", "TRUE", "yes", "on", "2", "x"] {
            assert!(parse_flag(on), "`{on}` must read as on");
        }
    }

    #[test]
    fn env_parse_reports_unparseable_values() {
        // Unset variables read as None.
        assert_eq!(env_parse::<f64>("HB_TEST_UNSET_NO_SUCH_VAR"), Ok(None));
        // A set-but-invalid value takes the error path, and the diagnostic
        // names the variable and quotes the value. The variable name is
        // unique to this test, so no other test can race on it.
        std::env::set_var("HB_TEST_ENV_PARSE_INVALID", "1.x");
        let err =
            env_parse::<f64>("HB_TEST_ENV_PARSE_INVALID").expect_err("`1.x` must not parse as f64");
        assert!(err.contains("HB_TEST_ENV_PARSE_INVALID"), "{err}");
        assert!(err.contains("1.x"), "{err}");
        // Valid and empty values parse through the same path.
        std::env::set_var("HB_TEST_ENV_PARSE_INVALID", "2.5");
        assert_eq!(env_parse::<f64>("HB_TEST_ENV_PARSE_INVALID"), Ok(Some(2.5)));
        std::env::set_var("HB_TEST_ENV_PARSE_INVALID", "");
        assert_eq!(env_parse::<f64>("HB_TEST_ENV_PARSE_INVALID"), Ok(None));
        std::env::remove_var("HB_TEST_ENV_PARSE_INVALID");
    }

    #[test]
    fn compile_memo_returns_identical_images_and_counts_hits() {
        let src = "int main() { return 41 + 1; }";
        // A unique source so parallel sibling tests cannot pre-warm it.
        let src = format!("{src} // memo-test-{}", std::process::id());
        let before = compile_cache_stats();
        let a = compile(&src, Mode::HardBound).expect("compiles");
        let b = compile(&src, Mode::HardBound).expect("compiles");
        assert_eq!(a, b, "memoized image must be identical");
        let after = compile_cache_stats();
        assert!(after.misses > before.misses, "first compile misses");
        assert!(after.hits > before.hits, "second compile hits the memo");
        // A different mode is a different key — and a different image.
        let base = compile(&src, Mode::Baseline).expect("compiles");
        assert_ne!(a, base, "modes must not alias in the memo");
        // The memo is an optimization only: the uncached path agrees.
        assert_eq!(
            a,
            compile_uncached(&src, Mode::HardBound).expect("compiles"),
            "memoized and fresh compilations must be identical"
        );
    }

    #[test]
    fn malloc_returns_heap_pointers_with_exact_bounds() {
        let out = compile_and_run(
            "int main() {\n\
               int *a = (int*)malloc(12);\n\
               int lo = (int)a >= 0x1000000;\n\
               int hi = (int)a < 0x5000000;\n\
               int span = __readbound(a) - __readbase(a);\n\
               return lo * 100 + hi * 10 + (span == 12);\n\
             }",
            Mode::HardBound,
            PointerEncoding::Intern4,
        )
        .unwrap();
        assert_eq!(out.exit_code, Some(111), "{:?}", out.trap);
    }

    #[test]
    fn malloc_free_reuse_cycle() {
        let out = run_all_modes(
            "int main() {\n\
               int *a = (int*)malloc(32);\n\
               int first = (int)a;\n\
               a[0] = 7;\n\
               free(a);\n\
               int *b = (int*)malloc(32);\n\
               int second = (int)b;\n\
               b[0] = 9;\n\
               return (first == second) * 10 + b[0] - 9;\n\
             }",
        );
        assert_eq!(out.exit_code, Some(10), "free list must recycle the block");
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let out = run_all_modes(
            "int main() {\n\
               int *a = (int*)malloc(16);\n\
               int *b = (int*)malloc(16);\n\
               for (int i = 0; i < 4; i = i + 1) { a[i] = 1; b[i] = 2; }\n\
               int s = 0;\n\
               for (int i = 0; i < 4; i = i + 1) s = s + a[i] * 10 + b[i];\n\
               return s;\n\
             }",
        );
        assert_eq!(out.exit_code, Some(48));
    }

    #[test]
    fn heap_overflow_detected_in_protected_modes() {
        let src = "int main() {\n\
            int *a = (int*)malloc(8 * sizeof(int));\n\
            int i = 9;\n\
            a[i] = 1;\n\
            return 0;\n\
          }";
        for (mode, expect_hw) in [
            (Mode::MallocOnly, true),
            (Mode::HardBound, true),
            (Mode::SoftBound, false),
        ] {
            let out = compile_and_run(src, mode, PointerEncoding::Intern4).unwrap();
            match (expect_hw, out.trap) {
                (true, Some(Trap::BoundsViolation { .. }))
                | (false, Some(Trap::SoftwareAbort { .. })) => {}
                (_, other) => panic!("{mode}: unexpected trap {other:?}"),
            }
        }
        let ot = compile_and_run(src, Mode::ObjectTable, PointerEncoding::Intern4).unwrap();
        assert!(
            matches!(ot.trap, Some(Trap::ObjectTableViolation { .. })),
            "allocation-granularity overflow is visible to the object table: {:?}",
            ot.trap
        );
    }

    #[test]
    fn use_after_free_unregisters_in_object_table_mode() {
        // Spatial-only schemes (HardBound included) do NOT catch
        // use-after-free (paper §6.2); the object table does, as a side
        // effect of unregistration, when the block is not yet recycled.
        let src = "int main() {\n\
            int *a = (int*)malloc(16);\n\
            free(a);\n\
            return a[0];\n\
          }";
        let ot = compile_and_run(src, Mode::ObjectTable, PointerEncoding::Intern4).unwrap();
        assert!(matches!(ot.trap, Some(Trap::ObjectTableViolation { .. })));
        let hb = compile_and_run(src, Mode::HardBound, PointerEncoding::Intern4).unwrap();
        assert_eq!(hb.trap, None, "HardBound is spatial-only (§6.2)");
    }

    #[test]
    fn string_functions() {
        let out = run_all_modes(
            "int main() {\n\
               char *buf = (char*)malloc(16);\n\
               strcpy(buf, \"hello\");\n\
               int n = strlen(buf);\n\
               int c = strcmp(buf, \"hello\");\n\
               int d = strcmp(buf, \"help\");\n\
               print_str(buf);\n\
               char *copy = (char*)malloc(16);\n\
               memcpy(copy, buf, n + 1);\n\
               memset(buf, 88, 3);\n\
               print_char(buf[0]);\n\
               return n * 100 + (c == 0) * 10 + (d < 0);\n\
             }",
        );
        assert_eq!(out.exit_code, Some(511));
        assert_eq!(out.output, "helloX");
    }

    #[test]
    fn strcpy_overflow_is_the_paper_intro_example() {
        // §2.2/§3.2: strcpy through a narrowed sub-object pointer.
        let src = "struct node { char str[5]; int x; };\n\
             int main() {\n\
               struct node n;\n\
               n.x = 42;\n\
               char *p = n.str;\n\
               strcpy(p, \"overflow\");\n\
               return n.x;\n\
             }";
        let hb = compile_and_run(src, Mode::HardBound, PointerEncoding::Intern4).unwrap();
        assert!(
            matches!(hb.trap, Some(Trap::BoundsViolation { .. })),
            "HardBound must detect the strcpy overflow inside strcpy: {:?}",
            hb.trap
        );
        let base = compile_and_run(src, Mode::Baseline, PointerEncoding::Intern4).unwrap();
        assert_eq!(base.trap, None);
        assert_ne!(
            base.exit_code,
            Some(42),
            "baseline silently corrupts node.x"
        );
    }

    #[test]
    fn fixed_point_arithmetic() {
        let out = run_all_modes(
            "int main() {\n\
               int a = fx_from_int(7);\n\
               int b = fx_from_int(2);\n\
               int m = fx_to_int(fx_mul(a, b));\n\
               int d = fx_to_int(fx_div(a, b) + 32768);\n\
               int s = fx_to_int(fx_sqrt(fx_from_int(16)));\n\
               int neg = fx_to_int(fx_abs(0 - a));\n\
               return m * 1000 + d * 100 + s * 10 + neg;\n\
             }",
        );
        // 7*2=14, round(7/2)=4 (3.5+0.5), sqrt(16)=4, |−7|=7.
        assert_eq!(out.exit_code, Some(14_000 + 400 + 40 + 7));
    }

    #[test]
    fn prng_is_deterministic_and_bounded() {
        let out = run_all_modes(
            "int main() {\n\
               rand_seed(42);\n\
               int ok = 1;\n\
               for (int i = 0; i < 100; i = i + 1) {\n\
                 int v = rand_range(10);\n\
                 if (v < 0) ok = 0;\n\
                 if (v >= 10) ok = 0;\n\
               }\n\
               rand_seed(42);\n\
               int a = rand_next();\n\
               rand_seed(42);\n\
               int b = rand_next();\n\
               return ok * 10 + (a == b);\n\
             }",
        );
        assert_eq!(out.exit_code, Some(11));
    }

    #[test]
    fn many_allocations_stress() {
        let out = run_all_modes(
            "struct cell { int v; struct cell *next; };\n\
             int main() {\n\
               struct cell *head = 0;\n\
               for (int i = 0; i < 200; i = i + 1) {\n\
                 struct cell *c = (struct cell*)malloc(sizeof(struct cell));\n\
                 c->v = i;\n\
                 c->next = head;\n\
                 head = c;\n\
               }\n\
               int s = 0;\n\
               while (head != 0) { s = s + head->v; head = head->next; }\n\
               return s == 19900;\n\
             }",
        );
        assert_eq!(out.exit_code, Some(1));
    }

    #[test]
    fn heap_layout_constants_match_isa_layout() {
        // The Cb runtime hard-codes the heap range; keep it in lock-step
        // with the ISA layout constants.
        assert!(RUNTIME_SOURCE.contains("0x1000000"));
        assert!(RUNTIME_SOURCE.contains("0x5000000"));
        assert_eq!(layout::HEAP_BASE, 0x0100_0000);
        assert_eq!(layout::HEAP_END, 0x0500_0000);
    }
}
