//! The Cb runtime library, provided as source and prepended to every
//! program (the paper instruments `malloc()` and related runtime-library
//! functions — §3.2 "Protecting heap-allocated objects").

/// Cb source of the runtime library.
///
/// * `malloc`/`free` — a first-fit free-list allocator over the simulated
///   heap. `malloc` communicates object extents to the protection scheme
///   through `__setbound` (which each compiler mode lowers appropriately);
///   its internal bookkeeping uses the `__unbound` escape hatch, exactly
///   the paper's "custom memory allocators … can write such code that is
///   still safe by calling the setbound instruction directly" (§3.2).
/// * string helpers (`strlen`, `strcpy`, `strcmp`, `memcpy`, `memset`,
///   `print_str`).
/// * 16.16 fixed-point arithmetic (`fx_*`) — substitute for the floating
///   point the integer-only ISA lacks (see DESIGN.md substitutions).
/// * `rand_seed`/`rand_next` — deterministic xorshift PRNG for workloads.
pub const RUNTIME_SOURCE: &str = r#"
// ---- allocator ---------------------------------------------------------
// Heap region: [0x1000000, 0x5000000) — see hardbound_isa::layout.

struct __hdr { int size; struct __hdr *next; };

int __heap_ready;
char *__heap_bump;
struct __hdr *__free_list;

void *malloc(int n) {
    if (n < 1) n = 1;
    int req = n;
    n = (n + 7) & (~7);
    if (!__heap_ready) {
        __heap_ready = 1;
        __heap_bump = __unbound((char*)0x1000000);
        __free_list = 0;
    }
    // First fit over the free list.
    struct __hdr *prev = 0;
    struct __hdr *cur = __free_list;
    while (cur != 0) {
        if (cur->size >= n) {
            if (prev == 0) { __free_list = cur->next; }
            else { prev->next = cur->next; }
            char *payload = (char*)cur + 8;
            return __setbound(payload, cur->size);
        }
        prev = cur;
        cur = cur->next;
    }
    // Bump allocation.
    char *block = __heap_bump;
    __heap_bump = __heap_bump + (n + 8);
    if ((int)__heap_bump >= 0x5000000) {
        print_int(-999);   // out of simulated heap
        halt(101);
    }
    struct __hdr *h = (struct __hdr*)block;
    h->size = n;
    h->next = 0;
    // Bound the pointer to the *requested* extent: tighter protection
    // than the rounded block size (per-allocation granularity, §3.2).
    return __setbound(block + 8, req);
}

void free(void *p) {
    if (p == 0) return;
    __freebound(p);
    struct __hdr *h = (struct __hdr*)__unbound((char*)p - 8);
    h->next = __free_list;
    __free_list = h;
}

// ---- strings -----------------------------------------------------------

int strlen(char *s) {
    int n = 0;
    while (s[n] != 0) n = n + 1;
    return n;
}

void strcpy(char *dst, char *src) {
    int i = 0;
    while (src[i] != 0) { dst[i] = src[i]; i = i + 1; }
    dst[i] = 0;
}

int strcmp(char *a, char *b) {
    int i = 0;
    while (a[i] != 0 && a[i] == b[i]) i = i + 1;
    return a[i] - b[i];
}

void memcpy(char *dst, char *src, int n) {
    for (int i = 0; i < n; i = i + 1) dst[i] = src[i];
}

void memset(char *dst, int value, int n) {
    for (int i = 0; i < n; i = i + 1) dst[i] = (char)value;
}

void print_str(char *s) {
    int i = 0;
    while (s[i] != 0) { print_char(s[i]); i = i + 1; }
}

// ---- 16.16 fixed point ---------------------------------------------------

int fx_from_int(int a) { return a << 16; }

int fx_to_int(int a) { return a >> 16; }

int fx_mul(int a, int b) {
    int hi = __mulh(a, b);
    int lo = a * b;
    return (hi << 16) | ((lo >> 16) & 0xFFFF);
}

int fx_div(int a, int b) {
    if (b == 0) return 0x7FFFFFFF;
    int neg = 0;
    if (a < 0) { a = 0 - a; neg = 1 - neg; }
    if (b < 0) { b = 0 - b; neg = 1 - neg; }
    // 48-bit-safe (a << 16) / b via integer quotient plus bitwise
    // refinement of the fractional part (the naive (r << 16) / b
    // overflows 32 bits whenever b > 2^15).
    int q = a / b;
    int r = a - q * b;
    int frac = 0;
    for (int i = 0; i < 16; i = i + 1) {
        r = r << 1;
        frac = frac << 1;
        if (r >= b) { r = r - b; frac = frac + 1; }
    }
    int result = (q << 16) + frac;
    if (neg) return 0 - result;
    return result;
}

int fx_abs(int a) { return a < 0 ? 0 - a : a; }

int fx_sqrt(int x) {
    if (x <= 0) return 0;
    int r = x;
    if (r < 65536) r = 65536;
    for (int i = 0; i < 24; i = i + 1) {
        r = (r + fx_div(x, r)) >> 1;
    }
    return r;
}

// ---- miscellaneous -------------------------------------------------------

int abs(int x) { return x < 0 ? 0 - x : x; }

int __rand_state = 88172645;

void rand_seed(int s) {
    if (s == 0) s = 88172645;
    __rand_state = s;
}

int rand_next() {
    int x = __rand_state;
    x = x ^ (x << 13);
    x = x ^ ((x >> 17) & 0x7FFF);
    x = x ^ (x << 5);
    __rand_state = x;
    return x & 0x7FFFFFFF;
}

int rand_range(int n) {
    if (n <= 0) return 0;
    return rand_next() % n;
}
"#;
