//! The object-lookup splay tree used by the JK/RL/DA comparison mode.
//!
//! Paper §2.2: "The object lookup table is typically implemented as a splay
//! tree in which objects are identified with their locations in memory."
//! This is that tree: keyed by object base address, splayed on every
//! lookup so repeated accesses to the same object are cheap, with an
//! interval query (`greatest base ≤ addr`, then a size check).
//!
//! Because the tree runs host-side (see `hardbound_core::ObjectTable`), it
//! reports a cycle cost per operation modelled on a compiled splay lookup:
//! a fixed dispatch cost plus a per-node traversal cost. The constants are
//! deliberately conservative; EXPERIMENTS.md discusses how this compares
//! with the published JK/RL/DA numbers (which additionally benefit from
//! whole-program check elision we do not model).

use hardbound_core::ObjectTable;

/// Fixed cycles per table operation (call, dispatch, leaf handling).
const COST_BASE: u64 = 10;
/// Cycles per node visited on the access path.
const COST_PER_NODE: u64 = 3;

#[derive(Clone, Debug)]
struct Node {
    base: u32,
    size: u32,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

/// A splay tree of `[base, base + size)` allocations.
#[derive(Clone, Debug, Default)]
pub struct SplayTable {
    root: Option<Box<Node>>,
    len: usize,
    /// Accumulated nodes visited (diagnostic).
    pub nodes_visited: u64,
}

impl SplayTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> SplayTable {
        SplayTable::default()
    }

    /// Number of registered objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Splays the node with the greatest `base <= key` (or the least node
    /// if none) to the root. Returns the number of nodes visited.
    ///
    /// Proper top-down splay (Sleator–Tarjan) with zig-zig rotations, so
    /// degenerate chains are path-halved and amortized costs stay
    /// logarithmic.
    fn splay_le(&mut self, key: u32) -> u64 {
        let Some(root) = self.root.take() else {
            return 0;
        };
        let mut visited = 1u64;

        let mut left_spine: Vec<Box<Node>> = Vec::new();
        let mut right_spine: Vec<Box<Node>> = Vec::new();
        let mut cur = root;
        loop {
            if key < cur.base {
                let Some(mut child) = cur.left.take() else {
                    break;
                };
                visited += 1;
                if key < child.base {
                    // Zig-zig: rotate right before linking.
                    cur.left = child.right.take();
                    child.right = Some(cur);
                    cur = child;
                    match cur.left.take() {
                        Some(n) => {
                            visited += 1;
                            child = n;
                        }
                        None => break,
                    }
                }
                right_spine.push(cur);
                cur = child;
            } else if key > cur.base {
                let Some(mut child) = cur.right.take() else {
                    break;
                };
                visited += 1;
                if key > child.base {
                    // Zig-zig: rotate left before linking.
                    cur.right = child.left.take();
                    child.left = Some(cur);
                    cur = child;
                    match cur.right.take() {
                        Some(n) => {
                            visited += 1;
                            child = n;
                        }
                        None => break,
                    }
                }
                left_spine.push(cur);
                cur = child;
            } else {
                break;
            }
        }
        // Reassemble: left spine nodes are all < cur, right spine all > cur.
        let mut left_tree: Option<Box<Node>> = cur.left.take();
        while let Some(mut n) = left_spine.pop() {
            n.right = left_tree;
            left_tree = Some(n);
        }
        let mut right_tree: Option<Box<Node>> = cur.right.take();
        while let Some(mut n) = right_spine.pop() {
            n.left = right_tree;
            right_tree = Some(n);
        }
        cur.left = left_tree;
        cur.right = right_tree;

        // If the root is greater than the key, the predecessor (if any) is
        // the maximum of the left subtree; rotate it up so the answer
        // lands at the root (keeping repeated interval stabs cheap).
        if cur.base > key {
            if let Some(l) = cur.left.take() {
                // Splay the left subtree's maximum to its root (re-using
                // the zig-zig loop via a scratch table so the walk also
                // path-halves), then hoist it above `cur`.
                let mut sub = SplayTable {
                    root: Some(l),
                    len: 0,
                    nodes_visited: 0,
                };
                visited += sub.splay_le(u32::MAX);
                let mut l = sub.root.take().expect("subtree nonempty");
                debug_assert!(l.right.is_none(), "max node has no right child");
                l.right = Some(cur);
                cur = l;
            }
        }
        self.root = Some(cur);
        self.nodes_visited += visited;
        visited
    }

    /// Inserts (or replaces) an object. Returns nodes visited.
    fn insert(&mut self, base: u32, size: u32) -> u64 {
        let visited = self.splay_le(base);
        match self.root.take() {
            None => {
                self.root = Some(Box::new(Node {
                    base,
                    size,
                    left: None,
                    right: None,
                }));
                self.len += 1;
                visited.max(1)
            }
            Some(mut r) => {
                if r.base == base {
                    r.size = size;
                    self.root = Some(r);
                    visited
                } else if r.base < base {
                    let right = r.right.take();
                    let node = Box::new(Node {
                        base,
                        size,
                        left: Some(r),
                        right,
                    });
                    self.root = Some(node);
                    self.len += 1;
                    visited
                } else {
                    // Root is the least node and still greater than `base`.
                    let node = Box::new(Node {
                        base,
                        size,
                        left: None,
                        right: Some(r),
                    });
                    self.root = Some(node);
                    self.len += 1;
                    visited
                }
            }
        }
    }

    /// Removes the object starting exactly at `base`. Returns nodes
    /// visited.
    fn remove(&mut self, base: u32) -> u64 {
        let visited = self.splay_le(base);
        if let Some(r) = self.root.take() {
            if r.base == base {
                self.len -= 1;
                let mut node = *r;
                match (node.left.take(), node.right.take()) {
                    (None, right) => self.root = right,
                    (Some(mut l), right) => {
                        // Splice: max of left subtree becomes root.
                        let mut stack = Vec::new();
                        while l.right.is_some() {
                            let next = l.right.take().expect("checked");
                            stack.push(l);
                            l = next;
                        }
                        while let Some(mut p) = stack.pop() {
                            p.right = l.left.take();
                            l.left = Some(p);
                        }
                        l.right = right;
                        self.root = Some(l);
                    }
                }
            } else {
                self.root = Some(r);
            }
        }
        visited
    }

    /// Bounds of the object covering `addr`, splaying it to the root.
    /// Returns `(nodes visited, Some((base, size)))` when covered.
    fn covering(&mut self, addr: u32) -> (u64, Option<(u32, u32)>) {
        let visited = self.splay_le(addr);
        let hit = self.root.as_ref().and_then(|r| {
            (r.base <= addr && addr < r.base.wrapping_add(r.size)).then_some((r.base, r.size))
        });
        (visited, hit)
    }
}

impl ObjectTable for SplayTable {
    fn register(&mut self, base: u32, size: u32) -> u64 {
        COST_BASE + COST_PER_NODE * self.insert(base, size)
    }

    fn unregister(&mut self, base: u32) -> u64 {
        COST_BASE + COST_PER_NODE * self.remove(base)
    }

    fn check(&mut self, from: u32, to: u32) -> (u64, bool) {
        let (visited, hit) = self.covering(from);
        let ok = hit.is_some_and(|(base, size)| {
            to >= base && u64::from(to) < u64::from(base) + u64::from(size)
        });
        (COST_BASE + COST_PER_NODE * visited, ok)
    }

    fn check_arith(&mut self, from: u32, to: u32) -> (u64, bool) {
        let (visited, hit) = self.covering(from);
        // One-past-the-end arithmetic is legal C; unknown pointers pass
        // (the scheme cannot judge what it never registered).
        let ok = match hit {
            Some((base, size)) => to >= base && u64::from(to) <= u64::from(base) + u64::from(size),
            None => true,
        };
        (COST_BASE + COST_PER_NODE * visited, ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_rejects_everything() {
        let mut t = SplayTable::new();
        assert!(t.is_empty());
        let (_, ok) = t.check(0x1000, 0x1000);
        assert!(!ok);
    }

    #[test]
    fn single_object_interval() {
        let mut t = SplayTable::new();
        t.register(0x1000, 64);
        assert_eq!(t.len(), 1);
        assert!(t.check(0x1000, 0x1000).1);
        assert!(t.check(0x103F, 0x103F).1);
        assert!(!t.check(0x1040, 0x1040).1);
        assert!(!t.check(0x0FFF, 0x0FFF).1);
    }

    #[test]
    fn multiple_objects_and_boundaries() {
        let mut t = SplayTable::new();
        t.register(0x1000, 16);
        t.register(0x2000, 32);
        t.register(0x0800, 8);
        assert!(t.check(0x0800, 0x0800).1);
        assert!(!t.check(0x0810, 0x0810).1);
        assert!(t.check(0x100F, 0x100F).1);
        assert!(!t.check(0x1010, 0x1010).1);
        assert!(t.check(0x201F, 0x201F).1);
        assert!(
            !t.check(0x1800, 0x1800).1,
            "gap between objects is uncovered"
        );
    }

    #[test]
    fn unregister_removes_coverage() {
        let mut t = SplayTable::new();
        t.register(0x1000, 16);
        t.register(0x2000, 16);
        t.unregister(0x1000);
        assert_eq!(t.len(), 1);
        assert!(!t.check(0x1008, 0x1008).1);
        assert!(t.check(0x2008, 0x2008).1);
        t.unregister(0x2000);
        assert!(t.is_empty());
    }

    #[test]
    fn reregistering_updates_size() {
        let mut t = SplayTable::new();
        t.register(0x1000, 8);
        t.register(0x1000, 64);
        assert_eq!(t.len(), 1);
        assert!(t.check(0x1030, 0x1030).1);
    }

    #[test]
    fn repeated_lookups_get_cheaper_by_splaying() {
        let mut t = SplayTable::new();
        // Insert an ascending chain (worst case for an unbalanced BST).
        for i in 0..64u32 {
            t.register(0x1000 + i * 0x100, 16);
        }
        // The first lookup may pay the full (amortized) restructuring
        // cost; repeats must converge to a shallow stab.
        let (first, ok) = t.check(0x1008, 0x1008);
        assert!(ok);
        let mut last = first;
        for _ in 0..4 {
            let (cost, ok) = t.check(0x1008, 0x1008);
            assert!(ok);
            last = cost;
        }
        assert!(
            last <= COST_BASE + 8 * COST_PER_NODE,
            "repeated stabs must become cheap: first {first}, settled {last}"
        );
        let (exact, ok3) = t.check(0x1000, 0x1000);
        assert!(ok3);
        let (exact2, _) = t.check(0x1000, 0x1000);
        assert!(exact2 <= exact, "exact-key repeats must not get slower");
    }

    #[test]
    fn costs_are_positive_and_bounded() {
        let mut t = SplayTable::new();
        for i in 0..1000u32 {
            let c = t.register(i * 64, 32);
            assert!(c >= COST_BASE);
        }
        // A cold lookup may pay a large one-off restructuring cost and
        // repeats converge geometrically (path halving); a settled repeat
        // must be near-constant.
        for _ in 0..12 {
            let _ = t.check(32 * 64 + 1, 32 * 64 + 1);
        }
        let (c, _) = t.check(32 * 64 + 1, 32 * 64 + 1);
        assert!(
            c < COST_BASE + COST_PER_NODE * 12,
            "warm cost {c} unexpectedly large"
        );
        // And the amortized bound holds over a sweep.
        let mut total = 0;
        for i in 0..1000u32 {
            total += t.check(i * 64 + 1, i * 64 + 1).0;
        }
        assert!(
            total < 1000 * (COST_BASE + COST_PER_NODE * 60),
            "amortized sweep cost {total} too large"
        );
    }
}
