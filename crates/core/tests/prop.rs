//! Property tests for the HardBound metadata primitives.

use hardbound_core::{
    intern4_compress, intern4_decompress, propagate_binop, Meta, PointerEncoding,
};
use hardbound_isa::BinOp;
use proptest::prelude::*;

fn arb_meta() -> impl Strategy<Value = Meta> {
    prop_oneof![
        Just(Meta::NONE),
        Just(Meta::UNCHECKED),
        Just(Meta::CODE),
        (0u32..0x0700_0000, 1u32..0x10000).prop_map(|(base, size)| Meta::object(base & !3, size)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// §4.3 invariant: whatever compresses must decompress to itself.
    #[test]
    fn intern4_roundtrip(base in 0u32..0x0400_0000u32, size_words in 1u32..=14) {
        let base = base & !3;
        let meta = Meta::object(base, size_words * 4);
        if let Some(word) = intern4_compress(base, meta) {
            let (value, got) = intern4_decompress(word).expect("compressed word has flag");
            prop_assert_eq!(value, base);
            prop_assert_eq!(got, meta);
        }
    }

    /// Pointers the predicate rejects never produce a compressed word, and
    /// pointers it accepts in the bit-eligible region always do.
    #[test]
    fn intern4_compress_agrees_with_predicate(value in 0u32..0x0400_0000, size in 0u32..128) {
        let value = value & !3;
        let meta = Meta::object(value, size);
        let predicate = PointerEncoding::Intern4.is_compressible(value, meta);
        let bit_level = intern4_compress(value, meta).is_some();
        // Below 64 MB the bit-level encoder and the predicate must agree.
        prop_assert_eq!(predicate, bit_level);
    }

    /// The compressibility predicate only ever accepts begin-of-object
    /// pointers with positive word-multiple sizes in range.
    #[test]
    fn compressibility_soundness(value in any::<u32>(), meta in arb_meta()) {
        for enc in PointerEncoding::ALL {
            if enc.is_compressible(value, meta) {
                prop_assert_eq!(meta.base, value);
                let size = meta.size();
                prop_assert!(size > 0);
                prop_assert_eq!(size % 4, 0);
                prop_assert!(size <= enc.max_compressed_size());
            }
        }
    }

    /// Figure 3's propagation algebra: the result is always one of the
    /// operands' metadata (or NONE), add/sub never invent bounds, and
    /// non-pointer ops always clear.
    #[test]
    fn propagation_closure(a in arb_meta(), b in arb_meta()) {
        for op in [BinOp::Add, BinOp::Sub] {
            let out = propagate_binop(op, a, Some(b));
            prop_assert!(out == a || out == b || out == Meta::NONE);
            if a.is_pointer() {
                prop_assert_eq!(out, a, "first pointer operand wins");
            } else {
                prop_assert_eq!(out, b);
            }
        }
        for op in [BinOp::Mul, BinOp::And, BinOp::Xor, BinOp::Shl] {
            prop_assert_eq!(propagate_binop(op, a, Some(b)), Meta::NONE);
        }
    }

    /// The span check is monotone: growing the access can only fail more.
    #[test]
    fn check_monotone_in_width(meta in arb_meta(), ea in any::<u32>(), w in 1u32..8) {
        if meta.check(ea, w + 1) {
            prop_assert!(meta.check(ea, w));
        }
    }
}
