use std::collections::HashMap;

use hardbound_cache::{AccessClass, Hierarchy};
use hardbound_isa::layout;
use hardbound_isa::{BinOp, FuncId, Inst, Operand, Program, Reg, SysCall, Width};
use hardbound_mem::{Memory, PageTouches};

use crate::config::{MachineConfig, MetaPath, SafetyMode};
use crate::forensics::{
    BoundsOrigin, FlightEvent, FlightRecorder, PageMetaSummary, ViolationReport, WindowLine,
};
use crate::meta::{propagate_binop, Meta};
use crate::objtable::ObjectTable;
use crate::stats::ExecStats;
use crate::trap::{Pc, Trap};

/// Simulator-internal tag-plane values (the architectural encodings they
/// correspond to are described in `crate::encoding`).
const TAG_NONE: u8 = 0;
const TAG_COMPRESSED: u8 = 1;
const TAG_UNCOMPRESSED: u8 = 2;

/// Saved caller state for the simulator-side return stack (see DESIGN.md:
/// the link register is abstracted; `sp`/`fp` save/restore is performed by
/// the calling sequence identically in every configuration).
#[derive(Clone, Copy, Debug)]
struct Frame {
    ret_func: FuncId,
    ret_pc: u32,
    saved_sp: u32,
    saved_sp_meta: Meta,
    saved_fp: u32,
    saved_fp_meta: Meta,
}

/// Result of a completed run.
///
/// `PartialEq` compares every observable field — exit code, trap (with
/// program counter), full [`ExecStats`], console output and the
/// `print_int` stream — so outcome equality *is* observational identity,
/// which the corpus-service result store and the differential suites rely
/// on.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Exit code if the program halted normally (via `sys halt` or
    /// returning from the entry function).
    pub exit_code: Option<i32>,
    /// The trap that stopped the program, if any.
    pub trap: Option<Trap>,
    /// Execution statistics (Figure 5 / Figure 6 inputs).
    pub stats: ExecStats,
    /// Console output produced by `print_*` syscalls.
    pub output: String,
    /// All values passed to `print_int`, for cheap checksum assertions.
    pub ints: Vec<i32>,
}

impl RunOutcome {
    /// `true` when the program halted normally with exit code 0.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.exit_code == Some(0) && self.trap.is_none()
    }
}

/// The HardBound machine: an in-order, one-µop-per-cycle 32-bit processor
/// with sidecar `{base, bound}` metadata on every register and memory word
/// (paper §3–4).
///
/// The HardBound extension is optional ([`MachineConfig::baseline`] models
/// the unmodified processor); when enabled, every load and store performs
/// the implicit bounds check of Figure 3, every memory operation consults
/// the tag metadata cache, and pointer metadata is compressed per the
/// configured [`crate::PointerEncoding`].
pub struct Machine {
    program: Program,
    cfg: MachineConfig,
    regs: [u32; Reg::COUNT],
    metas: [Meta; Reg::COUNT],
    mem: Memory,
    hier: Hierarchy,
    pages: PageTouches,
    func: FuncId,
    pc: u32,
    call_stack: Vec<Frame>,
    stats: ExecStats,
    output: String,
    ints: Vec<i32>,
    halted: Option<i32>,
    trap: Option<Trap>,
    objtable: Option<Box<dyn ObjectTable>>,
    globals_end: u32,
    /// L1/tag-cache block shift, cached from the hierarchy configuration.
    block_shift: u32,
    /// Right-shift mapping a data address to its tag-byte offset (5 for
    /// 1-bit tags, 3 for 4-bit tags); meaningless when HardBound is off.
    tag_down_shift: u32,
    /// Memo of the last data access's cache block (`u64::MAX` = none).
    /// Consecutive same-block data accesses are guaranteed TLB/L1 hits
    /// with a no-op LRU update, so they bypass the full hierarchy walk;
    /// shadow traffic shares those structures and invalidates the memo.
    last_data_block: u64,
    /// Same memo for the tag-metadata plane (tag TLB + tag cache are only
    /// ever touched by tag accesses, so no invalidation is needed).
    last_tag_block: u64,
    /// Direct-mapped memo of pages known `region_ok`
    /// (`entry[page & MASK] == page`; `u32::MAX` = empty). Region
    /// boundaries are all page-aligned, so one passing check whitelists
    /// the whole page for non-straddling accesses; several entries keep
    /// loops that alternate between a few regions (two arrays, the frame)
    /// from thrashing the memo.
    ok_pages: [u32; TAG_FREE_MEMO_SIZE],
    /// Metadata fast path ([`MetaPath`]), cached from the configuration.
    meta_path: MetaPath,
    /// Direct-mapped memo of pages known to hold no tagged words
    /// (`entry[page & MASK] == page`; `u32::MAX` = empty), valid only
    /// under [`MetaPath::Summary`]. Tags are created exclusively by
    /// pointer stores, which drop the stored page's entry; everything else
    /// can only clear tags, which keeps a tag-free page tag-free. A few
    /// entries matter: real loops alternate between a handful of pages
    /// (two arrays, the frame), and a single-entry memo thrashes.
    tag_free_pages: [u32; TAG_FREE_MEMO_SIZE],
    /// Bounds provenance: the site PC and monotonic allocation id of the
    /// most recent `setbound` that produced each `{base, bound}` pair.
    /// Forensics-only — never consulted on the execution path and
    /// invisible to [`RunOutcome`] equality.
    bounds_origins: HashMap<(u32, u32), (Pc, u64)>,
    /// Next provenance id to allocate.
    next_origin: u64,
    /// The `HB_FLIGHT` ring of recent memory events (`None` = off, the
    /// default: one discriminant test per access, nothing recorded).
    flight: Option<FlightRecorder>,
}

/// Entries in the machine's direct-mapped tag-free-page memo.
const TAG_FREE_MEMO_SIZE: usize = 64;

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("func", &self.func)
            .field("pc", &self.pc)
            .field("halted", &self.halted)
            .field("trap", &self.trap)
            .field("uops", &self.stats.uops)
            .finish()
    }
}

impl Machine {
    /// Creates a machine ready to execute `program` from its entry
    /// function.
    ///
    /// # Panics
    ///
    /// Panics if the program fails [`Program::validate`] — callers are
    /// expected to compile through `hardbound-compiler`, which always
    /// produces valid images.
    #[must_use]
    pub fn new(program: Program, cfg: MachineConfig) -> Machine {
        if let Err(e) = program.validate() {
            panic!("invalid program: {e}");
        }
        let mut mem = Memory::new();
        for init in &program.data {
            mem.write_bytes(init.addr, &init.bytes);
        }
        let globals_end = layout::GLOBALS_BASE
            + program
                .globals_size
                .next_multiple_of(layout::PAGE_SIZE as u32);
        let entry = program.entry;
        let mut m = Machine {
            hier: Hierarchy::with_path(cfg.hierarchy, cfg.hier_path),
            block_shift: cfg.hierarchy.block_bytes.trailing_zeros(),
            tag_down_shift: cfg
                .hardbound
                .map_or(5, |hb| (32 / hb.encoding.tag_bits()).trailing_zeros()),
            last_data_block: u64::MAX,
            last_tag_block: u64::MAX,
            ok_pages: [u32::MAX; TAG_FREE_MEMO_SIZE],
            meta_path: cfg.meta_path,
            tag_free_pages: [u32::MAX; TAG_FREE_MEMO_SIZE],
            cfg,
            program,
            regs: [0; Reg::COUNT],
            metas: [Meta::NONE; Reg::COUNT],
            mem,
            pages: PageTouches::new(),
            func: entry,
            pc: 0,
            call_stack: Vec::new(),
            stats: ExecStats::default(),
            output: String::new(),
            ints: Vec::new(),
            halted: None,
            trap: None,
            objtable: None,
            globals_end,
            bounds_origins: HashMap::new(),
            next_origin: 0,
            flight: None,
        };
        // Set up the entry function's frame directly (there is no caller).
        let entry_frame = m.program.functions[entry.0 as usize].frame_size;
        let sp = layout::STACK_TOP - entry_frame;
        let smeta = m.stack_reg_meta();
        m.set(Reg::SP, sp, smeta);
        m.set(Reg::FP, sp, smeta);
        let gmeta = if m.cfg.hardbound.is_some() {
            Meta {
                base: layout::GLOBALS_BASE,
                bound: m.globals_end,
            }
        } else {
            Meta::NONE
        };
        m.set(Reg::GP, layout::GLOBALS_BASE, gmeta);
        m
    }

    /// Installs the object-table hook used by the JK/RL/DA comparison mode.
    pub fn set_object_table(&mut self, table: Box<dyn ObjectTable>) {
        self.objtable = Some(table);
    }

    /// Whether the HardBound extension is active.
    #[must_use]
    pub fn hardbound_enabled(&self) -> bool {
        self.cfg.hardbound.is_some()
    }

    /// Runs until halt, trap, or fuel exhaustion.
    pub fn run(&mut self) -> RunOutcome {
        while self.halted.is_none() && self.trap.is_none() {
            if self.stats.uops >= self.cfg.fuel {
                self.trap = Some(Trap::OutOfFuel);
                break;
            }
            if let Err(t) = self.step() {
                self.trap = Some(t);
            }
        }
        self.finish_outcome()
    }

    /// Finalizes page/stall accounting and assembles the [`RunOutcome`] for
    /// the machine's current state. [`Machine::run`] ends with this; the
    /// block engine (`hardbound-exec`) drives the machine through
    /// [`ExecState`] and calls it directly.
    pub fn finish_outcome(&mut self) -> RunOutcome {
        self.finalize_stats();
        RunOutcome {
            exit_code: self.halted,
            trap: self.trap,
            stats: self.stats,
            output: self.output.clone(),
            ints: self.ints.clone(),
        }
    }

    /// The program image this machine executes.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The active machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The narrow state interface the block execution engine drives; see
    /// [`ExecState`].
    #[must_use]
    pub fn exec_state(&mut self) -> ExecState<'_> {
        ExecState { m: self }
    }

    /// Execution statistics so far (page counts are finalized by
    /// [`Machine::run`]).
    #[must_use]
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Aggregate residency-filter and sampling counters of the simulated
    /// hierarchy — machinery telemetry (`hb_hier_fastpath_*`), not part of
    /// any observational identity.
    #[must_use]
    pub fn hier_fast_stats(&self) -> hardbound_cache::HierFastStats {
        self.hier.fast_stats()
    }

    /// Console output so far.
    #[must_use]
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Enables the flight recorder: the machine keeps the last `depth`
    /// memory events for [`Machine::violation_report`]. Off by default
    /// (`HB_FLIGHT=N` turns it on via the runtime); recording touches no
    /// statistics, so outcomes are byte-identical either way.
    pub fn enable_flight(&mut self, depth: usize) {
        self.flight = Some(FlightRecorder::new(depth));
    }

    /// Records one `setbound`'s bounds provenance: `site` created `meta`'s
    /// `{base, bound}` pair, under the next monotonic provenance id.
    #[inline]
    fn record_setbound(&mut self, site: Pc, meta: Meta) {
        let id = self.next_origin;
        self.next_origin += 1;
        self.bounds_origins
            .insert((meta.base, meta.bound), (site, id));
    }

    /// Appends one memory event to the flight recorder, if enabled.
    #[inline]
    fn note_flight(&mut self, pc: Pc, addr: u32, width: u32, is_store: bool) {
        if let Some(fr) = self.flight.as_mut() {
            fr.record(FlightEvent {
                uop: self.stats.uops,
                pc,
                addr,
                width: width as u8,
                is_store,
            });
        }
    }

    /// Assembles the structured forensics report for a trapped machine:
    /// the trap, the out-of-bounds distance, the originating `setbound`
    /// site from the provenance table, the faulting page's tag/shadow
    /// summary counters, a disassembled code window, and the flight
    /// recorder's tail. `None` while the machine has not trapped.
    #[must_use]
    pub fn violation_report(&self) -> Option<ViolationReport> {
        let trap = self.trap?;
        let pc = trap.pc();
        let (addr, bounds) = match trap {
            Trap::BoundsViolation {
                addr, base, bound, ..
            } => (Some(addr), Some((base, bound))),
            Trap::NonPointerDereference { addr, .. }
            | Trap::WildAddress { addr, .. }
            | Trap::ObjectTableViolation { addr, .. } => (Some(addr), None),
            _ => (None, None),
        };
        let oob = match (addr, bounds) {
            (Some(a), Some((base, bound))) => Some(ViolationReport::distance(a, base, bound)),
            _ => None,
        };
        let origin = match bounds {
            Some((base, bound)) => {
                let meta = Meta { base, bound };
                if self.is_region_meta(meta) {
                    BoundsOrigin::Region
                } else if let Some(&(site, id)) = self.bounds_origins.get(&(base, bound)) {
                    BoundsOrigin::Setbound { site, id }
                } else {
                    BoundsOrigin::Unknown
                }
            }
            None => BoundsOrigin::Unknown,
        };
        let page = addr.map(|a| PageMetaSummary {
            page: a >> 12,
            tag_words: self.mem.page_tag_words(a),
            shadow_words: self.mem.page_shadow_words(a),
            uncompressed_words: self.mem.page_uncompressed_words(a),
        });
        let window = pc.map_or_else(Vec::new, |pc| {
            let insts = &self.program.functions[pc.func.0 as usize].insts;
            let lo = pc.index.saturating_sub(2);
            let hi = (pc.index + 3).min(insts.len() as u32);
            (lo..hi)
                .map(|i| WindowLine {
                    index: i,
                    text: insts[i as usize].to_string(),
                    is_fault: i == pc.index,
                })
                .collect()
        });
        let flight = self
            .flight
            .as_ref()
            .map_or_else(Vec::new, FlightRecorder::tail);
        Some(ViolationReport {
            trap,
            pc,
            addr,
            bounds,
            oob,
            origin,
            page,
            window,
            flight,
        })
    }

    /// Direct register read (for tests and the Figure 2 walkthrough).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Direct sidecar-metadata read (for tests).
    #[must_use]
    pub fn reg_meta(&self, r: Reg) -> Meta {
        self.metas[r.index()]
    }

    fn finalize_stats(&mut self) {
        self.stats.hierarchy = self.hier.stats();
        self.stats.data_pages = self.pages.data_pages();
        self.stats.tag_pages = self.pages.tag_pages();
        self.stats.shadow_pages = self.pages.shadow_pages();
    }

    #[inline]
    fn r(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    #[inline]
    fn m(&self, r: Reg) -> Meta {
        self.metas[r.index()]
    }

    #[inline]
    fn set(&mut self, r: Reg, value: u32, meta: Meta) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
            self.metas[r.index()] = meta;
        }
    }

    fn resolve(&self, op: Operand) -> (u32, Option<Meta>) {
        match op {
            Operand::Reg(r) => (self.r(r), Some(self.m(r))),
            Operand::Imm(i) => (i as u32, None),
        }
    }

    #[inline]
    fn region_ok(&mut self, ea: u32, width: u32) -> bool {
        // Every region boundary (globals end included — it is rounded to a
        // page multiple) is 4 KB-aligned, so a page either lies entirely in
        // a region or entirely outside all of them: one passing check
        // whitelists its whole page for accesses that do not straddle it.
        let in_page = (ea & 4095) + width <= 4096;
        let page = ea >> 12;
        if in_page && self.ok_pages[page as usize % TAG_FREE_MEMO_SIZE] == page {
            return true;
        }
        let ok = self.region_ok_slow(ea, width);
        if ok && in_page {
            self.ok_pages[page as usize % TAG_FREE_MEMO_SIZE] = page;
        }
        ok
    }

    fn region_ok_slow(&self, ea: u32, width: u32) -> bool {
        let start = u64::from(ea);
        let end = start + u64::from(width);
        let within = |lo: u32, hi: u32| start >= u64::from(lo) && end <= u64::from(hi);
        within(layout::GLOBALS_BASE, self.globals_end)
            || within(layout::HEAP_BASE, layout::HEAP_END)
            || within(layout::STACK_LIMIT, layout::STACK_TOP)
            || within(
                layout::SW_SHADOW_BASE,
                layout::sw_shadow_addr(layout::STACK_TOP),
            )
    }

    /// The implicit HardBound dereference check of Figure 3 C/D. Returns
    /// `Ok(())` when the access may proceed.
    #[inline]
    fn implicit_check(
        &mut self,
        fpc: Pc,
        ea: u32,
        width: u32,
        meta: Meta,
        is_store: bool,
    ) -> Result<(), Trap> {
        let Some(hb) = self.cfg.hardbound else {
            return Ok(());
        };
        if !meta.is_pointer() {
            return match hb.mode {
                // Full safety: Figure 3's non-pointer exception.
                SafetyMode::Full => Err(Trap::NonPointerDereference {
                    pc: fpc,
                    addr: ea,
                    is_store,
                }),
                // Malloc-only: unchecked when no metadata is present.
                SafetyMode::MallocOnly => Ok(()),
            };
        }
        self.stats.bounds_checks += 1;
        if hb.check_uop
            && !hb.encoding.is_compressible(meta.base, meta)
            && !self.is_region_meta(meta)
        {
            // §5.4 ablation: bounds checks of uncompressed pointers borrow
            // a shared ALU and cost one extra µop. Frame/global-direct
            // accesses check against constant region bounds held in
            // dedicated registers and are excluded (see DESIGN.md).
            self.stats.check_uops += 1;
            self.stats.uops += 1;
        }
        if meta.check(ea, width) {
            Ok(())
        } else {
            Err(Trap::BoundsViolation {
                pc: fpc,
                addr: ea,
                base: meta.base,
                bound: meta.bound,
                is_store,
            })
        }
    }

    #[inline]
    fn charge_data(&mut self, ea: u32) {
        let block = u64::from(ea) >> self.block_shift;
        if block == self.last_data_block {
            // Same block as the previous data access with nothing between
            // on the shared structures: guaranteed dTLB + L1 hits, zero
            // stall, no replacement-state change.
            self.hier.note_data_repeat();
            return;
        }
        self.last_data_block = block;
        self.pages.touch_data(ea);
        self.hier.access(AccessClass::Data, u64::from(ea));
    }

    /// The metadata fast path's skip predicate: whether the access at
    /// `[ea, ea + width)` touches a page known to hold no tagged words, so
    /// the tag walk and the `Tag` hierarchy charge can be skipped. Accesses
    /// that straddle a page boundary take the full path. Under
    /// [`MetaPath::Summary`] the answer comes from the per-page counters
    /// (memoized per page); under [`MetaPath::Walk`] it is recomputed by
    /// walking the page's tag plane — same decision, proven identical by
    /// the identity suites; under [`MetaPath::Charge`] it is always
    /// `false`.
    #[inline]
    fn tag_free_page(&mut self, ea: u32, width: u32) -> bool {
        if (ea & 4095) + width > 4096 {
            return false;
        }
        match self.meta_path {
            MetaPath::Charge => false,
            MetaPath::Walk => self.mem.page_tag_free_walk(ea),
            MetaPath::Summary => {
                let page = ea >> 12;
                if self.tag_free_pages[page as usize % TAG_FREE_MEMO_SIZE] == page {
                    return true;
                }
                let free = self.mem.page_tag_free(ea);
                if free {
                    self.tag_free_pages[page as usize % TAG_FREE_MEMO_SIZE] = page;
                }
                free
            }
        }
    }

    /// Charges one data access and its tag-metadata access in a single
    /// fused walk — statistics and replacement state evolve exactly as the
    /// separate data and tag charges always have (the memos resolve first,
    /// and a double miss takes [`Hierarchy::access_pair`]).
    #[inline]
    fn charge_data_and_tag(&mut self, ea: u32) {
        debug_assert!(
            self.cfg.hardbound.is_some(),
            "tag traffic only with HardBound"
        );
        let tag_addr = layout::HW_TAG_BASE + u64::from(ea >> self.tag_down_shift);
        debug_assert_eq!(
            tag_addr,
            layout::hw_tag_addr(ea, self.cfg.hardbound.expect("checked").encoding.tag_bits())
        );
        let data_block = u64::from(ea) >> self.block_shift;
        let tag_block = tag_addr >> self.block_shift;
        let data_repeat = data_block == self.last_data_block;
        let tag_repeat = tag_block == self.last_tag_block;
        if data_repeat {
            self.hier.note_data_repeat();
        } else {
            self.last_data_block = data_block;
            self.pages.touch_data(ea);
        }
        if tag_repeat {
            if !data_repeat {
                self.hier.access(AccessClass::Data, u64::from(ea));
            }
            self.hier.note_tag_repeat();
            return;
        }
        self.last_tag_block = tag_block;
        self.pages.touch_tag(tag_addr);
        if data_repeat {
            self.hier.access(AccessClass::Tag, tag_addr);
        } else {
            self.hier.access_pair(u64::from(ea), tag_addr);
        }
    }

    /// The shadow fast path's skip predicate: whether the data page
    /// containing `ea` is *compressed-only* — no word tagged as an
    /// uncompressed pointer — so its shadow `{base, bound}` plane holds
    /// nothing the machine would ever read and the `Shadow` hierarchy
    /// charge can be elided. Dispatched by [`MetaPath`] exactly like
    /// [`Machine::tag_free_page`] (Summary: the maintained per-page
    /// counter; Walk: recomputed from the tag plane; Charge: never skip),
    /// so the Summary ≡ Walk identity suites cover the bookkeeping.
    #[inline]
    fn shadow_free_page(&self, ea: u32) -> bool {
        match self.meta_path {
            MetaPath::Charge => false,
            MetaPath::Walk => self.mem.page_uncompressed_free_walk(ea),
            MetaPath::Summary => self.mem.page_uncompressed_free(ea),
        }
    }

    fn charge_shadow(&mut self, ea: u32) {
        if self.shadow_free_page(ea) {
            // Compressed-only page: eliding the charge is exact because a
            // shadow plane with no uncompressed words is never consulted.
            // Every *current* call site observes or writes an uncompressed
            // tag on the page immediately before charging, so today this
            // gate is an invariant safety valve rather than a live fast
            // path — the debug_assert documents that, and the identity
            // suites would catch any call site that changes it.
            debug_assert!(false, "charge_shadow reached a compressed-only page");
            return;
        }
        // Shadow traffic shares the dTLB and L1 with ordinary data, so the
        // data-repeat memo no longer proves anything.
        self.last_data_block = u64::MAX;
        let addr = layout::hw_shadow_addr(ea);
        self.pages.touch_shadow(addr);
        self.hier.access(AccessClass::Shadow, addr);
        // "Any load or store of an uncompressed bounded pointer creates an
        // additional micro-operation to access the bounds metadata" (§5.1).
        self.stats.meta_uops += 1;
        self.stats.uops += 1;
    }

    fn exec_load(
        &mut self,
        fpc: Pc,
        width: Width,
        rd: Reg,
        addr: Reg,
        offset: i32,
    ) -> Result<(), Trap> {
        if self.cfg.hardbound.is_some() {
            self.exec_load_g::<true>(fpc, width, rd, addr, offset)
        } else {
            self.exec_load_g::<false>(fpc, width, rd, addr, offset)
        }
    }

    /// Load semantics, monomorphized over "is the HardBound extension
    /// active". The interpreter dispatches on the configuration each step;
    /// the block engine resolves `HB` once at decode time and calls the
    /// right instantiation directly (paper §4.4's µop-insertion pipeline,
    /// applied per static instruction).
    fn exec_load_g<const HB: bool>(
        &mut self,
        fpc: Pc,
        width: Width,
        rd: Reg,
        addr: Reg,
        offset: i32,
    ) -> Result<(), Trap> {
        debug_assert_eq!(HB, self.cfg.hardbound.is_some());
        let ea = self.r(addr).wrapping_add(offset as u32);
        if self.flight.is_some() {
            self.note_flight(fpc, ea, width.bytes(), false);
        }
        if HB {
            let ameta = self.m(addr);
            self.implicit_check(fpc, ea, width.bytes(), ameta, false)?;
        }
        if !self.region_ok(ea, width.bytes()) {
            return Err(Trap::WildAddress {
                pc: fpc,
                addr: ea,
                is_store: false,
            });
        }
        self.load_body::<HB>(ea, width, rd);
        Ok(())
    }

    /// Everything a load does *after* its checks pass: hierarchy charges,
    /// tag/shadow traffic, the memory read and the register write. Shared
    /// verbatim between the checked path ([`Machine::exec_load_g`]) and the
    /// optimizer's check-elided path, so the two cannot drift.
    fn load_body<const HB: bool>(&mut self, ea: u32, width: Width, rd: Reg) {
        self.stats.loads += 1;
        // "This tag metadata is needed by every memory operation" (§4.2) —
        // unless the page summary proves there is none to find, in which
        // case the whole tag walk and charge are skipped.
        let skip_tag = HB && self.tag_free_page(ea, width.bytes());
        if HB && !skip_tag {
            self.charge_data_and_tag(ea);
        } else {
            self.charge_data(ea);
        }
        match width {
            Width::Byte => {
                let v = self.mem.read_u8(ea);
                self.set(rd, u32::from(v), Meta::NONE);
            }
            Width::Word => {
                if HB && !skip_tag && ea.is_multiple_of(4) {
                    let (raw, tag, shadow) = self.mem.read_word_full(ea);
                    let mut meta = Meta::NONE;
                    match tag {
                        TAG_NONE => {}
                        TAG_COMPRESSED => {
                            // Metadata travels inside the word/tag — no
                            // extra traffic (paper §4.3).
                            meta = shadow.into();
                            self.stats.ptr_loads += 1;
                            self.stats.compressed_ptr_loads += 1;
                        }
                        TAG_UNCOMPRESSED => {
                            self.charge_shadow(ea);
                            meta = shadow.into();
                            self.stats.ptr_loads += 1;
                        }
                        t => unreachable!("corrupt tag {t}"),
                    }
                    self.set(rd, raw, meta);
                } else {
                    // Baseline load, unaligned load, or a tag-free page —
                    // where the word's tag is zero by the summary
                    // invariant, so the metadata planes need not be
                    // consulted at all.
                    debug_assert!(!skip_tag || self.mem.tag(ea) == 0);
                    let raw = self.mem.read_u32(ea);
                    self.set(rd, raw, Meta::NONE);
                }
            }
        }
    }

    fn exec_store(
        &mut self,
        fpc: Pc,
        width: Width,
        src: Reg,
        addr: Reg,
        offset: i32,
    ) -> Result<(), Trap> {
        if self.cfg.hardbound.is_some() {
            self.exec_store_g::<true>(fpc, width, src, addr, offset)
        } else {
            self.exec_store_g::<false>(fpc, width, src, addr, offset)
        }
    }

    /// Store semantics, monomorphized like [`Machine::exec_load_g`].
    fn exec_store_g<const HB: bool>(
        &mut self,
        fpc: Pc,
        width: Width,
        src: Reg,
        addr: Reg,
        offset: i32,
    ) -> Result<(), Trap> {
        debug_assert_eq!(HB, self.cfg.hardbound.is_some());
        let ea = self.r(addr).wrapping_add(offset as u32);
        if self.flight.is_some() {
            self.note_flight(fpc, ea, width.bytes(), true);
        }
        if HB {
            let ameta = self.m(addr);
            self.implicit_check(fpc, ea, width.bytes(), ameta, true)?;
        }
        if !self.region_ok(ea, width.bytes()) {
            return Err(Trap::WildAddress {
                pc: fpc,
                addr: ea,
                is_store: true,
            });
        }
        self.store_body::<HB>(ea, width, src);
        Ok(())
    }

    /// Everything a store does *after* its checks pass (dual of
    /// [`Machine::load_body`]).
    fn store_body<const HB: bool>(&mut self, ea: u32, width: Width, src: Reg) {
        self.stats.stores += 1;
        // A store writes a tag exactly when it spills a pointer word; every
        // other store only *clears* tags — a no-op on a page the summary
        // proves tag-free, so both the clear and the tag charge are
        // skipped. The decision is made before the write mutates the page.
        let tagging =
            HB && width == Width::Word && ea.is_multiple_of(4) && self.m(src).is_pointer();
        let skip_tag = HB && !tagging && self.tag_free_page(ea, width.bytes());
        if HB && !skip_tag {
            self.charge_data_and_tag(ea);
        } else {
            self.charge_data(ea);
        }
        let value = self.r(src);
        match width {
            Width::Byte => {
                self.mem.write_u8(ea, value as u8);
                if HB && !skip_tag {
                    // A sub-word store destroys the containing word's
                    // pointer-ness (conservative, as real hardware must).
                    self.mem.set_tag(ea, TAG_NONE);
                }
            }
            Width::Word => {
                if HB {
                    if ea.is_multiple_of(4) {
                        let meta = self.m(src);
                        if meta.is_pointer() {
                            // The page gains a tag: the tag-free memo can
                            // no longer vouch for it.
                            self.tag_free_pages[(ea >> 12) as usize % TAG_FREE_MEMO_SIZE] =
                                u32::MAX;
                            self.stats.ptr_stores += 1;
                            let hb = self.cfg.hardbound.expect("checked above");
                            if hb.encoding.is_compressible(value, meta) {
                                self.stats.compressed_ptr_stores += 1;
                                self.mem.write_word_pointer(
                                    ea,
                                    value,
                                    TAG_COMPRESSED,
                                    (meta.base, meta.bound),
                                );
                            } else {
                                self.mem.write_word_pointer(
                                    ea,
                                    value,
                                    TAG_UNCOMPRESSED,
                                    (meta.base, meta.bound),
                                );
                                self.charge_shadow(ea);
                            }
                        } else if skip_tag {
                            // Tag-free page: the word's tag is already
                            // zero; plain data write, no metadata touch.
                            debug_assert_eq!(self.mem.tag(ea), 0);
                            self.mem.write_u32(ea, value);
                        } else {
                            self.mem.write_word_tagged(ea, value, TAG_NONE);
                        }
                    } else {
                        // Unaligned word store: clear both containing words.
                        self.mem.write_u32(ea, value);
                        if !skip_tag {
                            self.mem.set_tag(ea, TAG_NONE);
                            self.mem.set_tag(ea.wrapping_add(3), TAG_NONE);
                        }
                    }
                } else {
                    self.mem.write_u32(ea, value);
                }
            }
        }
    }

    /// Replays exactly the statistics [`Machine::implicit_check`] would
    /// have charged for a check the optimizer elided: the check itself is
    /// proven redundant, but the paper's accounting (one bounds check per
    /// pointer-mediated access, plus the §5.4 check-µop ablation) must stay
    /// byte-identical to the unoptimized machine.
    #[inline]
    fn elided_check_stats(&mut self, meta: Meta) {
        let Some(hb) = self.cfg.hardbound else {
            return;
        };
        if !meta.is_pointer() {
            // MallocOnly pass-through: the original check charged nothing.
            return;
        }
        self.stats.bounds_checks += 1;
        if hb.check_uop
            && !hb.encoding.is_compressible(meta.base, meta)
            && !self.is_region_meta(meta)
        {
            self.stats.check_uops += 1;
            self.stats.uops += 1;
        }
    }

    /// `HB_OPT_AUDIT`: re-derives the decision of the elided implicit check
    /// and region probe without touching stats or memos, and panics if the
    /// unoptimized machine would have trapped here — an elided check is a
    /// *proof*, so any divergence is an optimizer bug, not a program bug.
    fn audit_elided(&self, fpc: Pc, ea: u32, width: u32, meta: Meta, is_store: bool) {
        if let Some(hb) = self.cfg.hardbound {
            if !meta.is_pointer() {
                assert!(
                    hb.mode != SafetyMode::Full,
                    "HB_OPT_AUDIT divergence: elided check at {fpc:?} (ea={ea:#x}, width={width}, \
                     is_store={is_store}) would have trapped NonPointerDereference"
                );
            } else {
                assert!(
                    meta.check(ea, width),
                    "HB_OPT_AUDIT divergence: elided check at {fpc:?} (ea={ea:#x}, width={width}, \
                     base={:#x}, bound={:#x}, is_store={is_store}) would have trapped \
                     BoundsViolation",
                    meta.base,
                    meta.bound
                );
            }
        }
        assert!(
            self.region_ok_slow(ea, width),
            "HB_OPT_AUDIT divergence: elided region probe at {fpc:?} (ea={ea:#x}, width={width}, \
             is_store={is_store}) would have trapped WildAddress"
        );
    }

    /// HardBound load whose implicit check and region probe were statically
    /// elided: replays the check's statistics (unless the caller batches
    /// them — see [`Machine::elided_stats_static`]), optionally audits the
    /// elision, then runs the ordinary post-check load body.
    #[inline]
    fn exec_load_hb_elided(
        &mut self,
        fpc: Pc,
        width: Width,
        rd: Reg,
        addr: Reg,
        offset: i32,
        audit: bool,
        stats: bool,
    ) {
        let ea = self.r(addr).wrapping_add(offset as u32);
        if self.flight.is_some() {
            self.note_flight(fpc, ea, width.bytes(), false);
        }
        let meta = self.m(addr);
        if audit {
            self.audit_elided(fpc, ea, width.bytes(), meta, false);
        }
        if stats {
            self.elided_check_stats(meta);
        }
        self.load_body::<true>(ea, width, rd);
    }

    /// Check-elided HardBound store (dual of
    /// [`Machine::exec_load_hb_elided`]).
    #[inline]
    fn exec_store_hb_elided(
        &mut self,
        fpc: Pc,
        width: Width,
        src: Reg,
        addr: Reg,
        offset: i32,
        audit: bool,
        stats: bool,
    ) {
        let ea = self.r(addr).wrapping_add(offset as u32);
        if self.flight.is_some() {
            self.note_flight(fpc, ea, width.bytes(), true);
        }
        let meta = self.m(addr);
        if audit {
            self.audit_elided(fpc, ea, width.bytes(), meta, true);
        }
        if stats {
            self.elided_check_stats(meta);
        }
        self.store_body::<true>(ea, width, src);
    }

    /// Whether an elided access's replayed statistics are a *static*
    /// constant — exactly one `bounds_checks` bump, nothing else — so a
    /// dispatcher may skip the per-access replay and add the count of a
    /// whole run of elided µops at once ([`ExecState::bump_elided_checks`]).
    ///
    /// True only under full-safety HardBound without the §5.4 check-µop
    /// ablation: in `Full` mode every elided access provably dereferences a
    /// pointer (its dominating check or guard passed, and a non-pointer
    /// would have trapped there), and with `check_uop` off the replay's
    /// only effect is the `bounds_checks` increment. `MallocOnly` elisions
    /// may cover non-pointer accesses (which charge nothing), and
    /// `check_uop` accounting depends on each access's metadata, so both
    /// fall back to the per-access replay.
    #[inline]
    #[must_use]
    pub fn elided_stats_static(&self) -> bool {
        self.cfg
            .hardbound
            .is_some_and(|hb| hb.mode == SafetyMode::Full && !hb.check_uop)
    }

    /// The optimizer's widened range check: whether `addr` currently holds
    /// a genuine pointer whose bounds (and the machine's address regions)
    /// admit the whole window `[r(addr)+lo_off, r(addr)+lo_off+span)`.
    /// Charges nothing — a guard is pure speculation-control; failing it
    /// merely re-runs the original, fully-checked µops.
    #[inline]
    fn guard_ok(&mut self, addr: Reg, lo_off: i32, span: u32) -> bool {
        let ea = self.r(addr).wrapping_add(lo_off as u32);
        let meta = self.m(addr);
        meta.is_pointer() && meta.check(ea, span) && self.region_ok(ea, span)
    }

    /// Performs the calling sequence: saves the caller's `sp`/`fp`, carves
    /// the callee's frame out of the stack and points `fp` at it. With
    /// HardBound enabled, `sp` and `fp` carry whole-stack bounds — the
    /// compiler narrows pointers to individual stack objects with
    /// `setbound` (paper §3.2); compiler-generated frame-slot accesses are
    /// statically safe and check against the stack region only.
    fn do_call(&mut self, callee: FuncId) -> Result<(), Trap> {
        if self.call_stack.len() >= self.cfg.max_call_depth {
            return Err(Trap::CallDepthExceeded);
        }
        self.call_stack.push(Frame {
            ret_func: self.func,
            ret_pc: self.pc,
            saved_sp: self.r(Reg::SP),
            saved_sp_meta: self.m(Reg::SP),
            saved_fp: self.r(Reg::FP),
            saved_fp_meta: self.m(Reg::FP),
        });
        let frame_size = self.program.functions[callee.0 as usize].frame_size;
        let new_sp = self.r(Reg::SP).wrapping_sub(frame_size);
        if !(layout::STACK_LIMIT..=layout::STACK_TOP).contains(&new_sp) {
            return Err(Trap::StackOverflow);
        }
        let meta = self.stack_reg_meta();
        self.set(Reg::SP, new_sp, meta);
        self.set(Reg::FP, new_sp, meta);
        self.func = callee;
        self.pc = 0;
        Ok(())
    }

    /// Whether `meta` is one of the machine-provided region bounds (whole
    /// stack / whole globals) rather than a software-created pointer.
    fn is_region_meta(&self, meta: Meta) -> bool {
        meta == Meta {
            base: layout::STACK_LIMIT,
            bound: layout::STACK_TOP,
        } || meta
            == Meta {
                base: layout::GLOBALS_BASE,
                bound: self.globals_end,
            }
    }

    fn stack_reg_meta(&self) -> Meta {
        if self.cfg.hardbound.is_some() {
            Meta {
                base: layout::STACK_LIMIT,
                bound: layout::STACK_TOP,
            }
        } else {
            Meta::NONE
        }
    }

    fn do_ret(&mut self) {
        match self.call_stack.pop() {
            Some(frame) => {
                self.set(Reg::SP, frame.saved_sp, frame.saved_sp_meta);
                self.set(Reg::FP, frame.saved_fp, frame.saved_fp_meta);
                self.func = frame.ret_func;
                self.pc = frame.ret_pc;
            }
            None => {
                // Returning from the entry function exits the program.
                self.halted = Some(self.r(Reg::A0) as i32);
            }
        }
    }

    fn exec_sys(&mut self, fpc: Pc, call: SysCall) -> Result<(), Trap> {
        use std::fmt::Write as _;
        match call {
            SysCall::PrintInt => {
                let v = self.r(Reg::A0) as i32;
                self.ints.push(v);
                let _ = writeln!(self.output, "{v}");
            }
            SysCall::PrintChar => {
                self.output.push(self.r(Reg::A0) as u8 as char);
            }
            SysCall::Halt => {
                self.halted = Some(self.r(Reg::A0) as i32);
            }
            SysCall::Abort => {
                return Err(Trap::SoftwareAbort {
                    code: self.r(Reg::A0) as i32,
                });
            }
            SysCall::OtRegister => {
                let (base, size) = (self.r(Reg::A0), self.r(Reg::A1));
                if let Some(t) = self.objtable.as_mut() {
                    self.stats.objtable_cycles += t.register(base, size);
                }
            }
            SysCall::OtUnregister => {
                let base = self.r(Reg::A0);
                if let Some(t) = self.objtable.as_mut() {
                    self.stats.objtable_cycles += t.unregister(base);
                }
            }
            SysCall::OtCheck => {
                let (from, to) = (self.r(Reg::A0), self.r(Reg::A1));
                if let Some(t) = self.objtable.as_mut() {
                    let (cost, ok) = t.check(from, to);
                    self.stats.objtable_cycles += cost;
                    if !ok {
                        return Err(Trap::ObjectTableViolation { pc: fpc, addr: to });
                    }
                }
            }
            SysCall::OtCheckArith => {
                let (from, to) = (self.r(Reg::A0), self.r(Reg::A1));
                if let Some(t) = self.objtable.as_mut() {
                    let (cost, ok) = t.check_arith(from, to);
                    self.stats.objtable_cycles += cost;
                    if !ok {
                        return Err(Trap::ObjectTableViolation { pc: fpc, addr: to });
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] raised by the instruction, if any.
    pub fn step(&mut self) -> Result<(), Trap> {
        let f = &self.program.functions[self.func.0 as usize];
        debug_assert!(
            (self.pc as usize) < f.insts.len(),
            "validated programs never run off"
        );
        let inst = f.insts[self.pc as usize];
        let fpc = Pc {
            func: self.func,
            index: self.pc,
        };
        // Pre-advance; branches, calls and returns overwrite.
        self.pc += 1;
        self.stats.uops += 1;

        match inst {
            Inst::Li { rd, imm } => self.set(rd, imm, Meta::NONE),
            Inst::Mov { rd, rs } => self.set(rd, self.r(rs), self.m(rs)),
            Inst::Bin { op, rd, rs1, rs2 } => {
                let a = self.r(rs1);
                let am = self.m(rs1);
                let (b, bm) = self.resolve(rs2);
                let value = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
                    BinOp::Div => {
                        if b == 0 {
                            return Err(Trap::DivideByZero { pc: fpc });
                        }
                        (a as i32).wrapping_div(b as i32) as u32
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(Trap::DivideByZero { pc: fpc });
                        }
                        (a as i32).wrapping_rem(b as i32) as u32
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b),
                    BinOp::Shr => a.wrapping_shr(b),
                    BinOp::Sra => ((a as i32).wrapping_shr(b)) as u32,
                };
                self.set(rd, value, propagate_binop(op, am, bm));
            }
            Inst::Cmp { op, rd, rs1, rs2 } => {
                let a = self.r(rs1);
                let (b, _) = self.resolve(rs2);
                self.set(rd, u32::from(op.eval(a, b)), Meta::NONE);
            }
            Inst::Load {
                width,
                rd,
                addr,
                offset,
            } => {
                self.exec_load(fpc, width, rd, addr, offset)?;
            }
            Inst::Store {
                width,
                src,
                addr,
                offset,
            } => {
                self.exec_store(fpc, width, src, addr, offset)?;
            }
            Inst::SetBound { rd, rs, size } => {
                self.stats.setbound_uops += 1;
                let value = self.r(rs);
                let (size, _) = self.resolve(size);
                let meta = Meta::object(value, size);
                self.record_setbound(fpc, meta);
                self.set(rd, value, meta);
            }
            Inst::Unbound { rd, rs } => {
                // Counted with setbound: both are bounds-manipulation µops
                // present only in instrumented binaries.
                self.stats.setbound_uops += 1;
                self.set(rd, self.r(rs), Meta::UNCHECKED);
            }
            Inst::CodePtr { rd, func } => {
                let meta = if self.cfg.hardbound.is_some() {
                    Meta::CODE
                } else {
                    Meta::NONE
                };
                self.set(rd, func.code_addr(), meta);
            }
            Inst::ReadBase { rd, rs } => {
                let base = self.m(rs).base;
                self.set(rd, base, Meta::NONE);
            }
            Inst::ReadBound { rd, rs } => {
                let bound = self.m(rs).bound;
                self.set(rd, bound, Meta::NONE);
            }
            Inst::Branch {
                op,
                rs1,
                rs2,
                target,
            } => {
                let a = self.r(rs1);
                let (b, _) = self.resolve(rs2);
                if op.eval(a, b) {
                    self.pc = target;
                }
            }
            Inst::Jump { target } => self.pc = target,
            Inst::Call { func } => self.do_call(func)?,
            Inst::CallInd { rs } => {
                let value = self.r(rs);
                let meta = self.m(rs);
                if self.cfg.hardbound.is_some() && !meta.is_code() {
                    // §6.1: only genuine code pointers are callable. In
                    // malloc-only mode legacy binaries carry no metadata,
                    // so non-pointers are allowed through.
                    let malloc_only =
                        self.cfg.hardbound.map(|h| h.mode) == Some(SafetyMode::MallocOnly);
                    if !malloc_only || meta.is_pointer() {
                        return Err(Trap::InvalidCallTarget { pc: fpc, value });
                    }
                }
                let Some(idx) = layout::func_index_of_code_addr(value) else {
                    return Err(Trap::InvalidCallTarget { pc: fpc, value });
                };
                if idx as usize >= self.program.functions.len() {
                    return Err(Trap::InvalidCallTarget { pc: fpc, value });
                }
                self.do_call(FuncId(idx))?;
            }
            Inst::Ret => self.do_ret(),
            Inst::Sys { call } => self.exec_sys(fpc, call)?,
            Inst::Nop => {}
        }
        Ok(())
    }
}

/// The narrow mutable interface the basic-block execution engine
/// (`hardbound-exec`) drives.
///
/// The engine owns instruction *dispatch* (pre-decoded µop blocks); the
/// machine keeps sole ownership of *semantics* — register/metadata state,
/// the memory planes, the cache hierarchy, statistics, and trap plumbing.
/// Everything here delegates to exactly the code [`Machine::step`] runs, so
/// the two execution paths cannot drift: the engine-vs-interpreter
/// differential suite holds them observationally identical (output, traps,
/// and every [`ExecStats`](crate::ExecStats) counter).
pub struct ExecState<'m> {
    m: &'m mut Machine,
}

impl ExecState<'_> {
    /// Register value.
    #[inline]
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.m.regs[r.index()]
    }

    /// Register sidecar metadata.
    #[inline]
    #[must_use]
    pub fn reg_meta(&self, r: Reg) -> Meta {
        self.m.metas[r.index()]
    }

    /// Writes a register and its sidecar metadata (writes to `zero` are
    /// discarded, as in the interpreter).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u32, meta: Meta) {
        self.m.set(r, value, meta);
    }

    /// Current control-flow position.
    #[inline]
    #[must_use]
    pub fn pc(&self) -> (FuncId, u32) {
        (self.m.func, self.m.pc)
    }

    /// Moves control to `pc` within `func`. The engine uses this to commit
    /// block-local control flow and to position the machine before a
    /// [`Machine::step`] fallback.
    #[inline]
    pub fn set_pc(&mut self, func: FuncId, pc: u32) {
        self.m.func = func;
        self.m.pc = pc;
    }

    /// Exit code if the machine has halted.
    #[inline]
    #[must_use]
    pub fn halted(&self) -> Option<i32> {
        self.m.halted
    }

    /// The pending trap, if any.
    #[inline]
    #[must_use]
    pub fn trap(&self) -> Option<Trap> {
        self.m.trap
    }

    /// Records a trap, stopping the run (mirrors [`Machine::run`]'s
    /// handling of a `step` error).
    #[inline]
    pub fn set_trap(&mut self, trap: Trap) {
        self.m.trap = Some(trap);
    }

    /// µops retired so far (the fuel meter reading).
    #[inline]
    #[must_use]
    pub fn uops(&self) -> u64 {
        self.m.stats.uops
    }

    /// The configured fuel limit.
    #[inline]
    #[must_use]
    pub fn fuel(&self) -> u64 {
        self.m.cfg.fuel
    }

    /// Retires `n` µops at once (the engine batches a block's worth of
    /// straight-line µops into one counter update).
    #[inline]
    pub fn retire_uops(&mut self, n: u64) {
        self.m.stats.uops += n;
    }

    /// Counts one bounds-manipulation µop (`setbound` / `unbound`).
    #[inline]
    pub fn count_setbound(&mut self) {
        self.m.stats.setbound_uops += 1;
    }

    /// Records the bounds provenance of a `setbound` executed by the
    /// engine: `site` created `meta`'s `{base, bound}` pair. The engine's
    /// straight-line dispatch bypasses [`Machine::step`], so it must feed
    /// the provenance table itself (the table backs
    /// [`Machine::violation_report`] and never affects execution).
    #[inline]
    pub fn note_setbound(&mut self, site: Pc, meta: Meta) {
        self.m.record_setbound(site, meta);
    }

    /// Load with the HardBound extension statically known inactive
    /// (decode-time resolution of the baseline configuration).
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] the access raises, if any.
    #[inline]
    pub fn load_raw(
        &mut self,
        fpc: Pc,
        width: Width,
        rd: Reg,
        addr: Reg,
        offset: i32,
    ) -> Result<(), Trap> {
        self.m.exec_load_g::<false>(fpc, width, rd, addr, offset)
    }

    /// Load with the HardBound extension statically known active.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] the access raises, if any.
    #[inline]
    pub fn load_hb(
        &mut self,
        fpc: Pc,
        width: Width,
        rd: Reg,
        addr: Reg,
        offset: i32,
    ) -> Result<(), Trap> {
        self.m.exec_load_g::<true>(fpc, width, rd, addr, offset)
    }

    /// Store with the HardBound extension statically known inactive.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] the access raises, if any.
    #[inline]
    pub fn store_raw(
        &mut self,
        fpc: Pc,
        width: Width,
        src: Reg,
        addr: Reg,
        offset: i32,
    ) -> Result<(), Trap> {
        self.m.exec_store_g::<false>(fpc, width, src, addr, offset)
    }

    /// Store with the HardBound extension statically known active.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] the access raises, if any.
    #[inline]
    pub fn store_hb(
        &mut self,
        fpc: Pc,
        width: Width,
        src: Reg,
        addr: Reg,
        offset: i32,
    ) -> Result<(), Trap> {
        self.m.exec_store_g::<true>(fpc, width, src, addr, offset)
    }

    /// HardBound load whose implicit check the optimizer statically elided
    /// (covered by a dominating check or a passed guard). Never traps;
    /// replays the check's statistics exactly. With `audit` set the
    /// original check is re-derived shadow-side and any would-have-trapped
    /// divergence panics (`HB_OPT_AUDIT`).
    /// With `stats` false the per-access statistics replay is skipped; the
    /// dispatcher owns the accounting and must
    /// [`ExecState::bump_elided_checks`] instead — sound only when
    /// [`Machine::elided_stats_static`] holds.
    #[inline]
    pub fn load_hb_elided(
        &mut self,
        fpc: Pc,
        width: Width,
        rd: Reg,
        addr: Reg,
        offset: i32,
        audit: bool,
        stats: bool,
    ) {
        self.m
            .exec_load_hb_elided(fpc, width, rd, addr, offset, audit, stats);
    }

    /// Check-elided HardBound store (dual of
    /// [`ExecState::load_hb_elided`]).
    #[inline]
    pub fn store_hb_elided(
        &mut self,
        fpc: Pc,
        width: Width,
        src: Reg,
        addr: Reg,
        offset: i32,
        audit: bool,
        stats: bool,
    ) {
        self.m
            .exec_store_hb_elided(fpc, width, src, addr, offset, audit, stats);
    }

    /// Batched form of the elided-check statistics replay: credits `n`
    /// elided accesses in one step. Only correct when
    /// [`Machine::elided_stats_static`] holds (full-safety HardBound, no
    /// check-µop ablation), where each elided access charges exactly one
    /// `bounds_checks`.
    #[inline]
    pub fn bump_elided_checks(&mut self, n: u64) {
        self.m.stats.bounds_checks += n;
    }

    /// The optimizer's widened range check: `true` iff `addr` holds a
    /// pointer whose bounds and the machine's address regions admit all of
    /// `[r(addr)+lo_off, r(addr)+lo_off+span)`. Charges no statistics and
    /// retires no µop.
    #[inline]
    #[must_use]
    pub fn guard_check(&mut self, addr: Reg, lo_off: i32, span: u32) -> bool {
        self.m.guard_ok(addr, lo_off, span)
    }

    /// Performs the calling sequence into `callee`. The return address is
    /// the machine's current position, so the engine must
    /// [`ExecState::set_pc`] to the instruction *after* the call first.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::CallDepthExceeded`] / [`Trap::StackOverflow`].
    #[inline]
    pub fn call(&mut self, callee: FuncId) -> Result<(), Trap> {
        self.m.do_call(callee)
    }

    /// Returns from the current function. Reports whether the machine
    /// halted (i.e. the entry function returned).
    #[inline]
    pub fn ret(&mut self) -> bool {
        self.m.do_ret();
        self.m.halted.is_some()
    }
}
