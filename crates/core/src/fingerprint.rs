//! Stable, versioned fingerprints of the simulator's cacheable inputs.
//!
//! The corpus service keys its result store on hashes of the program image
//! and the machine configuration. Inside one process any hash works; the
//! moment those keys are **persisted** (`HB_STORE_PATH`) or sent over a
//! socket (`hbserve`), the hash must be identical across processes,
//! toolchains and platforms. `#[derive(Hash)]` promises none of that — its
//! byte encoding (field order, length prefixes, enum discriminant widths)
//! is an implementation detail of the Rust release that compiled the
//! binary. This module therefore pins the serialization by hand:
//!
//! * [`Fnv64`] — 64-bit FNV-1a with no per-process random state,
//! * [`StableHash`] — explicit field-by-field mixing for every type that
//!   participates in a fingerprint, each field reduced to little-endian
//!   bytes in a documented order, and
//! * [`FINGERPRINT_VERSION`] — a format tag mixed into every fingerprint,
//!   so any change to the rules below changes every key (and a persistent
//!   store from the old format cold-starts instead of aliasing).
//!
//! Programs are mixed via their **assembly listing**
//! ([`Program::write_listing`]): the listing round-trips through
//! `isa::parse_program` and therefore uniquely determines the image, and
//! its text is a grammar this workspace owns — stable across toolchains by
//! construction. It is also exactly the byte stream `hbserve` clients ship,
//! so client and server hash literally the same bytes.
//!
//! **Never** reorder, add or remove mixing steps without bumping
//! [`FINGERPRINT_VERSION`].

use std::fmt;
use std::hash::Hasher;

use hardbound_cache::HierarchyConfig;
use hardbound_isa::Program;

use crate::config::{HardboundConfig, MachineConfig, MetaPath, SafetyMode};
use crate::encoding::PointerEncoding;

/// Version tag of the fingerprint format. Bump on **any** change to a
/// [`StableHash`] impl or to the listing grammar's semantics; persisted
/// stores recorded under another version cold-start cleanly.
pub const FINGERPRINT_VERSION: u32 = 1;

/// A 64-bit FNV-1a [`Hasher`]: tiny, dependency-free, and — unlike
/// `DefaultHasher` — free of per-process random state, so fingerprints are
/// deterministic for a given input. The mixing function is pinned (offset
/// basis `0xcbf29ce484222325`, prime `0x100000001b3`); combined with the
/// explicit byte encodings of [`StableHash`], fingerprints are stable
/// across processes and toolchains.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// Mixes raw bytes (no length prefix — callers delimit variable-length
    /// fields themselves via [`Fnv64::mix_bytes`] or a count field).
    pub fn mix_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Mixes one byte.
    pub fn mix_u8(&mut self, v: u8) {
        self.mix_raw(&[v]);
    }

    /// Mixes a `u32` as 4 little-endian bytes.
    pub fn mix_u32(&mut self, v: u32) {
        self.mix_raw(&v.to_le_bytes());
    }

    /// Mixes a `u64` as 8 little-endian bytes.
    pub fn mix_u64(&mut self, v: u64) {
        self.mix_raw(&v.to_le_bytes());
    }

    /// Mixes a length-prefixed byte string (the prefix makes adjacent
    /// variable-length fields unambiguous).
    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        self.mix_u64(bytes.len() as u64);
        self.mix_raw(bytes);
    }

    /// The accumulated 64-bit fingerprint.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        self.mix_raw(bytes);
    }
}

/// Explicit, versioned hashing: implementors mix every semantically
/// relevant field into the hasher in a pinned order with pinned byte
/// encodings (see the module docs). This is the serialization
/// `#[derive(Hash)]` never promised.
pub trait StableHash {
    /// Mixes `self` into `h` under the rules of [`FINGERPRINT_VERSION`].
    fn stable_hash(&self, h: &mut Fnv64);
}

/// A fingerprint of `value` alone: version tag, then the value's stable
/// bytes, then `salt` (caller-side context the value cannot express).
#[must_use]
pub fn stable_fingerprint<T: StableHash>(value: &T, salt: u64) -> u64 {
    let mut h = Fnv64::default();
    h.mix_u32(FINGERPRINT_VERSION);
    value.stable_hash(&mut h);
    h.mix_u64(salt);
    h.value()
}

impl StableHash for PointerEncoding {
    fn stable_hash(&self, h: &mut Fnv64) {
        h.mix_u8(self.wire_tag());
    }
}

impl StableHash for SafetyMode {
    fn stable_hash(&self, h: &mut Fnv64) {
        h.mix_u8(self.wire_tag());
    }
}

impl StableHash for HardboundConfig {
    fn stable_hash(&self, h: &mut Fnv64) {
        self.encoding.stable_hash(h);
        self.mode.stable_hash(h);
        h.mix_u8(u8::from(self.check_uop));
    }
}

impl StableHash for Option<HardboundConfig> {
    fn stable_hash(&self, h: &mut Fnv64) {
        match self {
            None => h.mix_u8(0),
            Some(hb) => {
                h.mix_u8(1);
                hb.stable_hash(h);
            }
        }
    }
}

impl StableHash for MetaPath {
    fn stable_hash(&self, h: &mut Fnv64) {
        h.mix_u8(self.wire_tag());
    }
}

impl StableHash for HierarchyConfig {
    fn stable_hash(&self, h: &mut Fnv64) {
        // One pinned field list (`to_words`) serves both this hash and
        // the wire codec — a new field reaches both or neither.
        for word in self.to_words() {
            h.mix_u64(word);
        }
    }
}

impl StableHash for MachineConfig {
    fn stable_hash(&self, h: &mut Fnv64) {
        self.hardbound.stable_hash(h);
        self.hierarchy.stable_hash(h);
        h.mix_u64(self.fuel);
        h.mix_u64(self.max_call_depth as u64);
        self.meta_path.stable_hash(h);
    }
}

/// Streams [`fmt::Write`] output straight into the hasher — how a whole
/// program listing is mixed without materializing the string.
struct HashWriter<'a>(&'a mut Fnv64);

impl fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.mix_raw(s.as_bytes());
        Ok(())
    }
}

impl StableHash for Program {
    /// A program's stable bytes are its **assembly listing** (see the
    /// module docs): the listing round-trips through `isa::parse_program`,
    /// so it determines the image uniquely, and the grammar is owned by
    /// this workspace rather than by the Rust toolchain.
    fn stable_hash(&self, h: &mut Fnv64) {
        let _ = self.write_listing(&mut HashWriter(h));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The FNV pin: if the mixing constants ever drift, persisted stores
    /// written by older builds would silently alias.
    #[test]
    fn fnv_constants_are_pinned() {
        let mut h = Fnv64::default();
        assert_eq!(h.value(), 0xcbf2_9ce4_8422_2325);
        h.mix_raw(b"a");
        assert_eq!(h.value(), 0xaf63_dc4c_8601_ec8c, "FNV-1a of \"a\"");
        let mut h = Fnv64::default();
        h.mix_raw(b"foobar");
        assert_eq!(h.value(), 0x85944171f73967e8, "FNV-1a of \"foobar\"");
    }

    /// The golden fingerprint of the default configuration — computed
    /// once from the format rules above and pinned forever.
    const GOLDEN_DEFAULT_CONFIG: u64 = 0x2b42_5554_3d24_587c;

    /// The golden fingerprint of the default configuration. This value is
    /// the cross-process contract: it must only ever change together with
    /// a FINGERPRINT_VERSION bump (which cold-starts persistent stores).
    #[test]
    fn default_config_fingerprint_is_pinned() {
        let fp = stable_fingerprint(&MachineConfig::default(), 0);
        assert_eq!(
            fp, GOLDEN_DEFAULT_CONFIG,
            "stable fingerprint of MachineConfig::default() drifted — if \
             this is intentional, bump FINGERPRINT_VERSION and update the pin"
        );
    }

    #[test]
    fn fields_split_fingerprints() {
        let base = MachineConfig::default();
        let fp = |c: &MachineConfig| stable_fingerprint(c, 0);
        assert_ne!(fp(&base), fp(&base.clone().with_fuel(1)));
        assert_ne!(fp(&base), fp(&base.clone().with_meta_path(MetaPath::Walk)));
        assert_ne!(fp(&base), fp(&MachineConfig::baseline()));
        assert_ne!(fp(&base), stable_fingerprint(&base, 1), "salt splits");
        let mut hier = base.clone();
        hier.hierarchy.tag_cache_bytes += 1;
        assert_ne!(fp(&base), fp(&hier));
    }

    #[test]
    fn program_hash_follows_the_listing() {
        use hardbound_isa::{FunctionBuilder, Reg};
        let mut f = FunctionBuilder::new("main", 0);
        f.li(Reg::A0, 0);
        f.halt();
        let p = Program::with_entry(vec![f.finish()]);
        let mut q = p.clone();
        q.functions[0].name.push('x');

        let hash = |p: &Program| {
            let mut h = Fnv64::default();
            p.stable_hash(&mut h);
            h.value()
        };
        assert_eq!(hash(&p), hash(&p.clone()));
        assert_ne!(hash(&p), hash(&q));

        // The listing IS the hashed byte stream: hashing the rendered
        // string directly agrees with the streaming writer.
        let mut h = Fnv64::default();
        h.mix_raw(p.disassemble().as_bytes());
        assert_eq!(hash(&p), h.value());
    }
}
