//! The HardBound machine — the paper's primary contribution.
//!
//! HardBound (Devietti et al., ASPLOS 2008) is a *hardware bounded pointer*
//! primitive: every register and every word of memory carries an invisible
//! sidecar `{base, bound}` pair. Software initializes bounds with the
//! `setbound` instruction; the hardware then
//!
//! * **propagates** the metadata through pointer arithmetic (`add`/`sub`/
//!   `mov`), loads and stores (paper Figure 3),
//! * **implicitly checks** every dereference against the pointer's bounds,
//!   raising a bounds-check (or non-pointer) exception on failure, and
//! * **compresses** the in-memory metadata: common-case pointers (pointer
//!   equals base, small object) are encoded in a few tag bits, while the
//!   uncommon case falls back to a base/bound shadow space in virtual
//!   memory (§4).
//!
//! This crate implements the complete machine: sidecar register file,
//! propagation and checking rules, the three compressed pointer encodings
//! evaluated in the paper ([`PointerEncoding`]), the tag-metadata/shadow
//! traffic and its cache behaviour, and an execution-statistics module
//! ([`ExecStats`]) that attributes overhead exactly the way the paper's
//! Figure 5 does.
//!
//! ```
//! use hardbound_core::{Machine, MachineConfig, Meta, Trap};
//! use hardbound_isa::{CmpOp, FunctionBuilder, Program, Reg, Width};
//!
//! // The paper's Figure 2, as machine code.
//! let mut f = FunctionBuilder::new("figure2", 0);
//! f.li(Reg::A0, 0x0100_0000);              // set  R1 ← heap address
//! f.setbound_imm(Reg::A1, Reg::A0, 4);     // setbound R2 ← R1, 4
//! f.load(Width::Byte, Reg::A2, Reg::A1, 2); // read base+2: check passes
//! f.load(Width::Byte, Reg::A2, Reg::A1, 5); // read base+5: check fails!
//! f.halt();
//! let program = Program::with_entry(vec![f.finish()]);
//!
//! let mut machine = Machine::new(program, MachineConfig::default());
//! let outcome = machine.run();
//! assert!(matches!(outcome.trap, Some(Trap::BoundsViolation { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod encoding;
pub mod fingerprint;
pub mod forensics;
mod machine;
mod meta;
mod objtable;
mod stats;
mod trap;

pub use config::{HardboundConfig, MachineConfig, MetaPath, SafetyMode};
pub use encoding::{
    intern4_compress, intern4_decompress, intern_eligible, Intern4Word, PointerEncoding,
};
pub use fingerprint::{stable_fingerprint, Fnv64, StableHash, FINGERPRINT_VERSION};
pub use forensics::{
    BoundsOrigin, FlightEvent, FlightRecorder, OobDistance, PageMetaSummary, ViolationReport,
    WindowLine,
};
pub use hardbound_cache::{
    checked_ratio, HierFastStats, HierPath, HierarchyConfig, HierarchyStats,
};
pub use machine::{ExecState, Machine, RunOutcome};
pub use meta::{propagate_binop, Meta};
pub use objtable::{NullObjectTable, ObjectTable};
pub use stats::ExecStats;
pub use trap::{Pc, Trap};

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_isa::layout;
    use hardbound_isa::{BinOp, CmpOp, FuncId, FunctionBuilder, Program, Reg, SysCall, Width};

    const HEAP: u32 = layout::HEAP_BASE;

    fn run_program(program: Program, cfg: MachineConfig) -> RunOutcome {
        Machine::new(program, cfg).run()
    }

    fn single(f: FunctionBuilder) -> Program {
        Program::with_entry(vec![f.finish()])
    }

    /// The complete Figure 2 walkthrough, line by line.
    #[test]
    fn figure2_trace() {
        // Lines 1–3, 5–6 of Figure 2 (the passing subset), then inspect
        // register state.
        let mut f = FunctionBuilder::new("fig2", 0);
        f.li(Reg::A0, HEAP); //          1: set R1
        f.setbound_imm(Reg::A1, Reg::A0, 4); // 2: setbound R2 ← R1,4
        f.load(Width::Byte, Reg::A2, Reg::A1, 2); // 3: passes
        f.addi(Reg::A3, Reg::A1, 1); //  5: R4 ← R2 + 1 (bounds copied)
        f.load(Width::Byte, Reg::A4, Reg::A3, 2); // 6: address base+3 passes
        f.halt();
        let mut m = Machine::new(single(f), MachineConfig::default());
        let out = m.run();
        assert_eq!(out.trap, None, "trap: {:?}", out.trap);
        // R2 = {0x...; base; base+4}
        assert_eq!(m.reg(Reg::A1), HEAP);
        assert_eq!(m.reg_meta(Reg::A1), Meta::object(HEAP, 4));
        // Line 5's increment kept the bounds: {base+1; base; base+4}.
        assert_eq!(m.reg(Reg::A3), HEAP + 1);
        assert_eq!(m.reg_meta(Reg::A3), Meta::object(HEAP, 4));
    }

    #[test]
    fn violation_report_names_setbound_site_and_flight_tail() {
        let mut f = FunctionBuilder::new("fig2", 0);
        f.li(Reg::A0, HEAP); //                   0
        f.setbound_imm(Reg::A1, Reg::A0, 4); //   1: the blamed site
        f.load(Width::Byte, Reg::A2, Reg::A1, 2); // 2: passes
        f.load(Width::Byte, Reg::A2, Reg::A1, 5); // 3: traps
        f.halt();
        let mut m = Machine::new(single(f), MachineConfig::default());
        m.enable_flight(8);
        assert!(m.violation_report().is_none(), "no report before the trap");
        let out = m.run();
        assert!(matches!(out.trap, Some(Trap::BoundsViolation { .. })));
        let rep = m.violation_report().expect("trapped machine has a report");
        match rep.origin {
            BoundsOrigin::Setbound { site, id } => {
                assert_eq!(
                    site,
                    Pc {
                        func: FuncId(0),
                        index: 1
                    }
                );
                assert_eq!(id, 0);
            }
            other => panic!("expected setbound origin, got {other:?}"),
        }
        assert_eq!(rep.oob, Some(OobDistance::PastBound(1)));
        assert_eq!(rep.bounds, Some((HEAP, HEAP + 4)));
        assert!(rep.window.iter().any(|l| l.is_fault && l.index == 3));
        // Both loads (the trapping one included) are in the flight tail.
        assert_eq!(rep.flight.len(), 2);
        assert!(rep.flight[1].addr == HEAP + 5 && !rep.flight[1].is_store);
        let text = rep.to_string();
        assert!(text.contains("setbound at fn#0@1"), "{text}");
        assert!(text.contains("1 bytes past bound"), "{text}");
    }

    #[test]
    fn flight_recorder_is_invisible_to_outcomes() {
        let mut f = FunctionBuilder::new("loopy", 0);
        f.li(Reg::A0, HEAP);
        f.setbound_imm(Reg::A1, Reg::A0, 64);
        f.store(Width::Word, Reg::A0, Reg::A1, 8);
        f.load(Width::Word, Reg::A2, Reg::A1, 8);
        f.load(Width::Byte, Reg::A2, Reg::A1, 99); // traps
        f.halt();
        let prog = single(f);
        let plain = run_program(prog.clone(), MachineConfig::default());
        let mut m = Machine::new(prog, MachineConfig::default());
        m.enable_flight(4);
        assert_eq!(m.run(), plain);
    }

    #[test]
    fn figure2_line4_fails() {
        let mut f = FunctionBuilder::new("fig2b", 0);
        f.li(Reg::A0, HEAP);
        f.setbound_imm(Reg::A1, Reg::A0, 4);
        f.load(Width::Byte, Reg::A2, Reg::A1, 5); // 4: read base+5 fails
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        match out.trap {
            Some(Trap::BoundsViolation {
                addr,
                base,
                bound,
                is_store,
                ..
            }) => {
                assert_eq!(addr, HEAP + 5);
                assert_eq!(base, HEAP);
                assert_eq!(bound, HEAP + 4);
                assert!(!is_store);
            }
            other => panic!("expected bounds violation, got {other:?}"),
        }
    }

    #[test]
    fn figure2_line7_fails_after_increment() {
        let mut f = FunctionBuilder::new("fig2c", 0);
        f.li(Reg::A0, HEAP);
        f.setbound_imm(Reg::A1, Reg::A0, 4);
        f.addi(Reg::A3, Reg::A1, 1);
        f.load(Width::Byte, Reg::A4, Reg::A3, 5); // 7: base+6 fails
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        assert!(matches!(out.trap, Some(Trap::BoundsViolation { addr, .. }) if addr == HEAP + 6));
    }

    #[test]
    fn nonpointer_dereference_traps_in_full_mode() {
        let mut f = FunctionBuilder::new("np", 0);
        f.li(Reg::A0, HEAP);
        f.load(Width::Word, Reg::A1, Reg::A0, 0); // li cleared metadata
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        assert!(matches!(out.trap, Some(Trap::NonPointerDereference { .. })));
    }

    #[test]
    fn nonpointer_dereference_allowed_in_malloc_only_mode() {
        let mut f = FunctionBuilder::new("np2", 0);
        f.li(Reg::A0, HEAP);
        f.load(Width::Word, Reg::A1, Reg::A0, 0);
        f.li(Reg::A0, 0);
        f.halt();
        let cfg = MachineConfig::hardbound(HardboundConfig::malloc_only(PointerEncoding::Intern4));
        let out = run_program(single(f), cfg);
        assert!(out.is_success(), "trap: {:?}", out.trap);
    }

    #[test]
    fn malloc_only_still_checks_bounded_pointers() {
        let mut f = FunctionBuilder::new("np3", 0);
        f.li(Reg::A0, HEAP);
        f.setbound_imm(Reg::A0, Reg::A0, 8);
        f.load(Width::Word, Reg::A1, Reg::A0, 8); // one past the end
        f.halt();
        let cfg = MachineConfig::hardbound(HardboundConfig::malloc_only(PointerEncoding::Intern4));
        let out = run_program(single(f), cfg);
        assert!(matches!(out.trap, Some(Trap::BoundsViolation { .. })));
    }

    #[test]
    fn baseline_machine_performs_no_checks() {
        let mut f = FunctionBuilder::new("base", 0);
        f.li(Reg::A0, HEAP);
        f.load(Width::Word, Reg::A1, Reg::A0, 0);
        f.store(Width::Word, Reg::A1, Reg::A0, 4096); // way past any object
        f.li(Reg::A0, 0);
        f.halt();
        let out = run_program(single(f), MachineConfig::baseline());
        assert!(out.is_success(), "trap: {:?}", out.trap);
        assert_eq!(out.stats.bounds_checks, 0);
        assert_eq!(out.stats.tag_pages, 0);
        assert_eq!(out.stats.shadow_pages, 0);
    }

    #[test]
    fn wild_access_faults_even_on_baseline() {
        let mut f = FunctionBuilder::new("wild", 0);
        f.li(Reg::A0, 0x10); // null page
        f.load(Width::Word, Reg::A1, Reg::A0, 0);
        f.halt();
        let out = run_program(single(f), MachineConfig::baseline());
        assert!(matches!(
            out.trap,
            Some(Trap::WildAddress { addr: 0x10, .. })
        ));
    }

    #[test]
    fn metadata_propagates_through_memory_roundtrip() {
        // Store a bounded pointer, load it back, dereference out of
        // bounds: the reloaded metadata must still trap (Figure 3 C/D).
        let slot = HEAP + 64;
        for enc in PointerEncoding::ALL {
            let mut f = FunctionBuilder::new("roundtrip", 0);
            f.li(Reg::A0, HEAP);
            f.setbound_imm(Reg::A0, Reg::A0, 8);
            f.li(Reg::A1, slot);
            f.setbound_imm(Reg::A1, Reg::A1, 4);
            f.store(Width::Word, Reg::A0, Reg::A1, 0); // spill pointer
            f.load(Width::Word, Reg::A2, Reg::A1, 0); // reload pointer
            f.load(Width::Word, Reg::A3, Reg::A2, 8); // deref out of bounds
            f.halt();
            let cfg = MachineConfig::hardbound(HardboundConfig::full(enc));
            let out = run_program(single(f), cfg);
            assert!(
                matches!(out.trap, Some(Trap::BoundsViolation { addr, .. }) if addr == HEAP + 8),
                "{enc}: {:?}",
                out.trap
            );
        }
    }

    #[test]
    fn small_object_pointer_store_compresses() {
        let mut f = FunctionBuilder::new("compress", 0);
        f.li(Reg::A0, HEAP);
        f.setbound_imm(Reg::A0, Reg::A0, 16); // small, ptr == base
        f.li(Reg::A1, HEAP + 64);
        f.setbound_imm(Reg::A1, Reg::A1, 4);
        f.store(Width::Word, Reg::A0, Reg::A1, 0);
        f.li(Reg::A0, 0);
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        assert!(out.is_success());
        assert_eq!(out.stats.ptr_stores, 1);
        assert_eq!(out.stats.compressed_ptr_stores, 1);
        assert_eq!(
            out.stats.meta_uops, 0,
            "compressed stores need no shadow µop"
        );
        assert_eq!(out.stats.shadow_pages, 0);
    }

    #[test]
    fn large_object_pointer_store_is_uncompressed() {
        let mut f = FunctionBuilder::new("uncompressed", 0);
        f.li(Reg::A0, HEAP);
        f.setbound_imm(Reg::A0, Reg::A0, 4096); // too large for 4-bit tags
        f.li(Reg::A1, HEAP + 8192);
        f.setbound_imm(Reg::A1, Reg::A1, 4);
        f.store(Width::Word, Reg::A0, Reg::A1, 0);
        f.load(Width::Word, Reg::A2, Reg::A1, 0);
        f.li(Reg::A0, 0);
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        assert!(out.is_success());
        assert_eq!(out.stats.ptr_stores, 1);
        assert_eq!(out.stats.compressed_ptr_stores, 0);
        assert_eq!(out.stats.ptr_loads, 1);
        assert_eq!(out.stats.compressed_ptr_loads, 0);
        assert_eq!(
            out.stats.meta_uops, 2,
            "store + load each pay one shadow µop"
        );
        assert!(out.stats.shadow_pages > 0);
    }

    #[test]
    fn intern11_compresses_4kb_object() {
        // The same 4 KB object that extern-4 cannot compress fits in the
        // 11-bit encoding (§4.3 / §5.4).
        let mut f = FunctionBuilder::new("big", 0);
        f.li(Reg::A0, HEAP);
        f.setbound_imm(Reg::A0, Reg::A0, 4096);
        f.li(Reg::A1, HEAP + 8192);
        f.setbound_imm(Reg::A1, Reg::A1, 4);
        f.store(Width::Word, Reg::A0, Reg::A1, 0);
        f.li(Reg::A0, 0);
        f.halt();
        let cfg = MachineConfig::hardbound(HardboundConfig::full(PointerEncoding::Intern11));
        let out = run_program(single(f), cfg);
        assert!(out.is_success());
        assert_eq!(out.stats.compressed_ptr_stores, 1);
        assert_eq!(out.stats.meta_uops, 0);
    }

    #[test]
    fn byte_store_clears_pointer_tag() {
        // Overwrite one byte of a stored pointer; the reloaded word is no
        // longer a pointer, so dereferencing it traps as non-pointer.
        let mut f = FunctionBuilder::new("clear", 0);
        f.li(Reg::A0, HEAP);
        f.setbound_imm(Reg::A0, Reg::A0, 16);
        f.li(Reg::A1, HEAP + 64);
        f.setbound_imm(Reg::A1, Reg::A1, 4);
        f.store(Width::Word, Reg::A0, Reg::A1, 0);
        f.li(Reg::A2, 0xAB);
        f.store(Width::Byte, Reg::A2, Reg::A1, 0);
        f.load(Width::Word, Reg::A3, Reg::A1, 0);
        f.load(Width::Word, Reg::A4, Reg::A3, 0); // A3 has no metadata now
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        assert!(
            matches!(out.trap, Some(Trap::NonPointerDereference { .. })),
            "{:?}",
            out.trap
        );
    }

    #[test]
    fn unchecked_escape_hatch_passes_all_checks() {
        let mut f = FunctionBuilder::new("hatch", 0);
        f.li(Reg::A0, HEAP + 12345);
        f.unbound(Reg::A0, Reg::A0);
        f.load(Width::Word, Reg::A1, Reg::A0, 0);
        f.store(Width::Word, Reg::A1, Reg::A0, 400);
        f.li(Reg::A0, 0);
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        assert!(out.is_success(), "trap: {:?}", out.trap);
    }

    #[test]
    fn code_pointers_call_but_do_not_dereference() {
        let mut callee = FunctionBuilder::new("callee", 0);
        callee.li(Reg::A0, 42);
        callee.ret();
        let mut main = FunctionBuilder::new("main", 0);
        main.code_ptr(Reg::A1, FuncId(1));
        main.call_indirect(Reg::A1);
        main.sys(SysCall::PrintInt); // prints callee's return value
        main.load(Width::Word, Reg::A2, Reg::A1, 0); // deref code pointer!
        main.halt();
        let program = Program::with_entry(vec![main.finish(), callee.finish()]);
        let out = run_program(program, MachineConfig::default());
        assert_eq!(out.ints, vec![42]);
        assert!(
            matches!(out.trap, Some(Trap::BoundsViolation { .. })),
            "{:?}",
            out.trap
        );
    }

    #[test]
    fn forged_function_pointer_is_not_callable() {
        let mut f = FunctionBuilder::new("forge", 0);
        f.li(Reg::A0, layout::code_addr(0)); // right value, no CODE meta
        f.call_indirect(Reg::A0);
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        assert!(matches!(out.trap, Some(Trap::InvalidCallTarget { .. })));
    }

    #[test]
    fn call_and_ret_restore_stack_registers() {
        let mut callee = FunctionBuilder::new("callee", 0);
        callee.addi(Reg::SP, Reg::SP, -64); // callee clobbers sp
        callee.li(Reg::A0, 7);
        callee.ret();
        let mut main = FunctionBuilder::new("main", 0);
        main.call(FuncId(1));
        main.sys(SysCall::PrintInt);
        main.li(Reg::A0, 0);
        main.halt();
        let program = Program::with_entry(vec![main.finish(), callee.finish()]);
        let mut m = Machine::new(program, MachineConfig::default());
        let out = m.run();
        assert!(out.is_success());
        assert_eq!(out.ints, vec![7]);
        assert_eq!(m.reg(Reg::SP), layout::STACK_TOP, "sp restored by ret");
    }

    #[test]
    fn returning_from_entry_exits_with_a0() {
        let mut f = FunctionBuilder::new("main", 0);
        f.li(Reg::A0, 5);
        f.ret();
        let out = run_program(single(f), MachineConfig::default());
        assert_eq!(out.exit_code, Some(5));
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut f = FunctionBuilder::new("div0", 0);
        f.li(Reg::A0, 10);
        f.li(Reg::A1, 0);
        f.bin(BinOp::Div, Reg::A2, Reg::A0, Reg::A1);
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        assert!(matches!(out.trap, Some(Trap::DivideByZero { .. })));
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let mut f = FunctionBuilder::new("spin", 0);
        let head = f.bind_label();
        f.jump(head);
        let out = run_program(single(f), MachineConfig::default().with_fuel(1000));
        assert_eq!(out.trap, Some(Trap::OutOfFuel));
    }

    #[test]
    fn setbound_counts_and_cycle_composition() {
        let mut f = FunctionBuilder::new("stats", 0);
        f.li(Reg::A0, HEAP);
        f.setbound_imm(Reg::A0, Reg::A0, 8);
        f.store(Width::Word, Reg::ZERO, Reg::A0, 0);
        f.li(Reg::A0, 0);
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        assert!(out.is_success());
        assert_eq!(out.stats.setbound_uops, 1);
        assert_eq!(out.stats.uops, 5);
        assert_eq!(out.stats.stores, 1);
        assert!(out.stats.cycles() >= out.stats.uops);
        assert_eq!(
            out.stats.cycles(),
            out.stats.uops + out.stats.hierarchy.total_stall_cycles()
        );
    }

    #[test]
    fn check_uop_ablation_charges_extra_uops() {
        let build = || {
            let mut f = FunctionBuilder::new("ablate", 0);
            f.li(Reg::A0, HEAP);
            f.setbound_imm(Reg::A0, Reg::A0, 4096); // uncompressible
            f.load(Width::Word, Reg::A1, Reg::A0, 0);
            f.li(Reg::A0, 0);
            f.halt();
            single(f)
        };
        let base = run_program(
            build(),
            MachineConfig::hardbound(HardboundConfig::full(PointerEncoding::Extern4)),
        );
        let ablated = run_program(
            build(),
            MachineConfig::hardbound(
                HardboundConfig::full(PointerEncoding::Extern4).with_check_uop(),
            ),
        );
        assert_eq!(base.stats.check_uops, 0);
        assert_eq!(ablated.stats.check_uops, 1);
        assert_eq!(ablated.stats.uops, base.stats.uops + 1);
    }

    #[test]
    fn readbase_readbound_extract_metadata() {
        let mut f = FunctionBuilder::new("rb", 0);
        f.li(Reg::A0, HEAP);
        f.setbound_imm(Reg::A0, Reg::A0, 12);
        f.readbase(Reg::A1, Reg::A0);
        f.readbound(Reg::A2, Reg::A0);
        f.halt();
        let mut m = Machine::new(single(f), MachineConfig::default());
        let out = m.run();
        assert!(out.trap.is_none());
        assert_eq!(m.reg(Reg::A1), HEAP);
        assert_eq!(m.reg(Reg::A2), HEAP + 12);
        assert_eq!(
            m.reg_meta(Reg::A1),
            Meta::NONE,
            "extracted values are plain integers"
        );
    }

    #[test]
    fn cmp_and_branch_do_not_trap_on_pointers() {
        // Pointer comparisons use the value, not the metadata (§4.4).
        let mut f = FunctionBuilder::new("cmp", 0);
        f.li(Reg::A0, HEAP);
        f.setbound_imm(Reg::A0, Reg::A0, 4);
        f.addi(Reg::A1, Reg::A0, 4);
        f.cmp(CmpOp::LtU, Reg::A2, Reg::A0, Reg::A1);
        let done = f.new_label();
        f.branch(CmpOp::Eq, Reg::A2, 1, done);
        f.li(Reg::A2, 99);
        f.bind(done);
        f.mov(Reg::A0, Reg::A2);
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        assert_eq!(out.exit_code, Some(1));
    }

    #[test]
    fn print_syscalls_capture_output() {
        let mut f = FunctionBuilder::new("print", 0);
        f.li(Reg::A0, -3i32 as u32);
        f.sys(SysCall::PrintInt);
        f.li(Reg::A0, b'h' as u32);
        f.sys(SysCall::PrintChar);
        f.li(Reg::A0, b'i' as u32);
        f.sys(SysCall::PrintChar);
        f.li(Reg::A0, 0);
        f.halt();
        let out = run_program(single(f), MachineConfig::default());
        assert_eq!(out.output, "-3\nhi");
        assert_eq!(out.ints, vec![-3]);
    }

    #[test]
    fn tag_traffic_only_when_hardbound_enabled() {
        let build = || {
            let mut f = FunctionBuilder::new("traffic", 0);
            f.li(Reg::A0, HEAP);
            f.setbound_imm(Reg::A0, Reg::A0, 64);
            // Spill the pointer itself so the page holds a tagged word and
            // the later stores cannot take the tag-free fast path.
            f.store(Width::Word, Reg::A0, Reg::A0, 0);
            for i in 1..8 {
                f.store(Width::Word, Reg::ZERO, Reg::A0, i * 4);
            }
            f.li(Reg::A0, 0);
            f.halt();
            single(f)
        };
        let hb = run_program(build(), MachineConfig::default());
        let base = run_program(build(), MachineConfig::baseline());
        assert!(hb.stats.hierarchy.tag_accesses > 0);
        assert_eq!(base.stats.hierarchy.tag_accesses, 0);
        assert_eq!(base.stats.tag_pages, 0);
        assert!(hb.stats.tag_pages > 0);
    }

    #[test]
    fn tag_free_pages_skip_tag_traffic() {
        // Stores and loads of plain integers through a bounded pointer
        // touch pages that never hold a tagged word: the metadata fast
        // path elides their tag traffic entirely, identically under the
        // summary and the unsummarized walk, while the always-charge model
        // still pays it.
        let build = || {
            let mut f = FunctionBuilder::new("sparse", 0);
            f.li(Reg::A0, HEAP);
            f.setbound_imm(Reg::A0, Reg::A0, 64);
            for i in 0..8 {
                f.store(Width::Word, Reg::ZERO, Reg::A0, i * 4);
            }
            for i in 0..8 {
                f.load(Width::Word, Reg::A1, Reg::A0, i * 4);
            }
            f.li(Reg::A0, 0);
            f.halt();
            single(f)
        };
        let summary = run_program(build(), MachineConfig::default());
        let walk = run_program(
            build(),
            MachineConfig::default().with_meta_path(MetaPath::Walk),
        );
        let charge = run_program(
            build(),
            MachineConfig::default().with_meta_path(MetaPath::Charge),
        );
        assert!(summary.is_success());
        assert_eq!(summary.stats, walk.stats, "summary ≡ walk, byte for byte");
        assert_eq!(summary.stats.hierarchy.tag_accesses, 0);
        assert_eq!(summary.stats.tag_pages, 0);
        assert_eq!(
            charge.stats.hierarchy.tag_accesses,
            charge.stats.loads + charge.stats.stores,
            "the always-charge model consults tags on every memory op"
        );
        assert_eq!(charge.exit_code, summary.exit_code);
        assert_eq!(charge.stats.uops, summary.stats.uops, "µops never differ");
    }

    #[test]
    fn tagged_pages_still_charge_and_match_the_walk() {
        // A pointer spilled mid-run flips its page from tag-free to
        // tagged; accesses before the spill skip, accesses after pay —
        // and the summary memo must notice the transition (summary ≡ walk
        // even across it). Clearing the tag back makes the page tag-free
        // again.
        let build = || {
            let mut f = FunctionBuilder::new("transition", 0);
            f.li(Reg::A0, HEAP);
            f.setbound_imm(Reg::A0, Reg::A0, 64);
            f.store(Width::Word, Reg::ZERO, Reg::A0, 0); // tag-free: skip
            f.store(Width::Word, Reg::A0, Reg::A0, 8); // spills a pointer
            f.load(Width::Word, Reg::A1, Reg::A0, 8); // tagged page: charged
            f.li(Reg::A2, 1);
            f.store(Width::Word, Reg::A2, Reg::A0, 8); // clears the tag
            f.load(Width::Word, Reg::A3, Reg::A0, 4); // tag-free again: skip
            f.li(Reg::A0, 0);
            f.halt();
            single(f)
        };
        let summary = run_program(build(), MachineConfig::default());
        let walk = run_program(
            build(),
            MachineConfig::default().with_meta_path(MetaPath::Walk),
        );
        assert!(summary.is_success(), "{:?}", summary.trap);
        assert_eq!(summary.stats, walk.stats);
        assert!(summary.stats.hierarchy.tag_accesses > 0);
        assert!(
            summary.stats.hierarchy.tag_accesses < summary.stats.loads + summary.stats.stores,
            "tag-free accesses before/after the spill must skip: {:?}",
            summary.stats.hierarchy
        );
        assert_eq!(summary.stats.ptr_loads, 1, "reloaded pointer keeps meta");
    }

    #[test]
    fn shadow_summary_matches_walk_across_compression_transitions() {
        // Mirror of `tag_free_pages_skip_tag_traffic` for the shadow-space
        // summary: spill an *uncompressed* pointer (shadow traffic), then a
        // compressed one, reload both, and mix in plain stores — the
        // per-page uncompressed-word counter (Summary) and the tag-plane
        // walk (Walk) must produce byte-identical statistics, and the
        // always-charge model must agree on every observable except its
        // extra metadata traffic.
        let build = || {
            let mut f = FunctionBuilder::new("shadowy", 0);
            f.li(Reg::A0, HEAP);
            f.setbound_imm(Reg::A0, Reg::A0, 4096); // uncompressible
            f.li(Reg::A1, HEAP + 8192);
            f.setbound_imm(Reg::A1, Reg::A1, 64);
            f.store(Width::Word, Reg::A0, Reg::A1, 0); // uncompressed spill
            f.load(Width::Word, Reg::A2, Reg::A1, 0); // shadow reload
            f.store(Width::Word, Reg::A1, Reg::A1, 4); // compressed spill
            f.store(Width::Word, Reg::ZERO, Reg::A1, 0); // clears the tag
            f.load(Width::Word, Reg::A3, Reg::A1, 8); // plain data
            f.li(Reg::A0, 0);
            f.halt();
            single(f)
        };
        let summary = run_program(build(), MachineConfig::default());
        let walk = run_program(
            build(),
            MachineConfig::default().with_meta_path(MetaPath::Walk),
        );
        let charge = run_program(
            build(),
            MachineConfig::default().with_meta_path(MetaPath::Charge),
        );
        assert!(summary.is_success(), "{:?}", summary.trap);
        assert_eq!(summary.stats, walk.stats, "summary ≡ walk, byte for byte");
        assert!(summary.stats.hierarchy.shadow_accesses > 0);
        assert_eq!(charge.exit_code, summary.exit_code);
        assert_eq!(
            charge.stats.hierarchy.shadow_accesses, summary.stats.hierarchy.shadow_accesses,
            "shadow charges come only from uncompressed pointers on every path"
        );
    }

    #[test]
    fn hier_event_matches_walk_and_reports_fastpath_hits() {
        let build = || {
            let mut f = FunctionBuilder::new("hier", 0);
            f.li(Reg::A0, HEAP);
            f.setbound_imm(Reg::A0, Reg::A0, 256);
            for i in 0..32 {
                f.store(Width::Word, Reg::ZERO, Reg::A0, (i % 16) * 4);
            }
            for i in 0..32 {
                f.load(Width::Word, Reg::A1, Reg::A0, (i % 16) * 4);
            }
            f.store(Width::Word, Reg::A0, Reg::A0, 64); // pointer spill
            f.load(Width::Word, Reg::A2, Reg::A0, 64);
            f.li(Reg::A0, 0);
            f.halt();
            single(f)
        };
        let mut event_m = Machine::new(build(), MachineConfig::default());
        let event = event_m.run();
        let mut walk_m = Machine::new(
            build(),
            MachineConfig::default().with_hier_path(HierPath::Walk),
        );
        let walk = walk_m.run();
        assert!(event.is_success(), "{:?}", event.trap);
        assert_eq!(event, walk, "Event ≡ Walk on the whole RunOutcome");
        assert_eq!(
            walk_m.hier_fast_stats(),
            HierFastStats::default(),
            "walk path must not touch filters"
        );
        let fast = event_m.hier_fast_stats();
        assert!(fast.fastpath_hits > 0, "{fast:?}");
    }

    #[test]
    fn sampled_hier_keeps_outcome_shape_but_estimates_stalls() {
        let build = || {
            let mut f = FunctionBuilder::new("sampled", 0);
            f.li(Reg::A0, HEAP);
            f.setbound_imm(Reg::A0, Reg::A0, 4096);
            for i in 0..64 {
                f.store(Width::Word, Reg::ZERO, Reg::A0, i * 64);
            }
            f.li(Reg::A0, 0);
            f.halt();
            single(f)
        };
        let exact = run_program(build(), MachineConfig::default());
        let mut sampled_m = Machine::new(
            build(),
            MachineConfig::default().with_hier_path(HierPath::sampled(8)),
        );
        let sampled = sampled_m.run();
        assert!(sampled.is_success());
        // Architectural results and access counts are exact; stall cycles
        // (and therefore `stats`) may differ — that's the contract.
        assert_eq!(sampled.exit_code, exact.exit_code);
        assert_eq!(sampled.stats.uops, exact.stats.uops);
        assert_eq!(
            sampled.stats.hierarchy.data_accesses,
            exact.stats.hierarchy.data_accesses
        );
        assert!(sampled_m.hier_fast_stats().sampled_sets > 0);
    }

    #[test]
    fn object_table_hook_is_invoked() {
        struct Recording(Vec<(u32, u32)>);
        impl ObjectTable for Recording {
            fn register(&mut self, base: u32, size: u32) -> u64 {
                self.0.push((base, size));
                3
            }
            fn unregister(&mut self, _base: u32) -> u64 {
                2
            }
            fn check(&mut self, _from: u32, to: u32) -> (u64, bool) {
                (5, to < HEAP + 100)
            }
            fn check_arith(&mut self, _from: u32, to: u32) -> (u64, bool) {
                (5, to < HEAP + 100)
            }
        }
        let mut f = FunctionBuilder::new("ot", 0);
        f.li(Reg::A0, HEAP);
        f.li(Reg::A1, 64);
        f.sys(SysCall::OtRegister);
        f.li(Reg::A1, HEAP + 4);
        f.sys(SysCall::OtCheck); // a0 = HEAP, a1 = HEAP+4: passes
        f.li(Reg::A0, HEAP + 5000);
        f.li(Reg::A1, HEAP + 5000);
        f.sys(SysCall::OtCheck); // fails
        f.halt();
        let mut m = Machine::new(single(f), MachineConfig::baseline());
        m.set_object_table(Box::new(Recording(Vec::new())));
        let out = m.run();
        assert!(
            matches!(out.trap, Some(Trap::ObjectTableViolation { addr, .. }) if addr == HEAP + 5000)
        );
        assert_eq!(out.stats.objtable_cycles, 3 + 5 + 5);
    }

    #[test]
    fn run_outcome_success_predicate() {
        let mut f = FunctionBuilder::new("ok", 0);
        f.li(Reg::A0, 0);
        f.halt();
        assert!(run_program(single(f), MachineConfig::default()).is_success());
        let mut f = FunctionBuilder::new("bad", 0);
        f.li(Reg::A0, 1);
        f.halt();
        assert!(!run_program(single(f), MachineConfig::default()).is_success());
    }
}
