use hardbound_isa::BinOp;

/// Sidecar `{base, bound}` metadata of one register or memory word
/// (paper §3.1: "the architected state of registers and memory locations
/// are now triples `{value; base; bound}`").
///
/// Distinguished values:
///
/// * [`Meta::NONE`] `(0, 0)` — a non-pointer; dereferencing it traps in
///   full-safety mode (Figure 3's "nonpointer check").
/// * [`Meta::UNCHECKED`] `(0, MAXINT)` — the §3.2 escape hatch: "a
///   completely unsafe pointer that passes all bounds checks".
/// * [`Meta::CODE`] `(MAXINT, MAXINT)` — a code pointer (§6.1): callable
///   but never dereferenceable, so function pointers cannot be forged into
///   data pointers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Meta {
    /// First valid address of the region.
    pub base: u32,
    /// First address *after* the region (exclusive).
    pub bound: u32,
}

impl From<(u32, u32)> for Meta {
    fn from((base, bound): (u32, u32)) -> Meta {
        Meta { base, bound }
    }
}

impl Meta {
    /// Non-pointer marker.
    pub const NONE: Meta = Meta { base: 0, bound: 0 };
    /// The escape-hatch pointer that passes every check (§3.2).
    pub const UNCHECKED: Meta = Meta {
        base: 0,
        bound: u32::MAX,
    };
    /// Code-pointer marker (§6.1): fails every dereference check but is
    /// accepted by indirect calls.
    pub const CODE: Meta = Meta {
        base: u32::MAX,
        bound: u32::MAX,
    };

    /// Builds metadata for an object of `size` bytes starting at `base`
    /// (the effect of `setbound`).
    #[must_use]
    pub fn object(base: u32, size: u32) -> Meta {
        Meta {
            base,
            bound: base.wrapping_add(size),
        }
    }

    /// Whether this metadata marks a pointer (anything but `NONE`).
    #[must_use]
    pub fn is_pointer(self) -> bool {
        self != Meta::NONE
    }

    /// Whether this is the code-pointer marker.
    #[must_use]
    pub fn is_code(self) -> bool {
        self == Meta::CODE
    }

    /// The implicit HardBound dereference check for an access covering
    /// `[ea, ea + width)`.
    ///
    /// The paper's Figure 3 checks only the effective address
    /// (`value < base or value >= bound`); we check the whole access span,
    /// which is strictly stronger and catches word accesses that straddle
    /// the bound (see DESIGN.md "modelling deviations").
    #[must_use]
    pub fn check(self, ea: u32, width: u32) -> bool {
        let ea = u64::from(ea);
        let width = u64::from(width);
        ea >= u64::from(self.base) && ea + width <= u64::from(self.bound)
    }

    /// Object size in bytes (`bound - base`), saturating at zero for
    /// malformed pairs.
    #[must_use]
    pub fn size(self) -> u32 {
        self.bound.wrapping_sub(self.base)
    }
}

/// Metadata result of a two-operand ALU instruction (paper Figure 3 A/B).
///
/// * Pointer-forming ops (`add`, `sub`) propagate the first operand's
///   metadata if it is a pointer, otherwise the second's (`R1.base ←
///   if (R2.bound != 0) R2.base else R3.base`).
/// * All other ops clear the metadata.
#[must_use]
pub fn propagate_binop(op: BinOp, lhs: Meta, rhs: Option<Meta>) -> Meta {
    if !op.propagates_bounds() {
        return Meta::NONE;
    }
    if lhs.bound != 0 || lhs.base != 0 {
        lhs
    } else {
        rhs.unwrap_or(Meta::NONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_constructor() {
        let m = Meta::object(0x1000, 4);
        assert_eq!(
            m,
            Meta {
                base: 0x1000,
                bound: 0x1004
            }
        );
        assert_eq!(m.size(), 4);
        assert!(m.is_pointer());
        assert!(!m.is_code());
    }

    #[test]
    fn figure2_checks() {
        // setbound R2 ← 0x1000, 4  ⇒ {0x1000; 0x1000; 0x1004}
        let m = Meta::object(0x1000, 4);
        // load Mem[R2+2]: address 0x1002 passes (byte access).
        assert!(m.check(0x1002, 1));
        // load Mem[R2+5]: address 0x1005 fails.
        assert!(!m.check(0x1005, 1));
        // R4 = R2 + 1 keeps the same bounds; 0x1003 passes, 0x1006 fails.
        assert!(m.check(0x1003, 1));
        assert!(!m.check(0x1006, 1));
    }

    #[test]
    fn span_check_catches_straddling_word() {
        let m = Meta::object(0x1000, 4);
        assert!(m.check(0x1000, 4));
        assert!(
            !m.check(0x1002, 4),
            "word access straddling the bound must fail"
        );
        assert!(!m.check(0x0FFF, 4), "access starting below base must fail");
    }

    #[test]
    fn unchecked_passes_everything() {
        for (ea, w) in [(0u32, 1u32), (0x1234_5678, 4), (u32::MAX - 4, 4)] {
            assert!(Meta::UNCHECKED.check(ea, w));
        }
        assert!(Meta::UNCHECKED.is_pointer());
    }

    #[test]
    fn code_pointer_fails_every_dereference() {
        for (ea, w) in [(0u32, 1u32), (0x1000, 4), (u32::MAX, 1)] {
            assert!(
                !Meta::CODE.check(ea, w),
                "code pointers are not dereferenceable"
            );
        }
        assert!(Meta::CODE.is_pointer());
        assert!(Meta::CODE.is_code());
    }

    #[test]
    fn nonpointer_fails_checks() {
        assert!(!Meta::NONE.check(0, 1));
        assert!(!Meta::NONE.is_pointer());
    }

    #[test]
    fn add_propagates_first_pointer_operand() {
        let p = Meta::object(0x2000, 16);
        let q = Meta::object(0x3000, 8);
        // pointer + immediate → pointer's bounds (Figure 3 A).
        assert_eq!(propagate_binop(BinOp::Add, p, None), p);
        // pointer + nonpointer → pointer's bounds (Figure 3 B).
        assert_eq!(propagate_binop(BinOp::Add, p, Some(Meta::NONE)), p);
        // nonpointer + pointer → the second operand's bounds.
        assert_eq!(propagate_binop(BinOp::Add, Meta::NONE, Some(q)), q);
        // pointer + pointer → the first operand wins (paper's if-else).
        assert_eq!(propagate_binop(BinOp::Add, p, Some(q)), p);
        // nonpointer + nonpointer → nonpointer.
        assert_eq!(
            propagate_binop(BinOp::Add, Meta::NONE, Some(Meta::NONE)),
            Meta::NONE
        );
    }

    #[test]
    fn sub_propagates_like_add() {
        let p = Meta::object(0x2000, 16);
        assert_eq!(propagate_binop(BinOp::Sub, p, Some(Meta::NONE)), p);
        assert_eq!(propagate_binop(BinOp::Sub, Meta::NONE, Some(p)), p);
    }

    #[test]
    fn non_pointer_ops_clear_metadata() {
        let p = Meta::object(0x2000, 16);
        for op in [
            BinOp::Mul,
            BinOp::Mulh,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Sra,
        ] {
            assert_eq!(propagate_binop(op, p, Some(p)), Meta::NONE, "{op:?}");
        }
    }

    #[test]
    fn escape_hatch_meta_propagates_through_add() {
        // UNCHECKED has bound != 0, so Figure 3's test treats it as a
        // pointer and propagates it.
        assert_eq!(
            propagate_binop(BinOp::Add, Meta::UNCHECKED, Some(Meta::NONE)),
            Meta::UNCHECKED
        );
    }
}
