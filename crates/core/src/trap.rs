use std::fmt;

use hardbound_isa::FuncId;

/// Program counter snapshot: function and instruction index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Pc {
    /// Function containing the trapping instruction.
    pub func: FuncId,
    /// Instruction index within the function.
    pub index: u32,
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.func, self.index)
    }
}

/// Why the machine stopped abnormally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// The implicit HardBound bounds check failed (paper Figure 3: "raise
    /// bounds check exception").
    BoundsViolation {
        /// Where the faulting access was issued.
        pc: Pc,
        /// Effective address of the access.
        addr: u32,
        /// The pointer's sidecar base.
        base: u32,
        /// The pointer's sidecar bound.
        bound: u32,
        /// `true` for stores.
        is_store: bool,
    },
    /// A word with no metadata was dereferenced in full-safety mode (paper
    /// Figure 3: "raise non-pointer exception").
    NonPointerDereference {
        /// Where the faulting access was issued.
        pc: Pc,
        /// Effective address of the access.
        addr: u32,
        /// `true` for stores.
        is_store: bool,
    },
    /// An indirect call's target was not a valid code pointer (paper §6.1:
    /// forged function pointers are not callable).
    InvalidCallTarget {
        /// Where the call was issued.
        pc: Pc,
        /// The register value used as a call target.
        value: u32,
    },
    /// Access outside every mapped region — the simulator's analogue of a
    /// segmentation fault. Fires in *any* mode (including the baseline), so
    /// completely wild accesses terminate rather than corrupt the
    /// simulator's own state.
    WildAddress {
        /// Where the faulting access was issued.
        pc: Pc,
        /// The wild effective address.
        addr: u32,
        /// `true` for stores.
        is_store: bool,
    },
    /// Software-requested abort (SoftBound's explicit checks branch here).
    SoftwareAbort {
        /// Abort code (`a0` at the abort).
        code: i32,
    },
    /// The object-table comparison scheme rejected an access.
    ObjectTableViolation {
        /// Where the check was issued.
        pc: Pc,
        /// The checked address.
        addr: u32,
    },
    /// Integer division by zero.
    DivideByZero {
        /// Where the division was issued.
        pc: Pc,
    },
    /// Call stack exceeded the configured limit.
    CallDepthExceeded,
    /// The stack pointer left the stack region while carving a frame.
    StackOverflow,
    /// The µop budget was exhausted.
    OutOfFuel,
}

impl Trap {
    /// The program counter of the trapping instruction, for traps that
    /// have one ([`Trap::CallDepthExceeded`], [`Trap::StackOverflow`] and
    /// [`Trap::OutOfFuel`] are machine-level conditions without a single
    /// faulting instruction; [`Trap::SoftwareAbort`] is program-requested).
    #[must_use]
    pub fn pc(&self) -> Option<Pc> {
        match self {
            Trap::BoundsViolation { pc, .. }
            | Trap::NonPointerDereference { pc, .. }
            | Trap::InvalidCallTarget { pc, .. }
            | Trap::WildAddress { pc, .. }
            | Trap::ObjectTableViolation { pc, .. }
            | Trap::DivideByZero { pc } => Some(*pc),
            Trap::SoftwareAbort { .. }
            | Trap::CallDepthExceeded
            | Trap::StackOverflow
            | Trap::OutOfFuel => None,
        }
    }

    /// Whether this trap represents a *detected spatial-safety violation*
    /// (as opposed to a machine/infrastructure fault). The correctness
    /// suite (§5.2) counts these as detections.
    #[must_use]
    pub fn is_spatial_violation(&self) -> bool {
        matches!(
            self,
            Trap::BoundsViolation { .. }
                | Trap::NonPointerDereference { .. }
                | Trap::InvalidCallTarget { .. }
        )
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::BoundsViolation {
                pc,
                addr,
                base,
                bound,
                is_store,
            } => write!(
                f,
                "bounds violation at {pc}: {} of {addr:#x} outside [{base:#x}, {bound:#x})",
                if *is_store { "store" } else { "load" },
            ),
            Trap::NonPointerDereference { pc, addr, is_store } => write!(
                f,
                "non-pointer dereference at {pc}: {} of {addr:#x}",
                if *is_store { "store" } else { "load" },
            ),
            Trap::InvalidCallTarget { pc, value } => {
                write!(f, "invalid indirect call target {value:#x} at {pc}")
            }
            Trap::WildAddress { pc, addr, is_store } => write!(
                f,
                "wild {} of unmapped address {addr:#x} at {pc}",
                if *is_store { "store" } else { "load" },
            ),
            Trap::SoftwareAbort { code } => write!(f, "software abort with code {code}"),
            Trap::ObjectTableViolation { pc, addr } => {
                write!(f, "object-table violation at {pc}: address {addr:#x}")
            }
            Trap::DivideByZero { pc } => write!(f, "divide by zero at {pc}"),
            Trap::CallDepthExceeded => write!(f, "call depth exceeded"),
            Trap::StackOverflow => write!(f, "stack overflow"),
            Trap::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc() -> Pc {
        Pc {
            func: FuncId(1),
            index: 7,
        }
    }

    #[test]
    fn spatial_violation_classification() {
        assert!(Trap::BoundsViolation {
            pc: pc(),
            addr: 0,
            base: 0,
            bound: 0,
            is_store: false
        }
        .is_spatial_violation());
        assert!(Trap::NonPointerDereference {
            pc: pc(),
            addr: 0,
            is_store: true
        }
        .is_spatial_violation());
        assert!(Trap::InvalidCallTarget { pc: pc(), value: 0 }.is_spatial_violation());
        assert!(!Trap::OutOfFuel.is_spatial_violation());
        assert!(!Trap::SoftwareAbort { code: 1 }.is_spatial_violation());
        assert!(!Trap::WildAddress {
            pc: pc(),
            addr: 0,
            is_store: false
        }
        .is_spatial_violation());
    }

    #[test]
    fn display_is_informative() {
        let t = Trap::BoundsViolation {
            pc: pc(),
            addr: 0x1005,
            base: 0x1000,
            bound: 0x1004,
            is_store: false,
        };
        let s = t.to_string();
        assert!(s.contains("0x1005"));
        assert!(s.contains("0x1000"));
        assert!(s.contains("fn#1@7"));
    }
}
