//! Violation forensics: the structured report a [`Machine`] assembles when
//! a run ends in a trap.
//!
//! A bare [`Trap`] names the faulting PC and little else. Debugging a
//! spatial violation needs *blame assignment*: which `setbound` created
//! the violated bounds, how far out of bounds the access landed, what the
//! surrounding code looks like, and what the program touched just before
//! it died. The machine keeps a bounds-provenance table (every `setbound`
//! records its site PC under a monotonically allocated provenance id) and,
//! when `HB_FLIGHT=N` enables it, a fixed-size flight recorder of recent
//! memory events — both invisible to [`RunOutcome`](crate::RunOutcome)
//! equality, so the differential suites hold with forensics on or off.
//! [`Machine::violation_report`] folds them together with the trap, a
//! disassembled code window, and the faulting page's tag/shadow summary
//! counters into a [`ViolationReport`].
//!
//! [`Machine`]: crate::Machine
//! [`Machine::violation_report`]: crate::Machine::violation_report

use std::fmt;

use crate::trap::{Pc, Trap};

/// Where the violated bounds came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundsOrigin {
    /// Created by a `setbound` at `site`; `id` is the monotonically
    /// allocated provenance id of that (most recent) `setbound` whose
    /// bounds equal the violated pair.
    Setbound {
        /// The `setbound` instruction's program counter.
        site: Pc,
        /// Allocation order among all `setbound`s executed so far.
        id: u64,
    },
    /// Machine-provided region bounds (the whole-stack bounds carried by
    /// `sp`/`fp`, or the whole-globals bounds carried by `gp`) — no
    /// software `setbound` created them.
    Region,
    /// No recorded origin (the trap carries no bounds, or none of the
    /// executed `setbound`s produced this exact pair).
    Unknown,
}

/// How far outside the object the faulting address landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OobDistance {
    /// The address is `n` bytes below the base.
    BelowBase(u32),
    /// The address is `n` bytes at-or-past the bound (`0` = exactly the
    /// first byte past the object).
    PastBound(u32),
    /// The address itself is in bounds but the access's width crosses the
    /// bound.
    StraddlesBound,
}

impl fmt::Display for OobDistance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OobDistance::BelowBase(n) => write!(f, "{n} bytes below base"),
            OobDistance::PastBound(n) => write!(f, "{n} bytes past bound"),
            OobDistance::StraddlesBound => write!(f, "access straddles the bound"),
        }
    }
}

/// Tag/shadow metadata summary of the page containing the faulting
/// address (the per-page counters `mem` maintains exactly on every write).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageMetaSummary {
    /// Page number (`addr >> 12`).
    pub page: u32,
    /// Words on the page carrying a pointer tag.
    pub tag_words: u32,
    /// Words on the page with live shadow-plane `{base, bound}` entries.
    pub shadow_words: u32,
    /// Words on the page tagged as uncompressed pointers.
    pub uncompressed_words: u32,
}

/// One entry of the in-machine flight recorder: a memory access the
/// machine performed shortly before the trap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// µop count when the access issued (a global order stamp).
    pub uop: u64,
    /// The issuing instruction.
    pub pc: Pc,
    /// Effective address.
    pub addr: u32,
    /// Access width in bytes.
    pub width: u8,
    /// `true` for stores.
    pub is_store: bool,
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "uop {:>8}: {} {:#010x} w{} at {}",
            self.uop,
            if self.is_store { "store" } else { "load " },
            self.addr,
            self.width,
            self.pc
        )
    }
}

/// The fixed-size ring of recent memory events, enabled by `HB_FLIGHT=N`
/// ([`Machine::enable_flight`](crate::Machine::enable_flight)). Off by
/// default; when off the machine pays one `Option` discriminant test per
/// memory access and records nothing.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    events: Vec<FlightEvent>,
    next: usize,
    cap: usize,
}

impl FlightRecorder {
    /// A recorder holding the last `cap` events (`cap == 0` records
    /// nothing but still reports as enabled).
    #[must_use]
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            events: Vec::with_capacity(cap.min(4096)),
            next: 0,
            cap,
        }
    }

    /// Records one event, evicting the oldest once full.
    #[inline]
    pub fn record(&mut self, ev: FlightEvent) {
        if self.cap == 0 {
            return;
        }
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.next] = ev;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn tail(&self) -> Vec<FlightEvent> {
        if self.events.len() < self.cap {
            self.events.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.events[self.next..]);
            out.extend_from_slice(&self.events[..self.next]);
            out
        }
    }
}

/// One line of the disassembled code window around the faulting PC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowLine {
    /// Instruction index within the faulting function.
    pub index: u32,
    /// Disassembled instruction text.
    pub text: String,
    /// Whether this is the faulting instruction.
    pub is_fault: bool,
}

/// The structured forensics report for a trapped run. Assembled on demand
/// by [`Machine::violation_report`](crate::Machine::violation_report) —
/// never part of [`RunOutcome`](crate::RunOutcome), whose `PartialEq` is
/// the observational identity the differential suites pin.
#[derive(Clone, Debug)]
pub struct ViolationReport {
    /// The trap that ended the run.
    pub trap: Trap,
    /// The faulting instruction, when the trap has one.
    pub pc: Option<Pc>,
    /// Effective address of the faulting access, when the trap has one.
    pub addr: Option<u32>,
    /// The violated `{base, bound}` pair (bounds violations only).
    pub bounds: Option<(u32, u32)>,
    /// How far out of bounds the access landed (bounds violations only).
    pub oob: Option<OobDistance>,
    /// Which `setbound` (or machine region) produced the violated bounds.
    pub origin: BoundsOrigin,
    /// Tag/shadow summary of the page containing the faulting address.
    pub page: Option<PageMetaSummary>,
    /// Disassembled window around the faulting PC.
    pub window: Vec<WindowLine>,
    /// Tail of the flight recorder, oldest first (empty when `HB_FLIGHT`
    /// is off).
    pub flight: Vec<FlightEvent>,
}

impl ViolationReport {
    /// The out-of-bounds distance for an access at `addr` against
    /// `[base, bound)`.
    #[must_use]
    pub fn distance(addr: u32, base: u32, bound: u32) -> OobDistance {
        if addr < base {
            OobDistance::BelowBase(base - addr)
        } else if addr >= bound {
            OobDistance::PastBound(addr - bound)
        } else {
            OobDistance::StraddlesBound
        }
    }
}

impl fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== hardbound violation report ==")?;
        writeln!(f, "trap: {}", self.trap)?;
        if let Some(oob) = self.oob {
            writeln!(f, "out of bounds: {oob}")?;
        }
        match self.origin {
            BoundsOrigin::Setbound { site, id } => {
                writeln!(f, "bounds origin: setbound at {site} (provenance id {id})")?;
            }
            BoundsOrigin::Region => {
                writeln!(f, "bounds origin: machine region bounds (no setbound site)")?;
            }
            BoundsOrigin::Unknown => {}
        }
        if let Some(p) = self.page {
            writeln!(
                f,
                "page {:#x}: {} tagged words, {} uncompressed, {} shadow entries",
                p.page, p.tag_words, p.uncompressed_words, p.shadow_words
            )?;
        }
        if let (Some(pc), false) = (self.pc, self.window.is_empty()) {
            writeln!(f, "code window ({}):", pc.func)?;
            for line in &self.window {
                let marker = if line.is_fault { "=>" } else { "  " };
                writeln!(f, "  {marker} {:>4}: {}", line.index, line.text)?;
            }
        }
        if !self.flight.is_empty() {
            writeln!(
                f,
                "flight recorder (last {} memory events):",
                self.flight.len()
            )?;
            for ev in &self.flight {
                writeln!(f, "  {ev}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_recorder_keeps_last_n_in_order() {
        let mut fr = FlightRecorder::new(3);
        let ev = |uop| FlightEvent {
            uop,
            pc: Pc {
                func: hardbound_isa::FuncId(0),
                index: 0,
            },
            addr: 0x1000,
            width: 4,
            is_store: false,
        };
        assert!(fr.tail().is_empty());
        for i in 0..5 {
            fr.record(ev(i));
        }
        let uops: Vec<u64> = fr.tail().iter().map(|e| e.uop).collect();
        assert_eq!(uops, vec![2, 3, 4]);
        FlightRecorder::new(0).record(ev(9)); // cap 0: records nothing
    }

    #[test]
    fn distance_classifies_all_sides() {
        assert_eq!(
            ViolationReport::distance(0x0ff0, 0x1000, 0x1040),
            OobDistance::BelowBase(0x10)
        );
        assert_eq!(
            ViolationReport::distance(0x1040, 0x1000, 0x1040),
            OobDistance::PastBound(0)
        );
        assert_eq!(
            ViolationReport::distance(0x1050, 0x1000, 0x1040),
            OobDistance::PastBound(0x10)
        );
        assert_eq!(
            ViolationReport::distance(0x103e, 0x1000, 0x1040),
            OobDistance::StraddlesBound
        );
    }
}
