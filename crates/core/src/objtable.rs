/// Host-side object table used by the JK/RL/DA-style comparison mode.
///
/// The paper's Figure 7 compares HardBound against an object-lookup scheme
/// (§2.2) in which every allocation is registered in a splay tree keyed by
/// address and pointer accesses are validated against the covering object.
/// Running the splay tree *inside* the simulated machine would conflate the
/// comparison with our compiler's code quality, so the tree runs host-side
/// (implemented in `hardbound-runtime`) and each operation reports the
/// cycle cost the simulated machine should be charged — calibrated to the
/// instruction counts of a compiled splay-tree lookup (see DESIGN.md
/// substitutions).
pub trait ObjectTable {
    /// Registers the allocation `[base, base + size)`. Returns charged
    /// cycles.
    fn register(&mut self, base: u32, size: u32) -> u64;

    /// Removes the allocation starting at `base`. Returns charged cycles.
    fn unregister(&mut self, base: u32) -> u64;

    /// Dereference check: the object covering `from` (the pointer value)
    /// must also cover `to` (the effective address), reproducing JK's
    /// "dereferences fall within the bounds of the original object".
    /// Returns the charged cycles and whether the access is allowed.
    fn check(&mut self, from: u32, to: u32) -> (u64, bool);

    /// Pointer-arithmetic check: `to` must stay within the object covering
    /// `from`, where one-past-the-end is legal (as in C and in JK's
    /// scheme). Unknown `from` pointers pass (the scheme cannot judge
    /// them). Returns charged cycles and whether the arithmetic is legal.
    fn check_arith(&mut self, from: u32, to: u32) -> (u64, bool);
}

/// A permissive object table that admits everything at zero cost; useful
/// for tests that need the syscalls wired but not the policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObjectTable;

impl ObjectTable for NullObjectTable {
    fn register(&mut self, _base: u32, _size: u32) -> u64 {
        0
    }

    fn unregister(&mut self, _base: u32) -> u64 {
        0
    }

    fn check(&mut self, _from: u32, _to: u32) -> (u64, bool) {
        (0, true)
    }

    fn check_arith(&mut self, _from: u32, _to: u32) -> (u64, bool) {
        (0, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_table_admits_everything() {
        let mut t = NullObjectTable;
        assert_eq!(t.register(0x1000, 64), 0);
        assert_eq!(t.check(0x0, 0x4), (0, true));
        assert_eq!(t.check_arith(0x0, 0x4), (0, true));
        assert_eq!(t.unregister(0x1000), 0);
    }
}
