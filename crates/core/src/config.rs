use hardbound_cache::{HierPath, HierarchyConfig};

use crate::encoding::PointerEncoding;

/// How much checking the HardBound hardware performs (paper §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SafetyMode {
    /// Complete spatial safety: dereferencing a word with no metadata
    /// raises a non-pointer exception (Figure 3's "nonpointer check").
    /// Requires compiler instrumentation of locals and globals.
    Full,
    /// The malloc-only legacy-binary mode: "checks memory accesses only
    /// when bounds information is present; no checking is performed on the
    /// non-heap references" (§3.2, footnote 2).
    MallocOnly,
}

impl SafetyMode {
    /// The pinned one-byte tag shared by the stable fingerprint and the
    /// wire codec (see [`crate::PointerEncoding::wire_tag`]).
    #[must_use]
    pub fn wire_tag(self) -> u8 {
        match self {
            SafetyMode::Full => 0,
            SafetyMode::MallocOnly => 1,
        }
    }

    /// Inverse of [`SafetyMode::wire_tag`].
    #[must_use]
    pub fn from_wire_tag(tag: u8) -> Option<SafetyMode> {
        [SafetyMode::Full, SafetyMode::MallocOnly]
            .into_iter()
            .find(|m| m.wire_tag() == tag)
    }
}

/// Configuration of the HardBound hardware extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HardboundConfig {
    /// Active compressed pointer encoding (§4.3).
    pub encoding: PointerEncoding,
    /// Checking policy.
    pub mode: SafetyMode,
    /// §5.4 ablation: charge one extra µop per bounds check of an
    /// uncompressed pointer ("a more modest implementation might perform
    /// bounds checking of uncompressed pointers by using shared ALUs").
    pub check_uop: bool,
}

impl HardboundConfig {
    /// Full-safety configuration for `encoding` (the paper's main setup).
    #[must_use]
    pub fn full(encoding: PointerEncoding) -> HardboundConfig {
        HardboundConfig {
            encoding,
            mode: SafetyMode::Full,
            check_uop: false,
        }
    }

    /// Malloc-only legacy configuration for `encoding`.
    #[must_use]
    pub fn malloc_only(encoding: PointerEncoding) -> HardboundConfig {
        HardboundConfig {
            encoding,
            mode: SafetyMode::MallocOnly,
            check_uop: false,
        }
    }

    /// Enables the §5.4 extra-check-µop ablation.
    #[must_use]
    pub fn with_check_uop(mut self) -> HardboundConfig {
        self.check_uop = true;
        self
    }
}

/// How the machine answers "does this page hold any tagged word?" before
/// charging tag-metadata traffic — the **metadata fast path**.
///
/// Most pages of real programs never hold a bounded pointer, so their
/// accesses need neither the tag walk nor the `Tag`/`Shadow` hierarchy
/// charge: the page-table entry (cached in the dTLB the access consults
/// anyway) carries a summary bit saying so. [`MetaPath::Summary`] and
/// [`MetaPath::Walk`] implement that architecture two ways with
/// byte-identical statistics — maintained per-page counters vs. walking
/// the page's tag plane on every access — which the identity proptests
/// pin against each other. [`MetaPath::Charge`] disables the fast path
/// entirely, restoring the paper's §4.2 model where *every* memory
/// operation generates tag traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MetaPath {
    /// Skip tag traffic for tag-free pages, deciding via the maintained
    /// per-page summary counters (the default fast path).
    #[default]
    Summary,
    /// Same architecture, unsummarized: decide by walking the page's tag
    /// plane on every access. Slow reference implementation; exists so the
    /// summary bookkeeping can be proven exact.
    Walk,
    /// No fast path: every memory operation charges tag traffic (paper
    /// §4.2 verbatim). The `HB_META_FAST=0` escape hatch and the baseline
    /// the `HB_META_GATE` throughput gate measures the fast path against.
    Charge,
}

impl MetaPath {
    /// The pinned one-byte tag shared by the stable fingerprint and the
    /// wire codec (see [`crate::PointerEncoding::wire_tag`]).
    #[must_use]
    pub fn wire_tag(self) -> u8 {
        match self {
            MetaPath::Summary => 0,
            MetaPath::Walk => 1,
            MetaPath::Charge => 2,
        }
    }

    /// Inverse of [`MetaPath::wire_tag`].
    #[must_use]
    pub fn from_wire_tag(tag: u8) -> Option<MetaPath> {
        [MetaPath::Summary, MetaPath::Walk, MetaPath::Charge]
            .into_iter()
            .find(|m| m.wire_tag() == tag)
    }
}

/// Full machine configuration.
///
/// `Hash` covers every field, so a hash of a `MachineConfig` fingerprints
/// the complete simulated hardware — the corpus-service result store keys
/// on it.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// HardBound hardware; `None` disables it entirely (the baseline and
    /// the software-only comparison schemes run this way).
    pub hardbound: Option<HardboundConfig>,
    /// Memory-hierarchy geometry and penalties.
    pub hierarchy: HierarchyConfig,
    /// Maximum µops before the run is aborted with `Trap::OutOfFuel`.
    pub fuel: u64,
    /// Maximum call depth before `Trap::CallDepthExceeded`.
    pub max_call_depth: usize,
    /// Metadata fast-path implementation (see [`MetaPath`]).
    pub meta_path: MetaPath,
    /// Memory-hierarchy lookup machinery (see [`HierPath`]). `Event` and
    /// `Walk` are exact twins and deliberately share a stable fingerprint
    /// (like two builds of the same hardware); `Sampled` is approximate
    /// and therefore excluded from the result store and the wire protocol
    /// rather than fingerprinted.
    pub hier_path: HierPath,
}

impl Default for MachineConfig {
    /// HardBound enabled, full safety, internal 4-bit encoding, the paper's
    /// memory hierarchy.
    fn default() -> MachineConfig {
        MachineConfig::hardbound(HardboundConfig::full(PointerEncoding::Intern4))
    }
}

impl MachineConfig {
    /// A configuration with HardBound enabled; the tag-cache size is set
    /// from the encoding as in the paper (§5.1).
    #[must_use]
    pub fn hardbound(hb: HardboundConfig) -> MachineConfig {
        let hierarchy =
            HierarchyConfig::default().with_tag_cache_bytes(hb.encoding.tag_cache_bytes());
        MachineConfig {
            hardbound: Some(hb),
            hierarchy,
            fuel: 4_000_000_000,
            max_call_depth: 1 << 20,
            meta_path: MetaPath::Summary,
            hier_path: HierPath::Event,
        }
    }

    /// The baseline machine: HardBound hardware absent.
    #[must_use]
    pub fn baseline() -> MachineConfig {
        MachineConfig {
            hardbound: None,
            hierarchy: HierarchyConfig::default(),
            fuel: 4_000_000_000,
            max_call_depth: 1 << 20,
            meta_path: MetaPath::Summary,
            hier_path: HierPath::Event,
        }
    }

    /// Replaces the fuel limit.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> MachineConfig {
        self.fuel = fuel;
        self
    }

    /// Replaces the memory hierarchy configuration (used by the tag-cache
    /// sensitivity ablation).
    #[must_use]
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> MachineConfig {
        self.hierarchy = hierarchy;
        self
    }

    /// Replaces the metadata fast-path implementation.
    #[must_use]
    pub fn with_meta_path(mut self, meta_path: MetaPath) -> MachineConfig {
        self.meta_path = meta_path;
        self
    }

    /// Replaces the memory-hierarchy lookup machinery.
    #[must_use]
    pub fn with_hier_path(mut self, hier_path: HierPath) -> MachineConfig {
        self.hier_path = hier_path;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_intern4() {
        let c = MachineConfig::default();
        let hb = c.hardbound.expect("hardbound on by default");
        assert_eq!(hb.encoding, PointerEncoding::Intern4);
        assert_eq!(hb.mode, SafetyMode::Full);
        assert!(!hb.check_uop);
        assert_eq!(c.hierarchy.tag_cache_bytes, 2048);
        assert_eq!(c.meta_path, MetaPath::Summary);
        assert_eq!(c.hier_path, HierPath::Event);
    }

    #[test]
    fn extern4_gets_8kb_tag_cache() {
        let c = MachineConfig::hardbound(HardboundConfig::full(PointerEncoding::Extern4));
        assert_eq!(c.hierarchy.tag_cache_bytes, 8192);
    }

    #[test]
    fn baseline_has_no_hardbound() {
        assert!(MachineConfig::baseline().hardbound.is_none());
    }

    #[test]
    fn builders_compose() {
        let c = MachineConfig::hardbound(
            HardboundConfig::malloc_only(PointerEncoding::Intern11).with_check_uop(),
        )
        .with_fuel(1000)
        .with_meta_path(MetaPath::Walk)
        .with_hier_path(HierPath::Walk);
        let hb = c.hardbound.unwrap();
        assert_eq!(hb.mode, SafetyMode::MallocOnly);
        assert!(hb.check_uop);
        assert_eq!(c.fuel, 1000);
        assert_eq!(c.meta_path, MetaPath::Walk);
        assert_eq!(c.hier_path, HierPath::Walk);
        assert_eq!(
            MachineConfig::default().with_hier_path(HierPath::sampled(8)),
            MachineConfig::default().with_hier_path(HierPath::Sampled { period: 8 })
        );
    }
}
