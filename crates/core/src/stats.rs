use hardbound_cache::HierarchyStats;

/// Execution statistics with the component attribution used by the paper's
/// Figure 5.
///
/// The paper decomposes HardBound's runtime overhead into four stacked
/// components: (1) compiler-inserted `setbound` instructions, (2) extra
/// µops for loading/storing the metadata of uncompressed pointers, (3)
/// stalls on pointer metadata (tag-cache and base/bound shadow misses), and
/// (4) additional memory latency — pollution suffered by ordinary data
/// accesses, computed by differencing against a baseline run. Components
/// (1)–(3) are direct counters here; (4) is
/// `data_stall_cycles(instrumented) − data_stall_cycles(baseline)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total µops executed, including `setbound` and metadata µops.
    pub uops: u64,
    /// µops that were bounds-manipulation instructions inserted by the
    /// instrumentation — `setbound` and the rare `unbound` escape hatch
    /// (Figure 5 component 1).
    pub setbound_uops: u64,
    /// Extra µops inserted to move uncompressed-pointer metadata to/from
    /// the memory hierarchy (Figure 5 component 2; §5.1: "any load or store
    /// of an uncompressed bounded pointer creates an additional
    /// micro-operation").
    pub meta_uops: u64,
    /// Extra µops charged by the §5.4 check-µop ablation.
    pub check_uops: u64,
    /// Implicit bounds checks performed.
    pub bounds_checks: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Pointer-tagged words stored.
    pub ptr_stores: u64,
    /// Pointer stores that used a compressed encoding.
    pub compressed_ptr_stores: u64,
    /// Pointer-tagged words loaded.
    pub ptr_loads: u64,
    /// Pointer loads that used a compressed encoding.
    pub compressed_ptr_loads: u64,
    /// Cycles charged by the object-table comparison hook.
    pub objtable_cycles: u64,
    /// Per-class memory stall cycles.
    pub hierarchy: HierarchyStats,
    /// Distinct 4 KB data pages touched.
    pub data_pages: usize,
    /// Distinct 4 KB tag-metadata pages touched.
    pub tag_pages: usize,
    /// Distinct 4 KB base/bound shadow pages touched.
    pub shadow_pages: usize,
}

impl ExecStats {
    /// Total simulated cycles: one per µop, plus memory stalls, plus
    /// charged object-table time.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.uops + self.hierarchy.total_stall_cycles() + self.objtable_cycles
    }

    /// Figure 5 component 3: stall cycles attributable to pointer metadata.
    #[must_use]
    pub fn metadata_stall_cycles(&self) -> u64 {
        self.hierarchy.metadata_stall_cycles()
    }

    /// Fraction of pointer stores that compressed, in `[0, 1]`
    /// (1.0 when no pointer was ever stored).
    #[must_use]
    pub fn store_compression_rate(&self) -> f64 {
        if self.ptr_stores == 0 {
            1.0
        } else {
            self.compressed_ptr_stores as f64 / self.ptr_stores as f64
        }
    }

    /// Extra distinct metadata pages (tag + shadow) — the quantity Figure 6
    /// stacks on top of the baseline page count.
    #[must_use]
    pub fn metadata_pages(&self) -> usize {
        self.tag_pages + self.shadow_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_compose_uops_and_stalls() {
        let mut s = ExecStats {
            uops: 100,
            objtable_cycles: 7,
            ..ExecStats::default()
        };
        s.hierarchy.data_stall_cycles = 24;
        s.hierarchy.tag_stall_cycles = 12;
        s.hierarchy.shadow_stall_cycles = 212;
        assert_eq!(s.cycles(), 100 + 24 + 12 + 212 + 7);
        assert_eq!(s.metadata_stall_cycles(), 224);
    }

    #[test]
    fn compression_rate_handles_zero() {
        let s = ExecStats::default();
        assert_eq!(s.store_compression_rate(), 1.0);
        let s = ExecStats {
            ptr_stores: 4,
            compressed_ptr_stores: 3,
            ..ExecStats::default()
        };
        assert_eq!(s.store_compression_rate(), 0.75);
    }

    #[test]
    fn metadata_pages_sum() {
        let s = ExecStats {
            tag_pages: 3,
            shadow_pages: 5,
            ..ExecStats::default()
        };
        assert_eq!(s.metadata_pages(), 8);
    }
}
