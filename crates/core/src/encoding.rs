//! The compressed bounded-pointer encodings of paper §4.3.
//!
//! "Many pointers in C programs point to structs or small arrays ... often
//! the value and base component of a pointer are identical. Furthermore,
//! most C structs are small" — so HardBound encodes the common case in a
//! few bits and falls back to the full base/bound shadow entry otherwise.
//!
//! Three encodings are evaluated in the paper:
//!
//! * **external 4-bit** — the tag metadata space holds 4 bits per word:
//!   value 0 = non-pointer, 1–14 = a compressed pointer to the beginning of
//!   an object of `tag * 4` bytes, 15 = uncompressed (full shadow entry).
//! * **internal 4-bit** — the tag space stays 1 bit per word; the 4
//!   metadata bits are hijacked from redundant upper bits of the pointer
//!   itself (eligible when the pointer lies in the lowest/highest 128 MB of
//!   the virtual address space). Same compressible set as external 4-bit.
//! * **internal 11-bit** — 11 hijacked bits encode object sizes up to
//!   `4 * 2^11` = 8 KB; proposed for 64-bit address spaces and simulated by
//!   the paper on its 32-bit machine just as we do.
//!
//! This module implements both the *bit-level* internal encode/decode
//! (compress/decompress of §4.3, unit- and property-tested) and the
//! *classification* used by the machine's cost model. The machine keeps the
//! decompressed value in its data plane and the classification in its tag
//! plane — an equivalent formulation that preserves the architectural cost
//! model exactly (compressed metadata travels with the data word; only
//! uncompressed pointers touch the base/bound shadow space); see DESIGN.md.

use crate::meta::Meta;

/// Which compressed pointer encoding the hardware uses (paper §4.3/§5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PointerEncoding {
    /// External 4-bit compressed encoding (tag space: 4 bits/word,
    /// 8 KB tag metadata cache).
    Extern4,
    /// Internal 4-bit compressed encoding (tag space: 1 bit/word,
    /// 2 KB tag metadata cache).
    Intern4,
    /// Internal 11-bit compressed encoding (tag space: 1 bit/word,
    /// 2 KB tag metadata cache; sizes to 8 KB).
    Intern11,
}

impl PointerEncoding {
    /// All three encodings, in the order the paper's figures present them.
    pub const ALL: [PointerEncoding; 3] = [
        PointerEncoding::Extern4,
        PointerEncoding::Intern4,
        PointerEncoding::Intern11,
    ];

    /// The pinned one-byte tag used by **both** the stable fingerprint
    /// and the wire codec — one mapping, so the two byte formats cannot
    /// drift apart. Changing a value is a format change (bump
    /// `FINGERPRINT_VERSION` and `WIRE_VERSION`).
    #[must_use]
    pub fn wire_tag(self) -> u8 {
        match self {
            PointerEncoding::Extern4 => 0,
            PointerEncoding::Intern4 => 1,
            PointerEncoding::Intern11 => 2,
        }
    }

    /// Inverse of [`PointerEncoding::wire_tag`].
    #[must_use]
    pub fn from_wire_tag(tag: u8) -> Option<PointerEncoding> {
        PointerEncoding::ALL
            .into_iter()
            .find(|e| e.wire_tag() == tag)
    }

    /// Tag metadata density in bits per 32-bit word (paper §4.2–4.3).
    #[must_use]
    pub fn tag_bits(self) -> u32 {
        match self {
            PointerEncoding::Extern4 => 4,
            PointerEncoding::Intern4 | PointerEncoding::Intern11 => 1,
        }
    }

    /// Tag metadata cache size the paper pairs with this encoding (§5.1:
    /// "2KB 4-way SA when HardBound uses a 1-bit encoding; 8KB 4-way SA
    /// when using a 4-bit external compressed encoding").
    #[must_use]
    pub fn tag_cache_bytes(self) -> u64 {
        match self {
            PointerEncoding::Extern4 => 8 * 1024,
            PointerEncoding::Intern4 | PointerEncoding::Intern11 => 2 * 1024,
        }
    }

    /// Largest compressible object size in bytes.
    #[must_use]
    pub fn max_compressed_size(self) -> u32 {
        match self {
            PointerEncoding::Extern4 | PointerEncoding::Intern4 => 56,
            PointerEncoding::Intern11 => 4 << 11,
        }
    }

    /// Whether a pointer with `value` and metadata `meta` is compressible
    /// under this encoding.
    ///
    /// All encodings require the pointer to reference the beginning of its
    /// object (`value == base`), a size that is a positive multiple of four
    /// and within the encoding's range; the internal encodings additionally
    /// require the pointer to lie in the lowest/highest 128 MB of the
    /// virtual address space (our layout keeps all data in the lowest
    /// 128 MB — see `hardbound_isa::layout`).
    #[must_use]
    pub fn is_compressible(self, value: u32, meta: Meta) -> bool {
        if !meta.is_pointer() || meta.base != value {
            return false;
        }
        let size = meta.bound.wrapping_sub(meta.base);
        if size == 0 || !size.is_multiple_of(4) || size > self.max_compressed_size() {
            return false;
        }
        match self {
            PointerEncoding::Extern4 => true,
            PointerEncoding::Intern4 => intern_eligible(value),
            // The paper applies no range restriction when simulating the
            // 11-bit (64-bit-VA) encoding on its 32-bit machine.
            PointerEncoding::Intern11 => true,
        }
    }

    /// Human-readable name matching the paper's figure labels.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PointerEncoding::Extern4 => "extern-4",
            PointerEncoding::Intern4 => "intern-4",
            PointerEncoding::Intern11 => "intern-11",
        }
    }
}

impl std::fmt::Display for PointerEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Eligibility test for internal compression: the pointer's upper bits must
/// be redundant, i.e. the value lies in the lowest or highest 128 MB of the
/// 32-bit virtual address space (paper §4.3).
#[must_use]
pub fn intern_eligible(value: u32) -> bool {
    !(0x0800_0000..0xF800_0000).contains(&value)
}

/// A pointer word as physically stored under the internal 4-bit encoding.
///
/// Bit 31 is the compressed flag (it is "stolen" from the address space by
/// choosing it to select the metadata shadow region, which data pointers
/// can never reference); bits 30..27 hold the size code (object size / 4,
/// 1..=14); bit 26 reconstructs the pointer's elided upper bits (0 = lowest
/// 128 MB, 1 = highest 128 MB); bits 25..0 are the surviving low bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Intern4Word(pub u32);

const FLAG_BIT: u32 = 1 << 31;
const SIZE_SHIFT: u32 = 27;
const RECON_BIT: u32 = 1 << 26;
const LOW_MASK: u32 = (1 << 26) - 1;

/// Compresses `(value, meta)` into an [`Intern4Word`], or `None` when the
/// pointer is not compressible under the internal 4-bit encoding.
#[must_use]
pub fn intern4_compress(value: u32, meta: Meta) -> Option<Intern4Word> {
    if !PointerEncoding::Intern4.is_compressible(value, meta) {
        return None;
    }
    // Eligibility guarantees bits 31..26 of `value` are all zeros (lowest
    // 128 MB) or all ones (highest 128 MB).
    let upper_ones = value >= 0xF800_0000;
    if upper_ones {
        debug_assert_eq!(value >> 26, 0x3F);
    } else if value >> 26 != 0 {
        // Values in [64 MB, 128 MB) keep bit 26 set; the reconstruction bit
        // can only restore a uniform prefix, so these are not encodable.
        return None;
    }
    let size_code = meta.size() / 4;
    debug_assert!((1..=14).contains(&size_code));
    let recon = if upper_ones { RECON_BIT } else { 0 };
    Some(Intern4Word(
        FLAG_BIT | (size_code << SIZE_SHIFT) | recon | (value & LOW_MASK),
    ))
}

/// Decompresses an [`Intern4Word`] back to `(value, meta)`; `None` if the
/// word's compressed flag is clear (i.e. it holds an uncompressed pointer).
#[must_use]
pub fn intern4_decompress(word: Intern4Word) -> Option<(u32, Meta)> {
    if word.0 & FLAG_BIT == 0 {
        return None;
    }
    let size = ((word.0 >> SIZE_SHIFT) & 0xF) * 4;
    let low = word.0 & LOW_MASK;
    let value = if word.0 & RECON_BIT != 0 {
        0xFC00_0000 | low
    } else {
        low
    };
    Some((value, Meta::object(value, size)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_geometry_matches_paper() {
        assert_eq!(PointerEncoding::Extern4.tag_bits(), 4);
        assert_eq!(PointerEncoding::Intern4.tag_bits(), 1);
        assert_eq!(PointerEncoding::Intern11.tag_bits(), 1);
        assert_eq!(PointerEncoding::Extern4.tag_cache_bytes(), 8192);
        assert_eq!(PointerEncoding::Intern4.tag_cache_bytes(), 2048);
        assert_eq!(PointerEncoding::Intern11.tag_cache_bytes(), 2048);
    }

    #[test]
    fn extern4_compressible_set() {
        let e = PointerEncoding::Extern4;
        // Beginning-of-object pointers to 4..=56-byte objects compress.
        for size in (4..=56).step_by(4) {
            assert!(
                e.is_compressible(0x1000, Meta::object(0x1000, size)),
                "size {size}"
            );
        }
        // Size not a multiple of 4.
        assert!(!e.is_compressible(0x1000, Meta::object(0x1000, 5)));
        // Too large.
        assert!(!e.is_compressible(0x1000, Meta::object(0x1000, 60)));
        // Interior pointer (value != base).
        assert!(!e.is_compressible(0x1004, Meta::object(0x1000, 16)));
        // Non-pointer and zero-size.
        assert!(!e.is_compressible(0, Meta::NONE));
        assert!(!e.is_compressible(0x1000, Meta::object(0x1000, 0)));
    }

    #[test]
    fn intern4_requires_low_or_high_region() {
        let e = PointerEncoding::Intern4;
        assert!(e.is_compressible(0x0700_0000, Meta::object(0x0700_0000, 8)));
        assert!(!e.is_compressible(0x0800_0000, Meta::object(0x0800_0000, 8)));
        assert!(e.is_compressible(0xF800_0000, Meta::object(0xF800_0000, 8)));
        assert!(!e.is_compressible(0xF7FF_FFF0, Meta::object(0xF7FF_FFF0, 8)));
    }

    #[test]
    fn intern11_compresses_up_to_8kb() {
        let e = PointerEncoding::Intern11;
        assert!(e.is_compressible(0x1000, Meta::object(0x1000, 8192)));
        assert!(!e.is_compressible(0x1000, Meta::object(0x1000, 8196)));
        assert!(e.is_compressible(0x1000, Meta::object(0x1000, 2048)));
        // Still requires pointer == base.
        assert!(!e.is_compressible(0x1004, Meta::object(0x1000, 2048)));
    }

    #[test]
    fn intern4_bit_roundtrip_low_region() {
        let meta = Meta::object(0x0123_4560, 24);
        let word = intern4_compress(0x0123_4560, meta).expect("compressible");
        assert_ne!(word.0 & FLAG_BIT, 0, "flag bit set");
        let (value, got) = intern4_decompress(word).expect("flag set");
        assert_eq!(value, 0x0123_4560);
        assert_eq!(got, meta);
    }

    #[test]
    fn intern4_bit_roundtrip_high_region() {
        let base = 0xFC12_3450u32;
        let meta = Meta::object(base, 56);
        let word = intern4_compress(base, meta).expect("compressible");
        let (value, got) = intern4_decompress(word).expect("flag set");
        assert_eq!(value, base);
        assert_eq!(got, meta);
    }

    #[test]
    fn intern4_rejects_64_to_128_mb_with_bit26_loss() {
        // Values in [64 MB, 128 MB) pass the 128 MB region test but cannot
        // survive the bit-26 hijack; the bit-level encoder refuses them.
        let v = 0x0400_0000u32; // 64 MB
        assert!(intern4_compress(v, Meta::object(v, 8)).is_none());
        // The classification predicate is deliberately coarser (128 MB per
        // the paper's prose); the machine's plane model never materializes
        // the bit-level word, so only the bit-level API enforces this.
        assert!(PointerEncoding::Intern4.is_compressible(v, Meta::object(v, 8)));
    }

    #[test]
    fn uncompressed_word_decodes_to_none() {
        assert_eq!(intern4_decompress(Intern4Word(0x0123_4567)), None);
    }

    #[test]
    fn display_labels() {
        assert_eq!(PointerEncoding::Extern4.to_string(), "extern-4");
        assert_eq!(PointerEncoding::Intern4.to_string(), "intern-4");
        assert_eq!(PointerEncoding::Intern11.to_string(), "intern-11");
    }
}
