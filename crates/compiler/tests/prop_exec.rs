//! Differential property tests: randomly generated Cb expressions must
//! evaluate to exactly what a Rust reference evaluator computes, under
//! every instrumentation mode. This pins down the compiler's arithmetic,
//! precedence handling and mode-independence in one sweep.

use hardbound_compiler::{compile_program, Mode, Options};
use hardbound_core::{Machine, MachineConfig};
use proptest::prelude::*;

/// A tiny expression AST with a Rust evaluator and a Cb renderer.
#[derive(Clone, Debug)]
enum E {
    Lit(i32),
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u8),
    Shr(Box<E>, u8),
    Neg(Box<E>),
    Not(Box<E>),
    BitNot(Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    Cond(Box<E>, Box<E>, Box<E>),
}

const NVARS: usize = 4;
const VAR_VALUES: [i32; NVARS] = [7, -3, 100_000, 0];

impl E {
    fn eval(&self) -> i32 {
        match self {
            E::Lit(v) => *v,
            E::Var(i) => VAR_VALUES[*i],
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::Div(a, b) => {
                let (x, y) = (a.eval(), b.eval());
                if y == 0 {
                    x // guarded in render: divisor is `y == 0 ? 1 : y`
                } else {
                    x.wrapping_div(y)
                }
            }
            E::Rem(a, b) => {
                let (x, y) = (a.eval(), b.eval());
                if y == 0 {
                    0
                } else {
                    x.wrapping_rem(y)
                }
            }
            E::And(a, b) => a.eval() & b.eval(),
            E::Or(a, b) => a.eval() | b.eval(),
            E::Xor(a, b) => a.eval() ^ b.eval(),
            E::Shl(a, n) => a.eval().wrapping_shl(u32::from(*n)),
            E::Shr(a, n) => a.eval().wrapping_shr(u32::from(*n)),
            E::Neg(a) => a.eval().wrapping_neg(),
            E::Not(a) => i32::from(a.eval() == 0),
            E::BitNot(a) => !a.eval(),
            E::Lt(a, b) => i32::from(a.eval() < b.eval()),
            E::Eq(a, b) => i32::from(a.eval() == b.eval()),
            E::Cond(c, t, f) => {
                if c.eval() != 0 {
                    t.eval()
                } else {
                    f.eval()
                }
            }
        }
    }

    fn render(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0 {
                    // Cb has no negative literals; spell as 0 - n with the
                    // positive magnitude (wrapping-safe for i32::MIN).
                    format!("(0 - {})", (i64::from(*v)).unsigned_abs())
                } else {
                    format!("{v}")
                }
            }
            E::Var(i) => format!("v{i}"),
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            E::Div(a, b) => {
                let d = b.render();
                format!("({} / (({d}) == 0 ? 1 : ({d})))", a.render())
            }
            E::Rem(a, b) => {
                let d = b.render();
                format!("((({d}) == 0) ? 0 : ({} % ({d})))", a.render())
            }
            E::And(a, b) => format!("({} & {})", a.render(), b.render()),
            E::Or(a, b) => format!("({} | {})", a.render(), b.render()),
            E::Xor(a, b) => format!("({} ^ {})", a.render(), b.render()),
            E::Shl(a, n) => format!("({} << {n})", a.render()),
            E::Shr(a, n) => format!("({} >> {n})", a.render()),
            E::Neg(a) => format!("(-{})", a.render()),
            E::Not(a) => format!("(!{})", a.render()),
            E::BitNot(a) => format!("(~{})", a.render()),
            E::Lt(a, b) => format!("({} < {})", a.render(), b.render()),
            E::Eq(a, b) => format!("({} == {})", a.render(), b.render()),
            E::Cond(c, t, f) => {
                format!("(({}) ? ({}) : ({}))", c.render(), t.render(), f.render())
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1000i32..1000).prop_map(E::Lit),
        (0usize..NVARS).prop_map(E::Var),
        Just(E::Lit(i32::MAX)),
        Just(E::Lit(i32::MIN + 1)),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..31).prop_map(|(a, n)| E::Shl(Box::new(a), n)),
            (inner.clone(), 0u8..31).prop_map(|(a, n)| E::Shr(Box::new(a), n)),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.clone().prop_map(|a| E::Not(Box::new(a))),
            inner.clone().prop_map(|a| E::BitNot(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Eq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| E::Cond(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
        ]
    })
}

fn run_expr(expr: &E, mode: Mode) -> i32 {
    let decls: String = (0..NVARS)
        .map(|i| format!("    int v{i} = {};\n", E::Lit(VAR_VALUES[i]).render()))
        .collect();
    let source = format!(
        "int main() {{\n{decls}    print_int({});\n    return 0;\n}}\n",
        expr.render()
    );
    let program = compile_program(&source, &Options::mode(mode))
        .unwrap_or_else(|e| panic!("compile failed: {e}\n{source}"));
    let cfg = match mode {
        Mode::HardBound => MachineConfig::default(),
        _ => MachineConfig::baseline(),
    };
    let out = Machine::new(program, cfg).run();
    assert_eq!(
        out.trap, None,
        "trapped on pure arithmetic: {:?}\n{source}",
        out.trap
    );
    out.ints[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The compiled program computes exactly what Rust's wrapping i32
    /// semantics compute, in baseline mode.
    #[test]
    fn expressions_match_reference(expr in arb_expr()) {
        let expected = expr.eval();
        let got = run_expr(&expr, Mode::Baseline);
        prop_assert_eq!(got, expected, "source: {}", expr.render());
    }

    /// Instrumentation never changes arithmetic results (the paper's
    /// compatibility claim: metadata is invisible to computation).
    #[test]
    fn instrumentation_is_semantically_invisible(expr in arb_expr()) {
        let expected = expr.eval();
        for mode in [Mode::HardBound, Mode::SoftBound] {
            let got = run_expr(&expr, mode);
            prop_assert_eq!(got, expected, "{}: {}", mode, expr.render());
        }
    }
}
