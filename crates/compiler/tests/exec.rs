//! End-to-end tests: compile Cb programs and execute them on the
//! HardBound machine under every instrumentation mode.

use std::collections::BTreeMap;

use hardbound_compiler::{compile_program, Mode, Options};
use hardbound_core::{
    HardboundConfig, Machine, MachineConfig, ObjectTable, PointerEncoding, RunOutcome, Trap,
};

/// A minimal object table for tests (interval map over BTreeMap).
#[derive(Default)]
struct MapTable {
    objects: BTreeMap<u32, u32>, // base -> size
}

impl ObjectTable for MapTable {
    fn register(&mut self, base: u32, size: u32) -> u64 {
        self.objects.insert(base, size);
        10
    }
    fn unregister(&mut self, base: u32) -> u64 {
        self.objects.remove(&base);
        10
    }
    fn check(&mut self, from: u32, to: u32) -> (u64, bool) {
        let ok = self
            .objects
            .range(..=from)
            .next_back()
            .is_some_and(|(&b, &s)| from >= b && from < b + s && to >= b && to < b + s);
        (10, ok)
    }
    fn check_arith(&mut self, from: u32, to: u32) -> (u64, bool) {
        let ok = match self.objects.range(..=from).next_back() {
            Some((&b, &s)) if from >= b && from < b + s => to >= b && to <= b + s,
            _ => true,
        };
        (10, ok)
    }
}

/// Compile and run under `mode` with the matching machine configuration.
fn run_mode(source: &str, mode: Mode) -> RunOutcome {
    let program = match compile_program(source, &Options::mode(mode)) {
        Ok(p) => p,
        Err(e) => panic!("compilation failed ({mode}): {e}\nsource:\n{source}"),
    };
    let cfg = match mode {
        Mode::Baseline | Mode::SoftBound | Mode::ObjectTable => MachineConfig::baseline(),
        Mode::MallocOnly => {
            MachineConfig::hardbound(HardboundConfig::malloc_only(PointerEncoding::Intern4))
        }
        Mode::HardBound => {
            MachineConfig::hardbound(HardboundConfig::full(PointerEncoding::Intern4))
        }
    };
    let mut m = Machine::new(program, cfg);
    if mode == Mode::ObjectTable {
        m.set_object_table(Box::new(MapTable::default()));
    }
    m.run()
}

fn run(source: &str) -> RunOutcome {
    run_mode(source, Mode::HardBound)
}

/// Asserts the program runs cleanly in every mode and all modes agree on
/// output and exit code.
fn assert_all_modes_agree(source: &str) -> RunOutcome {
    let reference = run_mode(source, Mode::Baseline);
    assert_eq!(
        reference.trap, None,
        "baseline trapped: {:?}",
        reference.trap
    );
    for mode in [
        Mode::MallocOnly,
        Mode::HardBound,
        Mode::SoftBound,
        Mode::ObjectTable,
    ] {
        let out = run_mode(source, mode);
        assert_eq!(
            out.trap, None,
            "{mode} trapped: {:?}\nsource:\n{source}",
            out.trap
        );
        assert_eq!(
            out.exit_code, reference.exit_code,
            "{mode} exit code differs"
        );
        assert_eq!(out.output, reference.output, "{mode} output differs");
    }
    reference
}

#[test]
fn arithmetic_and_precedence() {
    let out = assert_all_modes_agree(
        "int main() { return (2 + 3 * 4 - 1) / 2 % 5 + (1 << 4) - (65 >> 2) + (7 & 12) + (1 | 6) ^ 3; }",
    );
    let expect = ((2 + 3 * 4 - 1) / 2 % 5 + (1 << 4) - (65 >> 2) + (7 & 12) + (1 | 6)) ^ 3;
    assert_eq!(out.exit_code, Some(expect));
}

#[test]
fn negative_numbers_and_unary() {
    let out = assert_all_modes_agree("int main() { int x = -7; return -x + !0 + !5 + (~x); }");
    assert_eq!(out.exit_code, Some((7 + 1) + 6));
}

#[test]
fn comparisons_and_logic() {
    let out = assert_all_modes_agree(
        "int main() {\n\
           int a = 3; int b = 5;\n\
           return (a < b) + (b <= 5)*2 + (a > b)*4 + (a >= 3)*8 + (a == 3)*16 + (a != b)*32\n\
             + (a < b && b < 10)*64 + (a > b || b == 5)*128;\n\
         }",
    );
    assert_eq!(out.exit_code, Some((1 + 2) + 8 + 16 + 32 + 64 + 128));
}

#[test]
fn short_circuit_side_effects() {
    let out = assert_all_modes_agree(
        "int g = 0;\n\
         int bump() { g = g + 1; return 1; }\n\
         int main() {\n\
           int r = 0 && bump();\n\
           r = r + (1 || bump());\n\
           return g * 10 + r;\n\
         }",
    );
    assert_eq!(out.exit_code, Some(1), "neither bump() must run");
}

#[test]
fn loops_and_control_flow() {
    let out = assert_all_modes_agree(
        "int main() {\n\
           int s = 0;\n\
           for (int i = 0; i < 10; i = i + 1) {\n\
             if (i == 3) continue;\n\
             if (i == 8) break;\n\
             s = s + i;\n\
           }\n\
           int j = 0;\n\
           while (j < 5) j = j + 1;\n\
           return s * 10 + j;\n\
         }",
    );
    // 0+1+2+4+5+6+7 = 25
    assert_eq!(out.exit_code, Some(255));
}

#[test]
fn recursion_factorial_fib() {
    let out = assert_all_modes_agree(
        "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\n\
         int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
         int main() { return fact(6) + fib(10); }",
    );
    assert_eq!(out.exit_code, Some(720 + 55));
}

#[test]
fn arrays_and_pointer_arithmetic() {
    let out = assert_all_modes_agree(
        "int main() {\n\
           int a[8];\n\
           for (int i = 0; i < 8; i = i + 1) a[i] = i * i;\n\
           int *p = a;\n\
           int s = 0;\n\
           for (int i = 0; i < 8; i = i + 1) { s = s + *p; p = p + 1; }\n\
           int *q = &a[5];\n\
           return s + (q - a) + q[-1];\n\
         }",
    );
    let sum: i32 = (0..8).map(|i| i * i).sum();
    assert_eq!(out.exit_code, Some(sum + 5 + 16));
}

#[test]
fn structs_and_linked_list() {
    let out = assert_all_modes_agree(
        "struct node { int v; struct node *next; };\n\
         int main() {\n\
           struct node a; struct node b; struct node c;\n\
           a.v = 1; b.v = 2; c.v = 3;\n\
           a.next = &b; b.next = &c; c.next = 0;\n\
           int s = 0;\n\
           struct node *p = &a;\n\
           while (p != 0) { s = s * 10 + p->v; p = p->next; }\n\
           return s;\n\
         }",
    );
    assert_eq!(out.exit_code, Some(123));
}

#[test]
fn char_arrays_and_strings() {
    let out = assert_all_modes_agree(
        "int main() {\n\
           char buf[8];\n\
           char *s = \"hi!\";\n\
           int i = 0;\n\
           while (s[i] != 0) { buf[i] = s[i]; i = i + 1; }\n\
           buf[i] = 0;\n\
           print_char(buf[0]); print_char(buf[1]); print_char(buf[2]);\n\
           return i;\n\
         }",
    );
    assert_eq!(out.exit_code, Some(3));
    assert_eq!(out.output, "hi!");
}

#[test]
fn ternary_and_nested_calls() {
    let out = assert_all_modes_agree(
        "int max(int a, int b) { return a > b ? a : b; }\n\
         int main() { return max(max(1, 5), max(4, 2)) * (0 ? 100 : 3); }",
    );
    assert_eq!(out.exit_code, Some(15));
}

#[test]
fn global_variables_and_initializers() {
    let out = assert_all_modes_agree(
        "int counter = 5;\n\
         int table[4];\n\
         int bump(int by) { counter = counter + by; return counter; }\n\
         int main() {\n\
           table[0] = bump(1);\n\
           table[1] = bump(2);\n\
           return counter * 100 + table[0] * 10 + table[1] - 800;\n\
         }",
    );
    assert_eq!(out.exit_code, Some(800 + 60 + 8 - 800));
}

#[test]
fn sizeof_and_casts() {
    let out = assert_all_modes_agree(
        "struct s { char c; int x; };\n\
         int main() {\n\
           int v = 300;\n\
           char t = (char)v;\n\
           int back = t;\n\
           return sizeof(struct s) * 100 + back;\n\
         }",
    );
    assert_eq!(out.exit_code, Some(800 + 44));
}

#[test]
fn setbound_annotation_roundtrip() {
    // __setbound works in every mode; the bounded pointer is usable within
    // its bounds everywhere.
    let out = assert_all_modes_agree(
        "int main() {\n\
           int backing[10];\n\
           int *p = __setbound(&backing[2], 4 * sizeof(int));\n\
           p[0] = 7; p[3] = 9;\n\
           return p[0] + p[3];\n\
         }",
    );
    assert_eq!(out.exit_code, Some(16));
}

#[test]
fn mulh_fixed_point() {
    let out = assert_all_modes_agree(
        // 16.16 fixed-point multiply of 2.5 * 4.0 = 10.0:
        // (a*b) >> 16 computed as (mulh(a,b) << 16) | ((a*b) >> 16 logical)
        "int fx_mul(int a, int b) {\n\
           int hi = __mulh(a, b);\n\
           int lo = a * b;\n\
           return (hi << 16) | ((lo >> 16) & 0xFFFF);\n\
         }\n\
         int main() { return fx_mul(163840, 262144) >> 16; }",
    );
    assert_eq!(out.exit_code, Some(10));
}

// ---- violation detection ----------------------------------------------

const HEAP_OVERFLOW: &str = "int main() {\n\
   int backing[64];\n\
   int *a = __setbound(backing, 8 * sizeof(int));\n\
   a[2] = 5;\n\
   a[9] = 7;\n\
   return a[2];\n\
 }";

#[test]
fn overflow_detected_by_hardbound_and_malloc_only() {
    for mode in [Mode::HardBound, Mode::MallocOnly] {
        let out = run_mode(HEAP_OVERFLOW, mode);
        assert!(
            matches!(out.trap, Some(Trap::BoundsViolation { .. })),
            "{mode}: {:?}",
            out.trap
        );
    }
}

#[test]
fn overflow_detected_by_softbound_as_abort() {
    let out = run_mode(HEAP_OVERFLOW, Mode::SoftBound);
    assert!(
        matches!(out.trap, Some(Trap::SoftwareAbort { .. })),
        "{:?}",
        out.trap
    );
}

#[test]
fn overflow_detected_by_object_table() {
    // The bounded region is the registered object here, so the +9 access
    // leaves it.
    let out = run_mode(
        "int main() {\n\
           int backing[8];\n\
           int *a = __setbound(backing, 8 * sizeof(int));\n\
           a[9] = 7;\n\
           return 0;\n\
         }",
        Mode::ObjectTable,
    );
    assert!(
        matches!(out.trap, Some(Trap::ObjectTableViolation { .. })),
        "{:?}",
        out.trap
    );
}

#[test]
fn overflow_missed_by_baseline() {
    let out = run_mode(HEAP_OVERFLOW, Mode::Baseline);
    assert_eq!(out.trap, None, "baseline must corrupt silently");
    assert_eq!(out.exit_code, Some(5));
}

#[test]
fn stack_array_overflow_only_in_full_mode() {
    // Stack arrays are not protected by malloc-only instrumentation
    // (paper §3.2 footnote 2) but are by full instrumentation.
    // The overflow happens in a callee frame so it stays inside the stack
    // region (the whole-stack bounds on fp would otherwise catch an
    // overflow past the stack top even in malloc-only mode).
    let src = "int f() { int a[4]; int i = 6; a[i] = 1; return 0; }\n\
         int main() { int pad[64]; pad[9] = 3; return f() + pad[9] - 3; }";
    let full = run_mode(src, Mode::HardBound);
    assert!(
        matches!(full.trap, Some(Trap::BoundsViolation { .. })),
        "{:?}",
        full.trap
    );
    let legacy = run_mode(src, Mode::MallocOnly);
    assert_eq!(legacy.trap, None, "malloc-only does not bound stack arrays");
}

#[test]
fn sub_object_overflow_hardbound_yes_objtable_no() {
    // The paper's §2.2 motivating example: overflowing node.str corrupts
    // node.x. Object-table schemes cannot see it; HardBound's sub-object
    // narrowing catches it.
    let src = "struct node { char str[5]; int x; };\n\
         int main() {\n\
           struct node n;\n\
           n.x = 1234;\n\
           char *p = n.str;\n\
           int i = 0;\n\
           while (i < 10) { p[i] = 65; i = i + 1; }\n\
           return n.x;\n\
         }";
    let hb = run_mode(src, Mode::HardBound);
    assert!(
        matches!(hb.trap, Some(Trap::BoundsViolation { .. })),
        "HardBound must catch the sub-object overflow: {:?}",
        hb.trap
    );
    let sb = run_mode(src, Mode::SoftBound);
    assert!(
        matches!(sb.trap, Some(Trap::SoftwareAbort { .. })),
        "{:?}",
        sb.trap
    );
    let ot = run_mode(src, Mode::ObjectTable);
    assert_eq!(
        ot.trap, None,
        "object tables cannot catch sub-object overflows (§2.2)"
    );
    // ... and the overflow really did corrupt the neighbouring field.
    assert_ne!(ot.exit_code, Some(1234));
}

#[test]
fn lower_bound_underflow_detected() {
    let src = "int main() {\n\
        int backing[16];\n\
        int *a = __setbound(&backing[8], 4 * sizeof(int));\n\
        int i = 2;\n\
        return a[0 - i];\n\
      }";
    let out = run_mode(src, Mode::HardBound);
    assert!(
        matches!(out.trap, Some(Trap::BoundsViolation { .. })),
        "{:?}",
        out.trap
    );
    let sb = run_mode(src, Mode::SoftBound);
    assert!(
        matches!(sb.trap, Some(Trap::SoftwareAbort { .. })),
        "{:?}",
        sb.trap
    );
}

#[test]
fn dangling_style_forged_pointer_fails_in_full_mode() {
    // Paper §6.1 line 6-7: a pointer manufactured from a constant has no
    // metadata; dereferencing it raises the non-pointer exception.
    let out = run("int main() {\n\
           int *w = (int*)4096;\n\
           *w = 42;\n\
           return 0;\n\
         }");
    assert!(
        matches!(out.trap, Some(Trap::NonPointerDereference { .. })),
        "{:?}",
        out.trap
    );
}

#[test]
fn cast_roundtrip_keeps_bounds() {
    // Paper §6.1 lines 3-5: ptr → int → ptr keeps metadata (casts are
    // no-ops to the hardware), so the final write succeeds.
    let out = run("int main() {\n\
           int x = 17;\n\
           char *z = (char*)&x;\n\
           int a = (int)z;\n\
           int *p = (int*)a;\n\
           *p = 42;\n\
           return x;\n\
         }");
    assert_eq!(out.trap, None, "{:?}", out.trap);
    assert_eq!(out.exit_code, Some(42));
}

#[test]
fn unbound_escape_hatch_disables_checking() {
    let out = run("int main() {\n\
           int backing[4];\n\
           int *a = __setbound(backing, sizeof(int));\n\
           int *u = __unbound(a);\n\
           u[2] = 5;\n\
           return u[2];\n\
         }");
    assert_eq!(out.trap, None, "{:?}", out.trap);
    assert_eq!(out.exit_code, Some(5));
}

#[test]
fn readbase_readbound_report_metadata() {
    let out = run("int main() {\n\
           int backing[4];\n\
           int *a = __setbound(backing, 16);\n\
           return __readbound(a) - __readbase(a);\n\
         }");
    assert_eq!(out.exit_code, Some(16));
}

#[test]
fn print_int_output() {
    let out = assert_all_modes_agree(
        "int main() { for (int i = 0; i < 3; i = i + 1) print_int(i * 5); return 0; }",
    );
    assert_eq!(out.output, "0\n5\n10\n");
    assert_eq!(out.ints, vec![0, 5, 10]);
}

#[test]
fn deep_expression_spills_across_calls() {
    // Forces many live temporaries across nested calls.
    let out = assert_all_modes_agree(
        "int f(int x) { return x + 1; }\n\
         int main() {\n\
           return f(1) + f(2) * f(3) + f(4) * (f(5) + f(6) * f(7)) + f(8);\n\
         }",
    );
    let f = |x: i32| x + 1;
    assert_eq!(
        out.exit_code,
        Some(f(1) + f(2) * f(3) + f(4) * (f(5) + f(6) * f(7)) + f(8))
    );
}

#[test]
fn passing_pointers_through_functions() {
    let out = assert_all_modes_agree(
        "void fill(int *p, int n, int seed) {\n\
           for (int i = 0; i < n; i = i + 1) p[i] = seed + i;\n\
         }\n\
         int sum(int *p, int n) {\n\
           int s = 0;\n\
           for (int i = 0; i < n; i = i + 1) s = s + p[i];\n\
           return s;\n\
         }\n\
         int main() {\n\
           int a[16];\n\
           fill(a, 16, 3);\n\
           return sum(a, 16);\n\
         }",
    );
    assert_eq!(out.exit_code, Some((0..16).map(|i| 3 + i).sum()));
}

#[test]
fn pointer_crossing_function_keeps_bounds() {
    // The callee overruns a buffer the *caller* bounded — detected because
    // metadata travels with the pointer through the call (in HardBound:
    // hardware registers; in SoftBound: the argument-metadata area).
    let src = "void smash(char *p) {\n\
           int i = 0;\n\
           while (i < 100) { p[i] = 88; i = i + 1; }\n\
         }\n\
         int main() {\n\
           char buf[64];\n\
           char *p = __setbound(buf, 8);\n\
           smash(p);\n\
           return 0;\n\
         }";
    let hb = run_mode(src, Mode::HardBound);
    assert!(
        matches!(hb.trap, Some(Trap::BoundsViolation { addr, .. }) if addr > 0),
        "{:?}",
        hb.trap
    );
    let sb = run_mode(src, Mode::SoftBound);
    assert!(
        matches!(sb.trap, Some(Trap::SoftwareAbort { .. })),
        "{:?}",
        sb.trap
    );
}

#[test]
fn stats_differ_by_mode() {
    let src = "int main() {\n\
        int a[32];\n\
        int *p = a;\n\
        int s = 0;\n\
        for (int i = 0; i < 32; i = i + 1) { p[i] = i; }\n\
        for (int i = 0; i < 32; i = i + 1) { s = s + p[i]; }\n\
        return s;\n\
      }";
    let base = run_mode(src, Mode::Baseline);
    let hb = run_mode(src, Mode::HardBound);
    let sb = run_mode(src, Mode::SoftBound);
    assert!(
        hb.stats.uops >= base.stats.uops,
        "HardBound adds setbound µops"
    );
    assert!(
        sb.stats.uops > hb.stats.uops,
        "software checks cost far more µops than hardware ones: sb={} hb={}",
        sb.stats.uops,
        hb.stats.uops
    );
    assert!(hb.stats.setbound_uops > 0);
    assert_eq!(base.stats.setbound_uops, 0);
    assert_eq!(base.stats.bounds_checks, 0);
    assert!(hb.stats.bounds_checks > 0);
}
