//! The Cb compiler: lowers `hardbound-lang` HIR to the simulator ISA with
//! the paper's instrumentation strategies.
//!
//! The paper's prototype toolchain is CIL source-to-source transformation +
//! GCC (§5.1). This crate plays both roles. Its [`Mode`] selects the
//! protection scheme being evaluated:
//!
//! | mode | corresponds to | what is emitted |
//! |---|---|---|
//! | [`Mode::Baseline`] | unmodified binaries | no instrumentation; `__setbound` is dropped (the paper's forward-compatibility story: `setbound` as a no-op) |
//! | [`Mode::MallocOnly`] | §3.2 legacy-binary mode | `setbound` only where the source (i.e. `malloc`) asks for it |
//! | [`Mode::HardBound`] | the paper's full scheme | `setbound` at every pointer-creation site: address-taken locals/globals, array decay, sub-object (member-array) narrowing, string literals |
//! | [`Mode::SoftBound`] | CCured-style software fat pointers (Fig. 7's CCured columns) | pointers lowered to value/base/bound triples, explicit bounds checks at dereferences, split shadow metadata in a software shadow region |
//! | [`Mode::ObjectTable`] | JK/RL/DA-style object lookup (Fig. 7 col. 1) | allocations registered in an object table, dereferences validated against it (object granularity — cannot catch sub-object overflows) |
//!
//! All five modes compile the *same* source; programs annotate allocation
//! sites with `__setbound(p, n)` (as the paper's instrumented `malloc`
//! does) and the mode decides what that means.
//!
//! ```
//! use hardbound_compiler::{compile_program, Mode, Options};
//!
//! let program = compile_program(
//!     "int main() { int a[4]; a[1] = 7; return a[1]; }",
//!     &Options::mode(Mode::HardBound),
//! )?;
//! assert!(program.validate().is_ok());
//! # Ok::<(), hardbound_compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;

use std::fmt;

use hardbound_isa::Program;

/// Instrumentation strategy (see the crate docs for the mapping to the
/// paper's schemes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// No protection; `__setbound` annotations are dropped.
    Baseline,
    /// Only source-requested `setbound`s (the instrumented-`malloc` mode).
    MallocOnly,
    /// Full HardBound instrumentation (CCured-strength spatial safety).
    HardBound,
    /// Software fat pointers with explicit checks (CCured-style).
    SoftBound,
    /// Object-table checking (JK/RL/DA-style).
    ObjectTable,
}

impl Mode {
    /// All modes, in comparison-table order.
    pub const ALL: [Mode; 5] = [
        Mode::Baseline,
        Mode::MallocOnly,
        Mode::HardBound,
        Mode::SoftBound,
        Mode::ObjectTable,
    ];

    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::MallocOnly => "malloc-only",
            Mode::HardBound => "hardbound",
            Mode::SoftBound => "softbound",
            Mode::ObjectTable => "objtable",
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Compilation options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Options {
    /// Instrumentation mode.
    pub mode: Mode,
    /// Functions compiled *without* software checks (SoftBound range
    /// checks, ObjectTable lookups). Used for trusted runtime internals —
    /// the allocator dereferences block headers that live outside any
    /// registered object, just as a real libc is linked uninstrumented.
    /// HardBound needs no such list: its escape hatch (`__unbound`) is a
    /// per-pointer decision (paper §3.2).
    pub unchecked: std::collections::BTreeSet<String>,
}

impl Options {
    /// Options with the given mode and defaults otherwise.
    #[must_use]
    pub fn mode(mode: Mode) -> Options {
        Options {
            mode,
            unchecked: std::collections::BTreeSet::new(),
        }
    }

    /// Marks `names` as trusted (software checks elided).
    #[must_use]
    pub fn with_unchecked<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        names: I,
    ) -> Options {
        self.unchecked.extend(names.into_iter().map(Into::into));
        self
    }
}

impl Default for Options {
    fn default() -> Options {
        Options::mode(Mode::HardBound)
    }
}

/// A compilation failure (front-end or code-generation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<String> for CompileError {
    fn from(message: String) -> CompileError {
        CompileError { message }
    }
}

/// Compiles Cb source to an executable [`Program`].
///
/// # Errors
///
/// Returns a [`CompileError`] for front-end errors or code-generation
/// limits (e.g. expressions needing more than the available temporaries).
pub fn compile_program(source: &str, opts: &Options) -> Result<Program, CompileError> {
    let hir = hardbound_lang::frontend(source)?;
    let program = codegen::generate(&hir, opts)?;
    debug_assert_eq!(
        program.validate(),
        Ok(()),
        "codegen must produce valid programs"
    );
    Ok(program)
}
