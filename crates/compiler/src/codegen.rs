//! HIR → ISA code generation.
//!
//! The generator is deliberately simple (locals live in the stack frame,
//! expressions evaluate into a LIFO pool of temporaries) so that the five
//! instrumentation modes differ *only* in the metadata code they emit —
//! exactly the property the paper's evaluation relies on when comparing
//! schemes over the same benchmarks.
//!
//! Mode-specific lowering summary:
//!
//! * **Baseline** — `__setbound(p, n)` evaluates to `p`; no other change.
//! * **MallocOnly** — `__setbound` emits the `setbound` instruction;
//!   nothing else is instrumented (paper §3.2 legacy mode).
//! * **HardBound** — additionally, every pointer *created* to frame or
//!   global storage gets a `setbound`: address-of expressions, array
//!   decay (including member arrays — the §3.2 sub-object narrowing), and
//!   string literals. Dereferences need no code: the hardware checks
//!   implicitly.
//! * **SoftBound** — pointers become value/base/bound register triples.
//!   Each dereference emits an explicit range check branching to an abort
//!   block; pointer loads/stores move metadata through a software shadow
//!   region (`layout::sw_shadow_addr`); pointer-typed locals hold their
//!   metadata in adjacent frame slots; fat-pointer arguments pass their
//!   metadata through a reserved argument-metadata area.
//! * **ObjectTable** — object-creation sites register the allocation with
//!   a host-side splay tree; each dereference issues an `ot_check` of the
//!   effective address (object granularity: sub-object overflows are
//!   invisible by design, reproducing the §2.2 limitation).

use hardbound_lang::ast::{BinaryOp, UnaryOp};
use hardbound_lang::types::Type;
use hardbound_lang::{HExpr, HExprKind, HFunc, HStmt, Hir, Intrinsic};

use hardbound_isa::layout;
use hardbound_isa::{
    BinOp, CmpOp, DataInit, FuncId, Function, FunctionBuilder, Label, Program, Reg, SysCall, Width,
};

use crate::{CompileError, Mode};

/// Bytes reserved after user globals for the fat-pointer argument metadata
/// area used by SoftBound calls (8 args × {base, bound}).
const ARG_META_BYTES: u32 = 64;

/// Number of expression temporaries (`t0..`).
const NTEMPS: usize = 20;

pub(crate) fn generate(hir: &Hir, opts: &crate::Options) -> Result<Program, CompileError> {
    let mode = opts.mode;
    // Globals region layout: user globals, then the argument-metadata
    // area, then the string pool.
    let am_base = layout::GLOBALS_BASE + hir.globals_size.next_multiple_of(8);
    let mut next = am_base + ARG_META_BYTES;
    let mut str_addrs = Vec::new();
    let mut data = Vec::new();
    for s in &hir.strings {
        str_addrs.push(next);
        data.push(DataInit {
            addr: next,
            bytes: s.clone(),
        });
        next = (next + s.len() as u32).next_multiple_of(4);
    }
    let globals_size = next - layout::GLOBALS_BASE;
    for g in &hir.globals {
        if g.init != 0 {
            data.push(DataInit {
                addr: layout::GLOBALS_BASE + g.offset,
                bytes: (g.init as u32).to_le_bytes().to_vec(),
            });
        }
    }

    let cg = Codegen {
        hir,
        mode,
        str_addrs,
        am_base,
        unchecked: &opts.unchecked,
    };
    let mut functions = Vec::new();
    for f in &hir.funcs {
        functions.push(cg.gen_func(f)?);
    }
    functions.push(cg.gen_start());
    let entry = FuncId(functions.len() as u32 - 1);

    Ok(Program {
        functions,
        entry,
        globals_size,
        data,
    })
}

struct Codegen<'a> {
    hir: &'a Hir,
    mode: Mode,
    str_addrs: Vec<u32>,
    am_base: u32,
    unchecked: &'a std::collections::BTreeSet<String>,
}

/// A value held in registers: scalar, or a SoftBound fat pointer.
#[derive(Clone, Copy, Debug)]
enum PVal {
    /// Plain value.
    S(Reg),
    /// SoftBound value/base/bound triple.
    F(Reg, Reg, Reg),
}

impl PVal {
    fn value(self) -> Reg {
        match self {
            PVal::S(r) | PVal::F(r, _, _) => r,
        }
    }
}

/// Base of an lvalue address.
#[derive(Clone, Copy, Debug)]
enum AddrBase {
    /// Frame-direct (`fp + off`): a local variable.
    Fp,
    /// Globals-direct (`gp + off`): a global variable.
    Gp,
    /// A computed pointer (loaded or arithmetic-derived).
    Val(PVal),
}

/// An lvalue address: base plus constant byte offset.
#[derive(Clone, Copy, Debug)]
struct Addr {
    base: AddrBase,
    off: i32,
    /// SoftBound only: this address is exactly a pointer-typed local's
    /// slot, whose metadata lives in the two adjacent frame slots (rather
    /// than the software shadow region).
    triple_slot: bool,
}

impl Addr {
    /// Whether the address is rooted directly in the frame or globals —
    /// the sites where the HardBound compiler must create bounds (paper
    /// §3.2: "pointers the program creates to local or global data").
    fn direct_root(&self) -> bool {
        matches!(self.base, AddrBase::Fp | AddrBase::Gp)
    }
}

struct FnCtx {
    b: FunctionBuilder,
    /// Software checks elided in this function (trusted runtime code).
    trusted: bool,
    local_off: Vec<u32>,
    /// Whether each local is a fat-pointer triple slot (SoftBound mode).
    local_fat: Vec<bool>,
    locals_size: u32,
    scratch_watermark: u32,
    used: [bool; NTEMPS],
    held: Vec<Reg>,
    /// (continue-target, break-target) per enclosing loop.
    loops: Vec<(Label, Label)>,
    /// SoftBound bounds-check failure label (bound at function end).
    fail: Option<Label>,
}

impl FnCtx {
    fn alloc(&mut self) -> Result<Reg, CompileError> {
        for i in 0..NTEMPS {
            if !self.used[i] {
                self.used[i] = true;
                let r = Reg::temp(i);
                self.held.push(r);
                return Ok(r);
            }
        }
        Err(CompileError {
            message: "expression too complex: out of temporaries (simplify the expression)"
                .to_owned(),
        })
    }

    fn free(&mut self, r: Reg) {
        let i = r.index() - Reg::FIRST_TEMP as usize;
        debug_assert!(self.used[i], "double free of {r}");
        self.used[i] = false;
        if let Some(pos) = self.held.iter().rposition(|&h| h == r) {
            self.held.remove(pos);
        }
    }

    fn free_pval(&mut self, v: PVal) {
        match v {
            PVal::S(r) => self.free(r),
            PVal::F(a, b, c) => {
                self.free(c);
                self.free(b);
                self.free(a);
            }
        }
    }

    fn fail_label(&mut self) -> Label {
        if let Some(l) = self.fail {
            l
        } else {
            let l = self.b.new_label();
            self.fail = Some(l);
            l
        }
    }
}

impl<'a> Codegen<'a> {
    fn size_of(&self, ty: &Type) -> u32 {
        self.hir.types.size_of(ty)
    }

    fn width_of(&self, ty: &Type) -> Width {
        if matches!(ty, Type::Char) {
            Width::Byte
        } else {
            Width::Word
        }
    }

    /// Is this type a fat pointer under the current mode?
    fn is_fat(&self, ty: &Type) -> bool {
        self.mode == Mode::SoftBound && ty.is_ptr()
    }

    /// The synthetic entry function: optional object-table registrations
    /// for globals and strings, then `call main; halt(main's result)`.
    fn gen_start(&self) -> Function {
        let mut b = FunctionBuilder::new("_start", 0);
        if self.mode == Mode::ObjectTable {
            for g in &self.hir.globals {
                // JK/RL/DA's static analysis elides non-array objects
                // (paper §2.2); scalars are registered at address-taken
                // sites instead.
                if !matches!(g.ty, Type::Array(_, _) | Type::Struct(_)) {
                    continue;
                }
                b.li(Reg::A0, layout::GLOBALS_BASE + g.offset);
                b.li(Reg::A1, self.size_of(&g.ty));
                b.sys(SysCall::OtRegister);
            }
            for (i, s) in self.hir.strings.iter().enumerate() {
                b.li(Reg::A0, self.str_addrs[i]);
                b.li(Reg::A1, s.len() as u32);
                b.sys(SysCall::OtRegister);
            }
        }
        b.call(FuncId(self.hir.main as u32));
        b.halt();
        b.finish()
    }

    fn gen_func(&self, f: &HFunc) -> Result<Function, CompileError> {
        // Frame layout: locals (parameters first), then spill scratch.
        let mut local_off = Vec::with_capacity(f.locals.len());
        let mut off = 0u32;
        for l in &f.locals {
            let (size, align) = if self.is_fat(&l.ty) {
                (12, 4) // value/base/bound triple in adjacent slots
            } else {
                (
                    self.size_of(&l.ty).max(4),
                    self.hir.types.align_of(&l.ty).max(4),
                )
            };
            off = off.next_multiple_of(align);
            local_off.push(off);
            off += size;
        }

        let local_fat = f.locals.iter().map(|l| self.is_fat(&l.ty)).collect();
        let mut cx = FnCtx {
            b: FunctionBuilder::new(f.name.clone(), f.num_params as u8),
            trusted: self.unchecked.contains(&f.name),
            local_off,
            local_fat,
            locals_size: off.next_multiple_of(4),
            scratch_watermark: 0,
            used: [false; NTEMPS],
            held: Vec::new(),
            loops: Vec::new(),
            fail: None,
        };

        // ObjectTable mode: register aggregate locals as objects at entry,
        // as JK-style schemes do at declarations (their static analysis
        // elides non-array objects; scalars are covered at address-taken
        // sites instead). Deallocation on return is not modelled — stale
        // entries only make the scheme more permissive (see DESIGN.md).
        if self.mode == Mode::ObjectTable {
            for (i, l) in f.locals.iter().enumerate() {
                if matches!(l.ty, Type::Array(_, _) | Type::Struct(_)) {
                    cx.b.addi(Reg::A0, Reg::FP, cx.local_off[i] as i32);
                    cx.b.li(Reg::A1, self.size_of(&l.ty));
                    cx.b.sys(SysCall::OtRegister);
                }
            }
        }

        // Prologue: spill register arguments to their frame slots.
        for (i, l) in f.locals.iter().take(f.num_params).enumerate() {
            let slot = cx.local_off[i] as i32;
            cx.b.store(Width::Word, Reg::arg(i), Reg::FP, slot);
            if self.is_fat(&l.ty) {
                // Fat-pointer argument metadata arrives via the
                // argument-metadata area.
                let t = cx.alloc()?;
                cx.b.li(t, self.am_base + 8 * i as u32);
                let m = cx.alloc()?;
                cx.b.load(Width::Word, m, t, 0);
                cx.b.store(Width::Word, m, Reg::FP, slot + 4);
                cx.b.load(Width::Word, m, t, 4);
                cx.b.store(Width::Word, m, Reg::FP, slot + 8);
                cx.free(m);
                cx.free(t);
            }
        }

        self.gen_stmts(&mut cx, &f.body)?;

        // Fallback terminator (unreachable when the body always returns).
        cx.b.li(Reg::A0, 0);
        cx.b.ret();

        // SoftBound failure block.
        if let Some(fail) = cx.fail {
            cx.b.bind(fail);
            cx.b.li(Reg::A0, 1);
            cx.b.sys(SysCall::Abort);
        }

        debug_assert!(cx.held.is_empty(), "leaked temporaries in `{}`", f.name);
        let frame = cx.locals_size + cx.scratch_watermark;
        cx.b.set_frame_size(frame);
        Ok(cx.b.finish())
    }

    fn gen_stmts(&self, cx: &mut FnCtx, stmts: &[HStmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.gen_stmt(cx, s)?;
        }
        Ok(())
    }

    fn gen_stmt(&self, cx: &mut FnCtx, s: &HStmt) -> Result<(), CompileError> {
        match s {
            HStmt::Expr(e) => {
                if let Some(v) = self.eval(cx, e)? {
                    cx.free_pval(v);
                }
            }
            HStmt::Init(id, e) => {
                let ty = e.ty.clone();
                let v = self.eval_expect(cx, e)?;
                let addr = Addr {
                    base: AddrBase::Fp,
                    off: cx.local_off[id.0 as usize] as i32,
                    triple_slot: self.is_fat(&ty),
                };
                self.store_through(cx, addr, v, &ty)?;
                self.free_maybe_temp(cx, v);
            }
            HStmt::If { cond, then, els } => {
                let c = self.eval_expect(cx, cond)?;
                let lelse = cx.b.new_label();
                cx.b.branch(CmpOp::Eq, c.value(), 0, lelse);
                cx.free_pval(c);
                self.gen_stmts(cx, then)?;
                if els.is_empty() {
                    cx.b.bind(lelse);
                } else {
                    let lend = cx.b.new_label();
                    cx.b.jump(lend);
                    cx.b.bind(lelse);
                    self.gen_stmts(cx, els)?;
                    cx.b.bind(lend);
                }
            }
            HStmt::While { cond, body, step } => {
                let lcond = cx.b.bind_label();
                let lend = cx.b.new_label();
                let lstep = cx.b.new_label();
                if let Some(c) = cond {
                    let cv = self.eval_expect(cx, c)?;
                    cx.b.branch(CmpOp::Eq, cv.value(), 0, lend);
                    cx.free_pval(cv);
                }
                cx.loops.push((lstep, lend));
                self.gen_stmts(cx, body)?;
                cx.loops.pop();
                cx.b.bind(lstep);
                if let Some(st) = step {
                    if let Some(v) = self.eval(cx, st)? {
                        cx.free_pval(v);
                    }
                }
                cx.b.jump(lcond);
                cx.b.bind(lend);
            }
            HStmt::Return(value) => {
                if let Some(v) = value {
                    let ty = v.ty.clone();
                    let pv = self.eval_expect(cx, v)?;
                    if let PVal::F(r, b, d) = pv {
                        // Fat-pointer return metadata goes through the
                        // argument-metadata area, slot 0.
                        let t = cx.alloc()?;
                        cx.b.li(t, self.am_base);
                        cx.b.store(Width::Word, b, t, 0);
                        cx.b.store(Width::Word, d, t, 4);
                        cx.free(t);
                        cx.b.mov(Reg::A0, r);
                    } else {
                        cx.b.mov(Reg::A0, pv.value());
                    }
                    cx.free_pval(pv);
                    let _ = ty;
                }
                cx.b.ret();
            }
            HStmt::Break => {
                let (_, lend) = *cx.loops.last().expect("sema validated loop nesting");
                cx.b.jump(lend);
            }
            HStmt::Continue => {
                let (lstep, _) = *cx.loops.last().expect("sema validated loop nesting");
                cx.b.jump(lstep);
            }
        }
        Ok(())
    }

    // ---- expression evaluation ------------------------------------------

    fn eval_expect(&self, cx: &mut FnCtx, e: &HExpr) -> Result<PVal, CompileError> {
        self.eval(cx, e)?.ok_or_else(|| CompileError {
            message: "void expression used as a value".to_owned(),
        })
    }

    /// Evaluates an rvalue; `None` for void expressions.
    fn eval(&self, cx: &mut FnCtx, e: &HExpr) -> Result<Option<PVal>, CompileError> {
        match &e.kind {
            HExprKind::Int(v) => {
                let t = cx.alloc()?;
                cx.b.li(t, *v as u32);
                Ok(Some(self.wrap_null(cx, &e.ty, t)?))
            }
            HExprKind::Str(i) => {
                let addr = self.str_addrs[*i];
                let len = self.hir.strings[*i].len() as i32;
                let t = cx.alloc()?;
                cx.b.li(t, addr);
                match self.mode {
                    Mode::HardBound => {
                        cx.b.setbound_imm(t, t, len);
                        Ok(Some(PVal::S(t)))
                    }
                    Mode::SoftBound => {
                        let b = cx.alloc()?;
                        cx.b.li(b, addr);
                        let d = cx.alloc()?;
                        cx.b.li(d, addr.wrapping_add(len as u32));
                        Ok(Some(PVal::F(t, b, d)))
                    }
                    _ => Ok(Some(PVal::S(t))),
                }
            }
            HExprKind::Local(_)
            | HExprKind::Global(_)
            | HExprKind::Deref(_)
            | HExprKind::Index(_, _)
            | HExprKind::Member(_, _)
            | HExprKind::Arrow(_, _) => {
                let addr = self.eval_addr(cx, e)?;
                let v = self.load_through(cx, addr, &e.ty)?;
                self.free_addr_keep(cx, addr, v);
                Ok(Some(v))
            }
            HExprKind::Unary(op, inner) => {
                let v = self.eval_expect(cx, inner)?;
                let r = v.value();
                match op {
                    UnaryOp::Neg => cx.b.bin(BinOp::Sub, r, Reg::ZERO, r),
                    UnaryOp::Not => cx.b.cmp(CmpOp::Eq, r, r, 0),
                    UnaryOp::BitNot => cx.b.bin(BinOp::Xor, r, r, -1),
                }
                // The result is an integer; drop any fat metadata.
                Ok(Some(self.demote(cx, v)))
            }
            HExprKind::Binary(op, lhs, rhs) => self.eval_binary(cx, e, *op, lhs, rhs),
            HExprKind::LogicalAnd(a, bb) => self.eval_logical(cx, a, bb, true),
            HExprKind::LogicalOr(a, bb) => self.eval_logical(cx, a, bb, false),
            HExprKind::Assign(lhs, rhs) => {
                let addr = self.eval_addr(cx, lhs)?;
                let v = self.eval_expect(cx, rhs)?;
                self.store_through(cx, addr, v, &lhs.ty)?;
                self.free_addr_keep(cx, addr, v);
                Ok(Some(v))
            }
            HExprKind::Cond(c, t, f) => {
                let cv = self.eval_expect(cx, c)?;
                let lelse = cx.b.new_label();
                let lend = cx.b.new_label();
                cx.b.branch(CmpOp::Eq, cv.value(), 0, lelse);
                cx.free_pval(cv);
                // Allocate the result shape up front so both arms target
                // the same registers.
                let result = if self.is_fat(&e.ty) {
                    PVal::F(cx.alloc()?, cx.alloc()?, cx.alloc()?)
                } else {
                    PVal::S(cx.alloc()?)
                };
                let tv = self.eval_expect(cx, t)?;
                self.move_into(cx, result, tv);
                cx.b.jump(lend);
                cx.b.bind(lelse);
                let fv = self.eval_expect(cx, f)?;
                self.move_into(cx, result, fv);
                cx.b.bind(lend);
                Ok(Some(result))
            }
            HExprKind::AddrOf(lv) => {
                let addr = self.eval_addr(cx, lv)?;
                let size = self.size_of(&lv.ty);
                let direct = addr.direct_root();
                let v = self.materialize(cx, addr, size, direct)?;
                if self.mode == Mode::ObjectTable && direct {
                    // JK-style schemes track every address-taken object.
                    cx.b.mov(Reg::A0, v.value());
                    cx.b.li(Reg::A1, size);
                    cx.b.sys(SysCall::OtRegister);
                }
                Ok(Some(v))
            }
            HExprKind::Decay(arr) => {
                // Array decay: the §3.2 narrowing site — the pointer gets
                // exactly the array's extent, in every protecting mode.
                let addr = self.eval_addr(cx, arr)?;
                let size = self.size_of(&arr.ty);
                // ObjectTable mode registers whole objects at declaration
                // (function entry / _start), so decay emits nothing extra:
                // a member-array pointer checks against its *containing*
                // object — exactly the §2.2 sub-object blindness.
                Ok(Some(self.materialize(cx, addr, size, true)?))
            }
            HExprKind::Call(idx, args) => self.eval_call(cx, *idx, args, &e.ty),
            HExprKind::Intrinsic(which, args) => self.eval_intrinsic(cx, *which, args, &e.ty),
            HExprKind::Cast(inner) => self.eval_cast(cx, inner, &e.ty),
        }
    }

    /// Fat null pointers: an integer literal converted to a pointer in
    /// SoftBound mode carries `{0, 0}` metadata so any dereference fails.
    fn wrap_null(&self, cx: &mut FnCtx, ty: &Type, t: Reg) -> Result<PVal, CompileError> {
        if self.is_fat(ty) {
            let b = cx.alloc()?;
            cx.b.li(b, 0);
            let d = cx.alloc()?;
            cx.b.li(d, 0);
            Ok(PVal::F(t, b, d))
        } else {
            Ok(PVal::S(t))
        }
    }

    /// Frees the metadata registers of a fat value, keeping the value.
    fn demote(&self, cx: &mut FnCtx, v: PVal) -> PVal {
        match v {
            PVal::S(r) => PVal::S(r),
            PVal::F(r, b, d) => {
                cx.free(d);
                cx.free(b);
                PVal::S(r)
            }
        }
    }

    fn move_into(&self, cx: &mut FnCtx, dst: PVal, src: PVal) {
        match (dst, src) {
            (PVal::S(d), s) => {
                cx.b.mov(d, s.value());
                cx.free_pval(s);
            }
            (PVal::F(dv, db, dd), PVal::F(sv, sb, sd)) => {
                cx.b.mov(dv, sv);
                cx.b.mov(db, sb);
                cx.b.mov(dd, sd);
                cx.free_pval(src);
                let _ = (dv, db, dd, sv, sb, sd);
            }
            (PVal::F(dv, db, dd), PVal::S(sv)) => {
                // Scalar flowing into a fat slot (e.g. a null literal that
                // sema already coerced): null metadata.
                cx.b.mov(dv, sv);
                cx.b.li(db, 0);
                cx.b.li(dd, 0);
                cx.free(sv);
            }
        }
    }

    /// Frees the address temporaries unless they are aliased by `keep`
    /// (loads reuse the pointer register for the result).
    fn free_addr_keep(&self, cx: &mut FnCtx, addr: Addr, keep: PVal) {
        let kept: &[Reg] = match keep {
            PVal::S(r) => &[r],
            PVal::F(..) => &[], // fat results never alias the address regs
        };
        if let AddrBase::Val(v) = addr.base {
            match v {
                PVal::S(r) => {
                    if !kept.contains(&r) {
                        cx.free(r);
                    }
                }
                PVal::F(a, b, c) => {
                    for r in [c, b, a] {
                        if !kept.contains(&r) {
                            cx.free(r);
                        }
                    }
                }
            }
        }
        let _ = keep;
    }

    // ---- lvalue addressing ----------------------------------------------

    fn eval_addr(&self, cx: &mut FnCtx, e: &HExpr) -> Result<Addr, CompileError> {
        match &e.kind {
            HExprKind::Local(id) => Ok(Addr {
                base: AddrBase::Fp,
                off: cx.local_off[id.0 as usize] as i32,
                triple_slot: cx.local_fat[id.0 as usize],
            }),
            HExprKind::Global(id) => Ok(Addr {
                base: AddrBase::Gp,
                off: self.hir.globals[id.0 as usize].offset as i32,
                triple_slot: false,
            }),
            HExprKind::Deref(p) => {
                let pv = self.eval_expect(cx, p)?;
                Ok(Addr {
                    base: AddrBase::Val(pv),
                    off: 0,
                    triple_slot: false,
                })
            }
            HExprKind::Index(base, index) => {
                let pv = self.eval_expect(cx, base)?;
                let elem = self.size_of(&e.ty.clone());
                if let HExprKind::Int(c) = index.kind {
                    // Constant index folds into the addressing offset.
                    let off = c
                        .checked_mul(i64::from(elem))
                        .filter(|v| i32::try_from(*v).is_ok())
                        .ok_or_else(|| CompileError {
                            message: "constant index overflows addressing".to_owned(),
                        })?;
                    return Ok(Addr {
                        base: AddrBase::Val(pv),
                        off: off as i32,
                        triple_slot: false,
                    });
                }
                let iv = self.eval_expect(cx, index)?;
                let ir = iv.value();
                self.scale(cx, ir, elem);
                let checked = self.mode == Mode::ObjectTable && !cx.trusted;
                if checked {
                    cx.b.mov(Reg::A0, pv.value());
                }
                cx.b.add(ir, pv.value(), ir);
                if checked {
                    cx.b.mov(Reg::A1, ir);
                    cx.b.sys(SysCall::OtCheckArith);
                }
                // The sum becomes the new pointer value; keep metadata.
                let combined = match pv {
                    PVal::S(r) => {
                        // Move the sum into the pointer register so the
                        // hardware's propagation (Figure 3 B) applies —
                        // and free the index temp.
                        cx.b.mov(r, ir);
                        cx.free(ir);
                        PVal::S(r)
                    }
                    PVal::F(r, b, d) => {
                        cx.b.mov(r, ir);
                        cx.free(ir);
                        PVal::F(r, b, d)
                    }
                };
                Ok(Addr {
                    base: AddrBase::Val(combined),
                    off: 0,
                    triple_slot: false,
                })
            }
            HExprKind::Member(base, fr) => {
                let mut addr = self.eval_addr(cx, base)?;
                addr.off += fr.offset as i32;
                // A struct field is never a whole pointer-typed local.
                addr.triple_slot = false;
                Ok(addr)
            }
            HExprKind::Arrow(base, fr) => {
                let pv = self.eval_expect(cx, base)?;
                Ok(Addr {
                    base: AddrBase::Val(pv),
                    off: fr.offset as i32,
                    triple_slot: false,
                })
            }
            other => Err(CompileError {
                message: format!("not an lvalue: {other:?}"),
            }),
        }
    }

    /// Turns an [`Addr`] into a pointer value, optionally creating bounds.
    ///
    /// `narrow` requests bounds creation of `size` bytes in the protecting
    /// modes; it is `true` at §3.2 instrumentation sites (frame/global
    /// roots and array decay) and `false` for heap-derived addresses,
    /// whose bounds already propagate from the original pointer.
    fn materialize(
        &self,
        cx: &mut FnCtx,
        addr: Addr,
        size: u32,
        narrow: bool,
    ) -> Result<PVal, CompileError> {
        let v = match addr.base {
            AddrBase::Fp => {
                let t = cx.alloc()?;
                cx.b.addi(t, Reg::FP, addr.off);
                PVal::S(t)
            }
            AddrBase::Gp => {
                let t = cx.alloc()?;
                cx.b.addi(t, Reg::GP, addr.off);
                PVal::S(t)
            }
            AddrBase::Val(pv) => {
                if addr.off != 0 {
                    cx.b.addi(pv.value(), pv.value(), addr.off);
                }
                pv
            }
        };
        if !narrow {
            // SoftBound still needs *some* metadata on a scalar-shaped
            // address (possible when taking &local without narrowing —
            // does not happen today, but keep the shape correct).
            if self.mode == Mode::SoftBound {
                if let PVal::S(r) = v {
                    let b = cx.alloc()?;
                    cx.b.mov(b, r);
                    let d = cx.alloc()?;
                    cx.b.addi(d, r, size as i32);
                    return Ok(PVal::F(r, b, d));
                }
            }
            return Ok(v);
        }
        match self.mode {
            Mode::HardBound => {
                let r = v.value();
                cx.b.setbound_imm(r, r, size as i32);
                Ok(v)
            }
            Mode::SoftBound => match v {
                PVal::S(r) => {
                    let b = cx.alloc()?;
                    cx.b.mov(b, r);
                    let d = cx.alloc()?;
                    cx.b.addi(d, r, size as i32);
                    Ok(PVal::F(r, b, d))
                }
                PVal::F(r, b, d) => {
                    // Narrow existing fat metadata (member-array decay).
                    cx.b.mov(b, r);
                    cx.b.addi(d, r, size as i32);
                    Ok(PVal::F(r, b, d))
                }
            },
            // Baseline, MallocOnly and ObjectTable create no bounds here
            // (ObjectTable registration is handled at the Decay site).
            _ => Ok(v),
        }
    }

    // ---- loads and stores -----------------------------------------------

    /// Emits the mode-specific checking/advice code for an access at
    /// `addr` of `width`, leaving the access itself to the caller.
    /// Returns the effective-address register when one had to be
    /// materialized (caller must free it).
    fn check_access(
        &self,
        cx: &mut FnCtx,
        addr: Addr,
        width: u32,
    ) -> Result<Option<Reg>, CompileError> {
        if cx.trusted {
            return Ok(None);
        }
        match (self.mode, addr.base) {
            (Mode::SoftBound, AddrBase::Val(PVal::F(v, b, d))) => {
                // if (ea < base || ea + width > bound) abort;
                let fail = cx.fail_label();
                let ea = cx.alloc()?;
                cx.b.addi(ea, v, addr.off);
                cx.b.branch(CmpOp::LtU, ea, b, fail);
                cx.b.addi(ea, ea, width as i32);
                // bound < ea+width  ⇒  out of bounds.
                cx.b.branch(CmpOp::LtU, d, ea, fail);
                cx.free(ea);
                Ok(None)
            }
            (Mode::ObjectTable, AddrBase::Val(pv)) => {
                // Object-table lookup: the effective address must lie in
                // the object covering the pointer value (JK's
                // "dereferences fall within the original object").
                cx.b.mov(Reg::A0, pv.value());
                cx.b.addi(Reg::A1, pv.value(), addr.off);
                cx.b.sys(SysCall::OtCheck);
                Ok(None)
            }
            // Frame/global-direct accesses are compiler-generated and
            // statically safe; software schemes do not check them
            // (matching CCured's SAFE pointers / JK's source-level
            // instrumentation). HardBound checks in hardware for free.
            _ => Ok(None),
        }
    }

    fn load_through(&self, cx: &mut FnCtx, addr: Addr, ty: &Type) -> Result<PVal, CompileError> {
        let width = self.width_of(ty);
        self.check_access(cx, addr, width.bytes())?;
        let (base_reg, off) = match addr.base {
            AddrBase::Fp => (Reg::FP, addr.off),
            AddrBase::Gp => (Reg::GP, addr.off),
            AddrBase::Val(pv) => (pv.value(), addr.off),
        };
        let t = cx.alloc()?;
        cx.b.load(width, t, base_reg, off);
        if !self.is_fat(ty) {
            return Ok(PVal::S(t));
        }
        // SoftBound pointer load: fetch metadata.
        let b = cx.alloc()?;
        let d = cx.alloc()?;
        if addr.triple_slot {
            // Pointer-typed locals keep their triple in the frame.
            cx.b.load(Width::Word, b, Reg::FP, off + 4);
            cx.b.load(Width::Word, d, Reg::FP, off + 8);
        } else {
            let sh = self.sw_shadow_reg(cx, addr)?;
            cx.b.load(Width::Word, b, sh, 0);
            cx.b.load(Width::Word, d, sh, 4);
            cx.free(sh);
        }
        Ok(PVal::F(t, b, d))
    }

    fn store_through(
        &self,
        cx: &mut FnCtx,
        addr: Addr,
        v: PVal,
        ty: &Type,
    ) -> Result<(), CompileError> {
        let width = self.width_of(ty);
        self.check_access(cx, addr, width.bytes())?;
        let (base_reg, off) = match addr.base {
            AddrBase::Fp => (Reg::FP, addr.off),
            AddrBase::Gp => (Reg::GP, addr.off),
            AddrBase::Val(pv) => (pv.value(), addr.off),
        };
        cx.b.store(width, v.value(), base_reg, off);
        if let PVal::F(_, b, d) = v {
            if self.is_fat(ty) {
                if addr.triple_slot {
                    cx.b.store(Width::Word, b, Reg::FP, off + 4);
                    cx.b.store(Width::Word, d, Reg::FP, off + 8);
                } else {
                    let sh = self.sw_shadow_reg(cx, addr)?;
                    cx.b.store(Width::Word, b, sh, 0);
                    cx.b.store(Width::Word, d, sh, 4);
                    cx.free(sh);
                }
            }
        }
        Ok(())
    }

    /// Computes the software-shadow address for `addr` into a fresh
    /// register: `SW_SHADOW_BASE + ea * 2` (split metadata, CCured-style).
    fn sw_shadow_reg(&self, cx: &mut FnCtx, addr: Addr) -> Result<Reg, CompileError> {
        let t = cx.alloc()?;
        match addr.base {
            AddrBase::Fp => cx.b.addi(t, Reg::FP, addr.off),
            AddrBase::Gp => cx.b.addi(t, Reg::GP, addr.off),
            AddrBase::Val(pv) => cx.b.addi(t, pv.value(), addr.off),
        }
        cx.b.bin(BinOp::Shl, t, t, 1);
        cx.b.addi(t, t, layout::SW_SHADOW_BASE as i32);
        Ok(t)
    }

    // ---- operators --------------------------------------------------------

    fn scale(&self, cx: &mut FnCtx, r: Reg, elem: u32) {
        if elem == 1 {
        } else if elem.is_power_of_two() {
            cx.b.bin(BinOp::Shl, r, r, elem.trailing_zeros() as i32);
        } else {
            cx.b.bin(BinOp::Mul, r, r, elem as i32);
        }
    }

    fn eval_binary(
        &self,
        cx: &mut FnCtx,
        e: &HExpr,
        op: BinaryOp,
        lhs: &HExpr,
        rhs: &HExpr,
    ) -> Result<Option<PVal>, CompileError> {
        use BinaryOp::*;
        let lt = lhs.ty.decay();
        let rt = rhs.ty.decay();
        let lv = self.eval_expect(cx, lhs)?;
        let rv = self.eval_expect(cx, rhs)?;

        let cmp = |o: BinaryOp| match o {
            Lt => CmpOp::Lt,
            Le => CmpOp::Le,
            Gt => CmpOp::Gt,
            Ge => CmpOp::Ge,
            Eq => CmpOp::Eq,
            Ne => CmpOp::Ne,
            _ => unreachable!(),
        };

        match op {
            Lt | Le | Gt | Ge | Eq | Ne => {
                // Pointer comparisons use the value only (paper §4.4).
                let c = if lt.is_ptr() && rt.is_ptr() {
                    // Unsigned compare for pointers.
                    match op {
                        Lt => CmpOp::LtU,
                        Ge => CmpOp::GeU,
                        Le | Gt => {
                            // a <=u b  ⇔  !(b <u a); emit swapped LtU and
                            // negate via Eq 0 — cheaper: use signed forms,
                            // fine for our sub-2GB address space.
                            cmp(op)
                        }
                        other => cmp(other),
                    }
                } else {
                    cmp(op)
                };
                let lr = lv.value();
                cx.b.cmp(c, lr, lr, rv.value());
                cx.free_pval(rv);
                Ok(Some(self.demote(cx, lv)))
            }
            Add | Sub => {
                let elem_of = |t: &Type| t.pointee().map(|p| self.size_of(p)).unwrap_or(1);
                match (lt.is_ptr(), rt.is_ptr()) {
                    (true, true) => {
                        // Pointer difference: (a - b) / elem.
                        debug_assert_eq!(op, Sub);
                        let lr = lv.value();
                        cx.b.sub(lr, lr, rv.value());
                        let elem = elem_of(&lt);
                        if elem > 1 {
                            if elem.is_power_of_two() {
                                cx.b.bin(BinOp::Sra, lr, lr, elem.trailing_zeros() as i32);
                            } else {
                                cx.b.bin(BinOp::Div, lr, lr, elem as i32);
                            }
                        }
                        cx.free_pval(rv);
                        Ok(Some(self.demote(cx, lv)))
                    }
                    (true, false) => {
                        let elem = elem_of(&lt);
                        let rr = rv.value();
                        self.scale(cx, rr, elem);
                        let lr = lv.value();
                        let checked = self.mode == Mode::ObjectTable && !cx.trusted;
                        if checked {
                            cx.b.mov(Reg::A0, lr);
                        }
                        cx.b.bin(if op == Add { BinOp::Add } else { BinOp::Sub }, lr, lr, rr);
                        if checked {
                            // JK checks that pointer arithmetic stays in
                            // the original object (§2.2).
                            cx.b.mov(Reg::A1, lr);
                            cx.b.sys(SysCall::OtCheckArith);
                        }
                        cx.free_pval(rv);
                        Ok(Some(lv))
                    }
                    (false, true) => {
                        debug_assert_eq!(op, Add);
                        let elem = elem_of(&rt);
                        let lr = lv.value();
                        self.scale(cx, lr, elem);
                        let rr = rv.value();
                        let checked = self.mode == Mode::ObjectTable && !cx.trusted;
                        if checked {
                            cx.b.mov(Reg::A0, rr);
                        }
                        cx.b.add(rr, rr, lr);
                        if checked {
                            cx.b.mov(Reg::A1, rr);
                            cx.b.sys(SysCall::OtCheckArith);
                        }
                        cx.free_pval(lv);
                        Ok(Some(rv))
                    }
                    (false, false) => {
                        let lr = lv.value();
                        cx.b.bin(
                            if op == Add { BinOp::Add } else { BinOp::Sub },
                            lr,
                            lr,
                            rv.value(),
                        );
                        cx.free_pval(rv);
                        Ok(Some(lv))
                    }
                }
            }
            Mul | Div | Rem | BitAnd | BitOr | BitXor | Shl | Shr => {
                let bop = match op {
                    Mul => BinOp::Mul,
                    Div => BinOp::Div,
                    Rem => BinOp::Rem,
                    BitAnd => BinOp::And,
                    BitOr => BinOp::Or,
                    BitXor => BinOp::Xor,
                    Shl => BinOp::Shl,
                    Shr => BinOp::Sra, // C's >> on signed int
                    _ => unreachable!(),
                };
                let lr = lv.value();
                cx.b.bin(bop, lr, lr, rv.value());
                cx.free_pval(rv);
                Ok(Some(self.demote(cx, lv)))
            }
        }
        .inspect(|_v| {
            let _ = e;
        })
    }

    fn eval_logical(
        &self,
        cx: &mut FnCtx,
        a: &HExpr,
        b: &HExpr,
        is_and: bool,
    ) -> Result<Option<PVal>, CompileError> {
        let result = cx.alloc()?;
        let lshort = cx.b.new_label();
        let lend = cx.b.new_label();
        let av = self.eval_expect(cx, a)?;
        let short_cmp = if is_and { CmpOp::Eq } else { CmpOp::Ne };
        cx.b.branch(short_cmp, av.value(), 0, lshort);
        cx.free_pval(av);
        let bv = self.eval_expect(cx, b)?;
        cx.b.cmp(CmpOp::Ne, result, bv.value(), 0);
        cx.free_pval(bv);
        cx.b.jump(lend);
        cx.b.bind(lshort);
        cx.b.li(result, u32::from(!is_and));
        cx.b.bind(lend);
        Ok(Some(PVal::S(result)))
    }

    fn eval_cast(
        &self,
        cx: &mut FnCtx,
        inner: &HExpr,
        to: &Type,
    ) -> Result<Option<PVal>, CompileError> {
        let Some(v) = self.eval(cx, inner)? else {
            return Ok(None);
        };
        match to {
            Type::Void => {
                cx.free_pval(v);
                Ok(None)
            }
            Type::Char => {
                // Truncate to 8 bits (C's (char)x, unsigned char model).
                let v = self.demote(cx, v);
                cx.b.bin(BinOp::And, v.value(), v.value(), 0xFF);
                Ok(Some(v))
            }
            Type::Int => {
                // Pointer-to-int and int-to-int are value-preserving; the
                // hardware keeps propagating metadata through the register
                // (paper §6.1's cast walkthrough).
                Ok(Some(self.demote(cx, v)))
            }
            Type::Ptr(_) => {
                if self.is_fat(to) {
                    match v {
                        PVal::F(..) => Ok(Some(v)), // ptr → ptr keeps metadata
                        PVal::S(r) => {
                            // int → ptr: null metadata (strict, like
                            // CCured's runtime behaviour for forged
                            // pointers).
                            let b = cx.alloc()?;
                            cx.b.li(b, 0);
                            let d = cx.alloc()?;
                            cx.b.li(d, 0);
                            Ok(Some(PVal::F(r, b, d)))
                        }
                    }
                } else {
                    // Casts are no-ops to HardBound (§6.1).
                    Ok(Some(v))
                }
            }
            other => Err(CompileError {
                message: format!("unsupported cast target {other}"),
            }),
        }
    }

    // ---- calls ------------------------------------------------------------

    fn eval_call(
        &self,
        cx: &mut FnCtx,
        idx: usize,
        args: &[HExpr],
        ret: &Type,
    ) -> Result<Option<PVal>, CompileError> {
        // Evaluate all arguments into temporaries first.
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval_expect(cx, a)?);
        }
        // Marshal: values into argument registers, fat metadata into the
        // argument-metadata area.
        for (i, v) in vals.iter().enumerate() {
            if let PVal::F(_, b, d) = v {
                let t = cx.alloc()?;
                cx.b.li(t, self.am_base + 8 * i as u32);
                cx.b.store(Width::Word, *b, t, 0);
                cx.b.store(Width::Word, *d, t, 4);
                cx.free(t);
            }
        }
        for (i, v) in vals.iter().enumerate() {
            cx.b.mov(Reg::arg(i), v.value());
        }
        for v in vals.into_iter().rev() {
            cx.free_pval(v);
        }
        // Spill every live temporary around the call (temps are
        // caller-saved), call, restore.
        let held = cx.held.clone();
        let spill_bytes = (held.len() as u32) * 4;
        cx.scratch_watermark = cx.scratch_watermark.max(spill_bytes);
        let base = cx.locals_size as i32;
        for (i, r) in held.iter().enumerate() {
            cx.b.store(Width::Word, *r, Reg::FP, base + 4 * i as i32);
        }
        cx.b.call(FuncId(idx as u32));
        for (i, r) in held.iter().enumerate() {
            cx.b.load(Width::Word, *r, Reg::FP, base + 4 * i as i32);
        }
        // Capture the result.
        if matches!(ret, Type::Void) {
            return Ok(None);
        }
        let t = cx.alloc()?;
        cx.b.mov(t, Reg::A0);
        if self.is_fat(ret) {
            let b = cx.alloc()?;
            let d = cx.alloc()?;
            let tt = cx.alloc()?;
            cx.b.li(tt, self.am_base);
            cx.b.load(Width::Word, b, tt, 0);
            cx.b.load(Width::Word, d, tt, 4);
            cx.free(tt);
            Ok(Some(PVal::F(t, b, d)))
        } else {
            Ok(Some(PVal::S(t)))
        }
    }

    fn eval_intrinsic(
        &self,
        cx: &mut FnCtx,
        which: Intrinsic,
        args: &[HExpr],
        ret: &Type,
    ) -> Result<Option<PVal>, CompileError> {
        match which {
            Intrinsic::SetBound => {
                let p = self.eval_expect(cx, &args[0])?;
                let n = self.eval_expect(cx, &args[1])?;
                let result = match self.mode {
                    Mode::Baseline => {
                        cx.free_pval(n);
                        p
                    }
                    Mode::MallocOnly | Mode::HardBound => {
                        let r = p.value();
                        cx.b.setbound(r, r, n.value());
                        cx.free_pval(n);
                        p
                    }
                    Mode::SoftBound => {
                        let v = p.value();
                        let (b, d) = match p {
                            PVal::F(_, b, d) => (b, d),
                            PVal::S(_) => (cx.alloc()?, cx.alloc()?),
                        };
                        cx.b.mov(b, v);
                        cx.b.add(d, v, n.value());
                        cx.free_pval(n);
                        PVal::F(v, b, d)
                    }
                    Mode::ObjectTable => {
                        cx.b.mov(Reg::A0, p.value());
                        cx.b.mov(Reg::A1, n.value());
                        cx.b.sys(SysCall::OtRegister);
                        cx.free_pval(n);
                        p
                    }
                };
                Ok(Some(result))
            }
            Intrinsic::Unbound => {
                let p = self.eval_expect(cx, &args[0])?;
                match self.mode {
                    Mode::MallocOnly | Mode::HardBound => {
                        let r = p.value();
                        cx.b.unbound(r, r);
                        Ok(Some(p))
                    }
                    Mode::SoftBound => {
                        let v = p.value();
                        let (b, d) = match p {
                            PVal::F(_, b, d) => (b, d),
                            PVal::S(_) => (cx.alloc()?, cx.alloc()?),
                        };
                        cx.b.li(b, 0);
                        cx.b.li(d, u32::MAX);
                        Ok(Some(PVal::F(v, b, d)))
                    }
                    _ => Ok(Some(p)),
                }
            }
            Intrinsic::FreeBound => {
                let p = self.eval_expect(cx, &args[0])?;
                if self.mode == Mode::ObjectTable {
                    cx.b.mov(Reg::A0, p.value());
                    cx.b.sys(SysCall::OtUnregister);
                }
                cx.free_pval(p);
                Ok(None)
            }
            Intrinsic::ReadBase | Intrinsic::ReadBound => {
                let p = self.eval_expect(cx, &args[0])?;
                let is_base = which == Intrinsic::ReadBase;
                match (self.mode, p) {
                    (Mode::MallocOnly | Mode::HardBound, _) => {
                        let r = p.value();
                        if is_base {
                            cx.b.readbase(r, r);
                        } else {
                            cx.b.readbound(r, r);
                        }
                        Ok(Some(self.demote(cx, p)))
                    }
                    (Mode::SoftBound, PVal::F(v, b, d)) => {
                        cx.b.mov(v, if is_base { b } else { d });
                        Ok(Some(self.demote(cx, PVal::F(v, b, d))))
                    }
                    _ => {
                        let r = p.value();
                        cx.b.li(r, 0);
                        Ok(Some(self.demote(cx, p)))
                    }
                }
            }
            Intrinsic::Mulh => {
                let a = self.eval_expect(cx, &args[0])?;
                let b = self.eval_expect(cx, &args[1])?;
                let r = a.value();
                cx.b.bin(BinOp::Mulh, r, r, b.value());
                cx.free_pval(b);
                Ok(Some(a))
            }
            Intrinsic::PrintInt | Intrinsic::PrintChar | Intrinsic::Halt => {
                let v = self.eval_expect(cx, &args[0])?;
                cx.b.mov(Reg::A0, v.value());
                cx.free_pval(v);
                cx.b.sys(match which {
                    Intrinsic::PrintInt => SysCall::PrintInt,
                    Intrinsic::PrintChar => SysCall::PrintChar,
                    _ => SysCall::Halt,
                });
                let _ = ret;
                Ok(None)
            }
        }
    }

    /// Frees `v` (store results are owned by the statement layer; this is
    /// a naming convenience for the `Init` path).
    fn free_maybe_temp(&self, cx: &mut FnCtx, v: PVal) {
        cx.free_pval(v);
    }
}
