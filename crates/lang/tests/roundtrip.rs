//! Generative round-trip property: for random expression trees,
//! `parse(print(e)) == e`. The printer parenthesizes fully and the parser
//! has no parenthesis node, so the round trip must be exact.

use hardbound_lang::ast::{BinaryOp, Expr, Stmt, TypeExpr, UnaryOp};
use hardbound_lang::parse;
use hardbound_lang::pretty::print_expr;
use proptest::prelude::*;

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Rem),
        Just(BinaryOp::BitAnd),
        Just(BinaryOp::BitOr),
        Just(BinaryOp::BitXor),
        Just(BinaryOp::Shl),
        Just(BinaryOp::Shr),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Ne),
    ]
}

fn arb_type() -> impl Strategy<Value = TypeExpr> {
    prop_oneof![
        Just(TypeExpr::Int),
        Just(TypeExpr::Char),
        Just(TypeExpr::Int.ptr()),
        Just(TypeExpr::Char.ptr()),
        Just(TypeExpr::Ptr(Box::new(TypeExpr::Void))),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let ident = prop_oneof![Just("x"), Just("y"), Just("ptr"), Just("node2")]
        .prop_map(|s: &str| Expr::Ident(s.to_owned()));
    let leaf = prop_oneof![
        (0i64..1_000_000).prop_map(Expr::Int),
        ident,
        Just(Expr::Str(b"hi\n".to_vec())),
        arb_type().prop_map(Expr::Sizeof),
    ];
    leaf.prop_recursive(5, 32, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::LogicalAnd(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::LogicalOr(Box::new(a), Box::new(b))),
            inner
                .clone()
                .prop_map(|a| Expr::Unary(UnaryOp::Neg, Box::new(a))),
            inner
                .clone()
                .prop_map(|a| Expr::Unary(UnaryOp::Not, Box::new(a))),
            inner
                .clone()
                .prop_map(|a| Expr::Unary(UnaryOp::BitNot, Box::new(a))),
            inner.clone().prop_map(|a| Expr::Deref(Box::new(a))),
            inner.clone().prop_map(|a| Expr::AddrOf(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, i)| Expr::Index(Box::new(a), Box::new(i))),
            inner
                .clone()
                .prop_map(|a| Expr::Member(Box::new(a), "f".to_owned())),
            inner
                .clone()
                .prop_map(|a| Expr::Arrow(Box::new(a), "next".to_owned())),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::Cond(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
            (arb_type(), inner.clone()).prop_map(|(ty, a)| Expr::Cast(ty, Box::new(a))),
            prop::collection::vec(inner.clone(), 0..3)
                .prop_map(|args| Expr::Call("f".to_owned(), args)),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Assign(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_print_roundtrip(expr in arb_expr()) {
        let printed = print_expr(&expr);
        let src = format!("int main() {{ {printed}; }}");
        let unit = parse(&src)
            .unwrap_or_else(|e| panic!("printed expression fails to parse: {e}\n{printed}"));
        let Stmt::Expr(reparsed) = &unit.funcs[0].body[0] else {
            panic!("expected expression statement");
        };
        prop_assert_eq!(reparsed, &expr, "printed: {}", printed);
    }
}
