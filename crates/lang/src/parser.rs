//! Recursive-descent parser for Cb.

use std::fmt;

use crate::ast::{
    BinaryOp, Expr, FieldDecl, FuncDecl, GlobalDecl, Param, Stmt, StructDecl, TypeExpr, UnaryOp,
    Unit,
};
use crate::token::{lex, Span, Tok};

/// A syntax error with its position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Error description.
    pub message: String,
    /// Where it occurred.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::token::LexError> for ParseError {
    fn from(e: crate::token::LexError) -> ParseError {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses a Cb translation unit.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse(source: &str) -> Result<Unit, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.unit()
}

struct Parser {
    tokens: Vec<(Tok, Span)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].0
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].0
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            span: self.span(),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    /// Is the current token the start of a type?
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt | Tok::KwChar | Tok::KwVoid | Tok::KwStruct
        )
    }

    /// Parses a base type plus pointer stars: `int **`, `struct s *`.
    fn type_prefix(&mut self) -> Result<TypeExpr, ParseError> {
        let mut ty = match self.bump() {
            Tok::KwInt => TypeExpr::Int,
            Tok::KwChar => TypeExpr::Char,
            Tok::KwVoid => TypeExpr::Void,
            Tok::KwStruct => TypeExpr::Struct(self.ident()?),
            other => return Err(self.error(format!("expected type, found {other}"))),
        };
        while self.eat(&Tok::Star) {
            ty = ty.ptr();
        }
        Ok(ty)
    }

    /// Applies array suffixes to a declared type: `int a[3][4]` declares an
    /// array of 3 arrays of 4 ints.
    fn array_suffixes(&mut self, base: TypeExpr) -> Result<TypeExpr, ParseError> {
        let mut dims = Vec::new();
        while self.eat(&Tok::LBracket) {
            match self.bump() {
                Tok::Int(n) if n >= 0 && n <= i64::from(u32::MAX) => dims.push(n as u32),
                other => {
                    return Err(self.error(format!("expected constant array length, found {other}")))
                }
            }
            self.expect(&Tok::RBracket)?;
        }
        let mut ty = base;
        for n in dims.into_iter().rev() {
            ty = TypeExpr::Array(Box::new(ty), n);
        }
        Ok(ty)
    }

    fn unit(&mut self) -> Result<Unit, ParseError> {
        let mut unit = Unit::default();
        while !matches!(self.peek(), Tok::Eof) {
            if matches!(self.peek(), Tok::KwStruct)
                && matches!(self.peek2(), Tok::Ident(_))
                && matches!(
                    self.tokens.get(self.pos + 2).map(|t| &t.0),
                    Some(Tok::LBrace)
                )
            {
                unit.structs.push(self.struct_decl()?);
                continue;
            }
            let ty = self.type_prefix()?;
            let name = self.ident()?;
            if self.eat(&Tok::LParen) {
                unit.funcs.push(self.func_decl(ty, name)?);
            } else {
                let ty = self.array_suffixes(ty)?;
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi)?;
                unit.globals.push(GlobalDecl { ty, name, init });
            }
        }
        Ok(unit)
    }

    fn struct_decl(&mut self) -> Result<StructDecl, ParseError> {
        self.expect(&Tok::KwStruct)?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let ty = self.type_prefix()?;
            let fname = self.ident()?;
            let ty = self.array_suffixes(ty)?;
            self.expect(&Tok::Semi)?;
            fields.push(FieldDecl { ty, name: fname });
        }
        self.expect(&Tok::Semi)?;
        Ok(StructDecl { name, fields })
    }

    fn func_decl(&mut self, ret: TypeExpr, name: String) -> Result<FuncDecl, ParseError> {
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            // Allow `(void)`.
            if matches!(self.peek(), Tok::KwVoid) && matches!(self.peek2(), Tok::RParen) {
                self.bump();
                self.bump();
            } else {
                loop {
                    let ty = self.type_prefix()?;
                    let pname = self.ident()?;
                    let ty = self.array_suffixes(ty)?;
                    // Array parameters decay to pointers, as in C.
                    let ty = match ty {
                        TypeExpr::Array(elem, _) => TypeExpr::Ptr(elem),
                        other => other,
                    };
                    params.push(Param { ty, name: pname });
                    if !self.eat(&Tok::Comma) {
                        self.expect(&Tok::RParen)?;
                        break;
                    }
                }
            }
        }
        self.expect(&Tok::LBrace)?;
        let body = self.block_body()?;
        Ok(FuncDecl {
            ret,
            name,
            params,
            body,
        })
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.error("unexpected end of input in block".into()));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let ty = self.type_prefix()?;
        let name = self.ident()?;
        let ty = self.array_suffixes(ty)?;
        let init = if self.eat(&Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Decl { ty, name, init })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Tok::LBrace => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat(&Tok::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Stmt::While {
                    cond,
                    body: Box::new(self.stmt()?),
                })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else if self.at_type() {
                    Some(Box::new(self.decl_stmt()?))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if matches!(self.peek(), Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                let step = if matches!(self.peek(), Tok::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::RParen)?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body: Box::new(self.stmt()?),
                })
            }
            Tok::KwReturn => {
                self.bump();
                let value = if matches!(self.peek(), Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(value))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Continue)
            }
            _ if self.at_type() => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    // ----- expressions (precedence climbing) ----------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assign()
    }

    fn assign(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        if self.eat(&Tok::Assign) {
            let rhs = self.assign()?;
            Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.logical_or()?;
        if self.eat(&Tok::Question) {
            let t = self.expr()?;
            self.expect(&Tok::Colon)?;
            let e = self.ternary()?;
            Ok(Expr::Cond(Box::new(cond), Box::new(t), Box::new(e)))
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.logical_and()?;
        while self.eat(&Tok::PipePipe) {
            let rhs = self.logical_and()?;
            e = Expr::LogicalOr(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_or()?;
        while self.eat(&Tok::AmpAmp) {
            let rhs = self.bit_or()?;
            e = Expr::LogicalAnd(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_xor()?;
        while self.eat(&Tok::Pipe) {
            let rhs = self.bit_xor()?;
            e = Expr::Binary(BinaryOp::BitOr, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_and()?;
        while self.eat(&Tok::Caret) {
            let rhs = self.bit_and()?;
            e = Expr::Binary(BinaryOp::BitXor, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while matches!(self.peek(), Tok::Amp) && !matches!(self.peek2(), Tok::Amp) {
            self.bump();
            let rhs = self.equality()?;
            e = Expr::Binary(BinaryOp::BitAnd, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinaryOp::Eq,
                Tok::NotEq => BinaryOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinaryOp::Lt,
                Tok::Le => BinaryOp::Le,
                Tok::Gt => BinaryOp::Gt,
                Tok::Ge => BinaryOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.shift()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinaryOp::Shl,
                Tok::Shr => BinaryOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinaryOp::Add,
                Tok::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinaryOp::Mul,
                Tok::Slash => BinaryOp::Div,
                Tok::Percent => BinaryOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    /// Is `( ... )` at the current position a cast?
    fn at_cast(&self) -> bool {
        matches!(self.peek(), Tok::LParen)
            && matches!(
                self.peek2(),
                Tok::KwInt | Tok::KwChar | Tok::KwVoid | Tok::KwStruct
            )
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.at_cast() {
            self.bump(); // (
            let ty = self.type_prefix()?;
            self.expect(&Tok::RParen)?;
            let e = self.unary()?;
            return Ok(Expr::Cast(ty, Box::new(e)));
        }
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Unary(UnaryOp::Not, Box::new(self.unary()?)))
            }
            Tok::Tilde => {
                self.bump();
                Ok(Expr::Unary(UnaryOp::BitNot, Box::new(self.unary()?)))
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Deref(Box::new(self.unary()?)))
            }
            Tok::Amp => {
                self.bump();
                Ok(Expr::AddrOf(Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Tok::Dot => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr::Member(Box::new(e), f);
                }
                Tok::Arrow => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr::Arrow(Box::new(e), f);
                }
                Tok::LParen => {
                    let Expr::Ident(name) = e else {
                        return Err(self.error(
                            "only named functions are callable (Cb has no function-pointer expressions)"
                                .into(),
                        ));
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                self.expect(&Tok::RParen)?;
                                break;
                            }
                        }
                    }
                    e = Expr::Call(name, args);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::Ident(name))
            }
            Tok::KwSizeof => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let ty = self.type_prefix()?;
                let ty = self.array_suffixes(ty)?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Sizeof(ty))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Unit {
        match parse(src) {
            Ok(u) => u,
            Err(e) => panic!("parse failed: {e}\nsource:\n{src}"),
        }
    }

    #[test]
    fn minimal_main() {
        let u = parse_ok("int main() { return 0; }");
        assert_eq!(u.funcs.len(), 1);
        assert_eq!(u.funcs[0].name, "main");
        assert_eq!(u.funcs[0].body, vec![Stmt::Return(Some(Expr::Int(0)))]);
    }

    #[test]
    fn struct_globals_and_functions() {
        let u = parse_ok(
            "struct node { char str[5]; int x; struct node *next; };\n\
             int g;\n\
             int arr[10];\n\
             struct node *head;\n\
             void f(int a, char *b) { }",
        );
        assert_eq!(u.structs.len(), 1);
        assert_eq!(u.structs[0].fields.len(), 3);
        assert_eq!(
            u.structs[0].fields[0].ty,
            TypeExpr::Array(Box::new(TypeExpr::Char), 5)
        );
        assert_eq!(u.globals.len(), 3);
        assert_eq!(u.funcs[0].params.len(), 2);
    }

    #[test]
    fn precedence_and_associativity() {
        let u = parse_ok("int main() { return 1 + 2 * 3 < 4 == 5 & 6; }");
        // ((1 + (2*3)) < 4) == 5) & 6
        let Stmt::Return(Some(e)) = &u.funcs[0].body[0] else {
            panic!()
        };
        let Expr::Binary(BinaryOp::BitAnd, lhs, _) = e else {
            panic!("got {e:?}")
        };
        let Expr::Binary(BinaryOp::Eq, lhs, _) = &**lhs else {
            panic!()
        };
        let Expr::Binary(BinaryOp::Lt, lhs, _) = &**lhs else {
            panic!()
        };
        let Expr::Binary(BinaryOp::Add, _, rhs) = &**lhs else {
            panic!()
        };
        assert!(matches!(&**rhs, Expr::Binary(BinaryOp::Mul, _, _)));
    }

    #[test]
    fn casts_vs_parenthesized_expressions() {
        let u = parse_ok("int main() { int x; x = (int)1; x = (x); x = (int*)0 == 0; return x; }");
        let Stmt::Expr(Expr::Assign(_, rhs)) = &u.funcs[0].body[1] else {
            panic!()
        };
        assert!(matches!(&**rhs, Expr::Cast(TypeExpr::Int, _)));
    }

    #[test]
    fn pointer_and_array_declarators() {
        let u = parse_ok("int main() { int *p; int **q; char buf[16]; int m[2][3]; return 0; }");
        let Stmt::Decl { ty, .. } = &u.funcs[0].body[3] else {
            panic!()
        };
        assert_eq!(
            *ty,
            TypeExpr::Array(Box::new(TypeExpr::Array(Box::new(TypeExpr::Int), 3)), 2)
        );
        let _ = &u;
    }

    #[test]
    fn control_flow_forms() {
        parse_ok(
            "int main() {\n\
               int i;\n\
               for (i = 0; i < 10; i = i + 1) { if (i == 5) break; else continue; }\n\
               for (int j = 0; j < 3; j = j + 1) ;\n\
               while (i > 0) i = i - 1;\n\
               for (;;) break;\n\
               return 0;\n\
             }",
        );
    }

    #[test]
    fn member_arrow_index_call_chains() {
        let u = parse_ok("int main() { return f(a->b.c[2], g()); }");
        let Stmt::Return(Some(Expr::Call(name, args))) = &u.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(name, "f");
        assert_eq!(args.len(), 2);
        assert!(matches!(&args[0], Expr::Index(_, _)));
    }

    #[test]
    fn short_circuit_and_ternary() {
        let u = parse_ok("int main() { return a && b || c ? 1 : 2; }");
        let Stmt::Return(Some(Expr::Cond(c, _, _))) = &u.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(&**c, Expr::LogicalOr(_, _)));
    }

    #[test]
    fn address_of_and_bitand_disambiguation() {
        // `a & &b` would be weird C but `&a` unary vs `a & b` binary must
        // both parse.
        let u = parse_ok("int main() { int a; int *p; p = &a; a = a & 3; return *p; }");
        assert!(
            matches!(&u.funcs[0].body[2], Stmt::Expr(Expr::Assign(_, rhs))
            if matches!(&**rhs, Expr::AddrOf(_)))
        );
    }

    #[test]
    fn sizeof_forms() {
        parse_ok("int main() { return sizeof(int) + sizeof(struct n*) + sizeof(char[4]); }");
    }

    #[test]
    fn void_parameter_list() {
        let u = parse_ok("int main(void) { return 0; }");
        assert!(u.funcs[0].params.is_empty());
    }

    #[test]
    fn array_parameters_decay() {
        let u = parse_ok("int f(int a[10]) { return a[0]; }");
        assert_eq!(u.funcs[0].params[0].ty, TypeExpr::Int.ptr());
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse("int main() { return 0 }").unwrap_err();
        assert!(err.message.contains("expected `;`"), "{err}");
        assert!(parse("int main() { 1(); }").is_err());
        assert!(parse("struct s { int x }").is_err());
        assert!(parse("int a[x];").is_err());
    }

    #[test]
    fn global_initializers() {
        let u = parse_ok("int g = 42; int main() { return g; }");
        assert_eq!(u.globals[0].init, Some(Expr::Int(42)));
    }
}
