use std::fmt;

/// Position of a token in the source text (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical token of the Cb language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal (decimal, hex `0x`, or character literal value).
    Int(i64),
    /// String literal (unescaped bytes, no terminator).
    Str(Vec<u8>),
    /// Identifier or keyword candidate.
    Ident(String),
    /// `int`
    KwInt,
    /// `char`
    KwChar,
    /// `void`
    KwVoid,
    /// `struct`
    KwStruct,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `sizeof`
    KwSizeof,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `=`
    Assign,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::KwInt => write!(f, "`int`"),
            Tok::KwChar => write!(f, "`char`"),
            Tok::KwVoid => write!(f, "`void`"),
            Tok::KwStruct => write!(f, "`struct`"),
            Tok::KwIf => write!(f, "`if`"),
            Tok::KwElse => write!(f, "`else`"),
            Tok::KwWhile => write!(f, "`while`"),
            Tok::KwFor => write!(f, "`for`"),
            Tok::KwReturn => write!(f, "`return`"),
            Tok::KwBreak => write!(f, "`break`"),
            Tok::KwContinue => write!(f, "`continue`"),
            Tok::KwSizeof => write!(f, "`sizeof`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::Tilde => write!(f, "`~`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Shl => write!(f, "`<<`"),
            Tok::Shr => write!(f, "`>>`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::AmpAmp => write!(f, "`&&`"),
            Tok::PipePipe => write!(f, "`||`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Question => write!(f, "`?`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexical error with its position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Error description.
    pub message: String,
    /// Where it occurred.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes Cb source text.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated literals, bad escapes or
/// unexpected characters.
pub fn lex(source: &str) -> Result<Vec<(Tok, Span)>, LexError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(LexError { message: format!($($arg)*), span: Span { line, col } })
        };
    }

    while i < bytes.len() {
        let span = Span { line, col };
        let c = bytes[i];
        let advance = |i: &mut usize, n: usize, col: &mut u32| {
            *i += n;
            *col += n as u32;
        };
        match c {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b' ' | b'\t' | b'\r' => advance(&mut i, 1, &mut col),
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        err!("unterminated block comment");
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                        i += 1;
                    } else {
                        i += 1;
                        col += 1;
                    }
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let value = if c == b'0' && bytes.get(i + 1) == Some(&b'x') {
                    i += 2;
                    let hstart = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hstart {
                        err!("hex literal needs digits");
                    }
                    i64::from_str_radix(&source[hstart..i], 16)
                        .unwrap_or_else(|_| i64::from(u32::MAX))
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    source[start..i].parse::<i64>().unwrap_or(i64::MAX)
                };
                col += (i - start) as u32;
                out.push((Tok::Int(value), span));
            }
            b'\'' => {
                i += 1;
                col += 1;
                let v = match bytes.get(i) {
                    Some(b'\\') => {
                        i += 1;
                        col += 1;
                        let e = match bytes.get(i) {
                            Some(b'n') => b'\n',
                            Some(b't') => b'\t',
                            Some(b'0') => 0,
                            Some(b'\\') => b'\\',
                            Some(b'\'') => b'\'',
                            _ => err!("bad character escape"),
                        };
                        i += 1;
                        col += 1;
                        e
                    }
                    Some(&b) if b != b'\'' => {
                        i += 1;
                        col += 1;
                        b
                    }
                    _ => err!("empty character literal"),
                };
                if bytes.get(i) != Some(&b'\'') {
                    err!("unterminated character literal");
                }
                i += 1;
                col += 1;
                out.push((Tok::Int(i64::from(v)), span));
            }
            b'"' => {
                i += 1;
                col += 1;
                let mut s = Vec::new();
                loop {
                    match bytes.get(i) {
                        Some(b'"') => {
                            i += 1;
                            col += 1;
                            break;
                        }
                        Some(b'\\') => {
                            i += 1;
                            col += 1;
                            let e = match bytes.get(i) {
                                Some(b'n') => b'\n',
                                Some(b't') => b'\t',
                                Some(b'0') => 0,
                                Some(b'\\') => b'\\',
                                Some(b'"') => b'"',
                                _ => err!("bad string escape"),
                            };
                            s.push(e);
                            i += 1;
                            col += 1;
                        }
                        Some(b'\n') | None => err!("unterminated string literal"),
                        Some(&b) => {
                            s.push(b);
                            i += 1;
                            col += 1;
                        }
                    }
                }
                out.push((Tok::Str(s), span));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                col += (i - start) as u32;
                let word = &source[start..i];
                let tok = match word {
                    "int" => Tok::KwInt,
                    "char" => Tok::KwChar,
                    "void" => Tok::KwVoid,
                    "struct" => Tok::KwStruct,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    "sizeof" => Tok::KwSizeof,
                    _ => Tok::Ident(word.to_owned()),
                };
                out.push((tok, span));
            }
            _ => {
                let two = |a: u8, b: u8| c == a && bytes.get(i + 1) == Some(&b);
                let (tok, n) = if two(b'-', b'>') {
                    (Tok::Arrow, 2)
                } else if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'=', b'=') {
                    (Tok::EqEq, 2)
                } else if two(b'!', b'=') {
                    (Tok::NotEq, 2)
                } else if two(b'&', b'&') {
                    (Tok::AmpAmp, 2)
                } else if two(b'|', b'|') {
                    (Tok::PipePipe, 2)
                } else {
                    let t = match c {
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b';' => Tok::Semi,
                        b',' => Tok::Comma,
                        b'.' => Tok::Dot,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'&' => Tok::Amp,
                        b'|' => Tok::Pipe,
                        b'^' => Tok::Caret,
                        b'~' => Tok::Tilde,
                        b'!' => Tok::Bang,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        b'=' => Tok::Assign,
                        b'?' => Tok::Question,
                        b':' => Tok::Colon,
                        other => err!("unexpected character {:?}", other as char),
                    };
                    (t, 1)
                };
                i += n;
                col += n as u32;
                out.push((tok, span));
            }
        }
    }
    out.push((Tok::Eof, Span { line, col }));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("int x while whilex"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::KwWhile,
                Tok::Ident("whilex".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_hex_and_chars() {
        assert_eq!(
            toks("42 0x1F '\\n' 'A' '\\0'"),
            vec![
                Tok::Int(42),
                Tok::Int(31),
                Tok::Int(10),
                Tok::Int(65),
                Tok::Int(0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a->b << >= == != && || < <="),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::Shl,
                Tok::Ge,
                Tok::EqEq,
                Tok::NotEq,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::Lt,
                Tok::Le,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            toks(r#""hi\n\t\"x\"""#),
            vec![Tok::Str(b"hi\n\t\"x\"".to_vec()), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\nb /* block\n over lines */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let tokens = lex("int\n  x").unwrap();
        assert_eq!(tokens[0].1, Span { line: 1, col: 1 });
        assert_eq!(tokens[1].1, Span { line: 2, col: 3 });
    }

    #[test]
    fn lex_errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'a").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("@").is_err());
        assert!(lex("''").is_err());
    }
}
