//! Semantic types and data layout.
//!
//! Layout follows the paper's 32-bit x86 target: `char` is 1 byte, `int`
//! and pointers are 4-byte aligned words, struct fields are padded to their
//! natural alignment and struct size is rounded up to the struct's
//! alignment.

use std::collections::HashMap;
use std::fmt;

/// Index of a struct definition in the [`TypeTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StructId(pub u32);

/// A resolved Cb type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// 8-bit unsigned character.
    Char,
    /// `void` (valid only behind pointers and as a return type).
    Void,
    /// Pointer.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, u32),
    /// Struct by id.
    Struct(StructId),
}

impl Type {
    /// Pointer to this type.
    #[must_use]
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Whether the type is scalar (fits a register): int, char or pointer.
    #[must_use]
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Char | Type::Ptr(_))
    }

    /// Whether the type is an integer type.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Int | Type::Char)
    }

    /// Whether the type is any pointer.
    #[must_use]
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// The pointee of a pointer type.
    #[must_use]
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// Array-to-pointer decay; other types are returned unchanged.
    #[must_use]
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            other => other.clone(),
        }
    }
}

/// A laid-out struct field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset from the start of the struct.
    pub offset: u32,
}

/// A laid-out struct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructLayout {
    /// Struct tag.
    pub name: String,
    /// Fields with offsets.
    pub fields: Vec<FieldLayout>,
    /// Total size in bytes (padded to alignment).
    pub size: u32,
    /// Alignment in bytes.
    pub align: u32,
}

impl StructLayout {
    /// Finds a field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&FieldLayout> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// All struct layouts of a translation unit.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    structs: Vec<StructLayout>,
    by_name: HashMap<String, StructId>,
}

/// Error produced while building struct layouts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayoutError(pub String);

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layout error: {}", self.0)
    }
}

impl std::error::Error for LayoutError {}

impl TypeTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> TypeTable {
        TypeTable::default()
    }

    /// Looks up a struct by tag.
    #[must_use]
    pub fn struct_id(&self, name: &str) -> Option<StructId> {
        self.by_name.get(name).copied()
    }

    /// The layout for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this table.
    #[must_use]
    pub fn layout(&self, id: StructId) -> &StructLayout {
        &self.structs[id.0 as usize]
    }

    /// Registers a struct; fields must use already-registered structs (Cb
    /// requires definition before use, except behind pointers).
    ///
    /// # Errors
    ///
    /// Rejects duplicate tags.
    pub fn add_struct(&mut self, layout: StructLayout) -> Result<StructId, LayoutError> {
        if self.by_name.contains_key(&layout.name) {
            return Err(LayoutError(format!("duplicate struct `{}`", layout.name)));
        }
        let id = StructId(self.structs.len() as u32);
        self.by_name.insert(layout.name.clone(), id);
        self.structs.push(layout);
        Ok(id)
    }

    /// Replaces a provisional layout (used to support self-referential
    /// structs: a placeholder is registered first so `struct s *next`
    /// resolves while `struct s` is being laid out).
    pub fn replace_struct(&mut self, id: StructId, layout: StructLayout) {
        self.structs[id.0 as usize] = layout;
    }

    /// Size of a type in bytes.
    ///
    /// # Panics
    ///
    /// Panics on `void` (sema rejects `sizeof(void)` and void objects).
    #[must_use]
    pub fn size_of(&self, ty: &Type) -> u32 {
        match ty {
            Type::Int | Type::Ptr(_) => 4,
            Type::Char => 1,
            Type::Void => panic!("void has no size"),
            Type::Array(elem, n) => self.size_of(elem) * n,
            Type::Struct(id) => self.layout(*id).size,
        }
    }

    /// Alignment of a type in bytes.
    #[must_use]
    pub fn align_of(&self, ty: &Type) -> u32 {
        match ty {
            Type::Int | Type::Ptr(_) => 4,
            Type::Char => 1,
            Type::Void => 1,
            Type::Array(elem, _) => self.align_of(elem),
            Type::Struct(id) => self.layout(*id).align,
        }
    }

    /// Lays out a struct's fields with natural alignment and padding.
    ///
    /// # Errors
    ///
    /// Rejects duplicate field names and zero-field structs.
    pub fn lay_out(
        &self,
        name: &str,
        fields: &[(String, Type)],
    ) -> Result<StructLayout, LayoutError> {
        if fields.is_empty() {
            return Err(LayoutError(format!("struct `{name}` has no fields")));
        }
        let mut laid = Vec::new();
        let mut offset = 0u32;
        let mut align = 1u32;
        for (fname, fty) in fields {
            if laid.iter().any(|f: &FieldLayout| &f.name == fname) {
                return Err(LayoutError(format!(
                    "duplicate field `{fname}` in `{name}`"
                )));
            }
            let fa = self.align_of(fty);
            let fs = self.size_of(fty);
            offset = offset.next_multiple_of(fa);
            laid.push(FieldLayout {
                name: fname.clone(),
                ty: fty.clone(),
                offset,
            });
            offset += fs;
            align = align.max(fa);
        }
        Ok(StructLayout {
            name: name.to_owned(),
            fields: laid,
            size: offset.next_multiple_of(align),
            align,
        })
    }

    /// Number of registered structs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.structs.len()
    }

    /// Whether no structs are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.structs.is_empty()
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Char => write!(f, "char"),
            Type::Void => write!(f, "void"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(id) => write!(f, "struct#{}", id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_32bit_target() {
        let t = TypeTable::new();
        assert_eq!(t.size_of(&Type::Int), 4);
        assert_eq!(t.size_of(&Type::Char), 1);
        assert_eq!(t.size_of(&Type::Int.ptr()), 4);
        assert_eq!(t.size_of(&Type::Array(Box::new(Type::Int), 10)), 40);
    }

    #[test]
    fn paper_node_struct_layout() {
        // struct {char str[5]; int x;} — the §2.2/§3.2 example. str at 0,
        // x at 8 (padded), size 12.
        let mut t = TypeTable::new();
        let layout = t
            .lay_out(
                "node",
                &[
                    ("str".into(), Type::Array(Box::new(Type::Char), 5)),
                    ("x".into(), Type::Int),
                ],
            )
            .unwrap();
        assert_eq!(layout.field("str").unwrap().offset, 0);
        assert_eq!(layout.field("x").unwrap().offset, 8);
        assert_eq!(layout.size, 12);
        assert_eq!(layout.align, 4);
        let id = t.add_struct(layout).unwrap();
        assert_eq!(t.size_of(&Type::Struct(id)), 12);
        assert_eq!(t.struct_id("node"), Some(id));
    }

    #[test]
    fn char_only_struct_is_byte_aligned() {
        let t = TypeTable::new();
        let l = t
            .lay_out("s", &[("a".into(), Type::Char), ("b".into(), Type::Char)])
            .unwrap();
        assert_eq!(l.size, 2);
        assert_eq!(l.align, 1);
    }

    #[test]
    fn nested_struct_layout() {
        let mut t = TypeTable::new();
        let inner = t.lay_out("inner", &[("x".into(), Type::Int)]).unwrap();
        let inner_id = t.add_struct(inner).unwrap();
        let outer = t
            .lay_out(
                "outer",
                &[
                    ("c".into(), Type::Char),
                    ("i".into(), Type::Struct(inner_id)),
                ],
            )
            .unwrap();
        assert_eq!(outer.field("i").unwrap().offset, 4);
        assert_eq!(outer.size, 8);
    }

    #[test]
    fn duplicate_detection() {
        let mut t = TypeTable::new();
        let l = t.lay_out("s", &[("x".into(), Type::Int)]).unwrap();
        t.add_struct(l.clone()).unwrap();
        assert!(t.add_struct(l).is_err());
        assert!(t
            .lay_out("d", &[("x".into(), Type::Int), ("x".into(), Type::Int)])
            .is_err());
        assert!(t.lay_out("e", &[]).is_err());
    }

    #[test]
    fn decay_and_predicates() {
        let arr = Type::Array(Box::new(Type::Char), 5);
        assert_eq!(arr.decay(), Type::Char.ptr());
        assert_eq!(Type::Int.decay(), Type::Int);
        assert!(Type::Int.is_scalar());
        assert!(Type::Char.is_integer());
        assert!(Type::Int.ptr().is_ptr());
        assert!(!arr.is_scalar());
        assert_eq!(Type::Int.ptr().pointee(), Some(&Type::Int));
    }
}
