//! Semantic analysis: resolves names, checks types, computes layouts and
//! produces the typed HIR consumed by `hardbound-compiler`.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{self, BinaryOp, Expr, Stmt, TypeExpr, UnaryOp, Unit};
use crate::types::{StructId, Type, TypeTable};

/// Index of a local variable within its function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LocalId(pub u32);

/// Index of a global variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GlobalId(pub u32);

/// Compiler intrinsics lowered inline by code generation.
///
/// `SetBound` and `Unbound` correspond directly to the paper's `setbound`
/// instruction and §3.2 escape hatch; how they lower depends on the
/// instrumentation mode (HardBound emits the instruction, the software
/// comparison schemes emit their own metadata bookkeeping, the baseline
/// drops them — the paper's "forward compatibility" property).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `void *__setbound(void *p, int size)`.
    SetBound,
    /// `void *__unbound(void *p)`.
    Unbound,
    /// `void __freebound(void *p)` — deallocation notice. A no-op for
    /// HardBound itself; the object-table comparison mode lowers it to a
    /// table unregistration (JK-style schemes must track frees).
    FreeBound,
    /// `int __readbase(void *p)`.
    ReadBase,
    /// `int __readbound(void *p)`.
    ReadBound,
    /// `int __mulh(int a, int b)` — high word of the 64-bit product.
    Mulh,
    /// `void print_int(int v)`.
    PrintInt,
    /// `void print_char(int c)`.
    PrintChar,
    /// `void halt(int code)`.
    Halt,
}

/// A typed expression.
#[derive(Clone, Debug, PartialEq)]
pub struct HExpr {
    /// Result type (after array decay where applicable).
    pub ty: Type,
    /// Node kind.
    pub kind: HExprKind,
}

/// Resolved struct-field access info.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldRef {
    /// Byte offset of the field.
    pub offset: u32,
    /// Field type (arrays *not* decayed — codegen narrows bounds on decay).
    pub ty: Type,
}

/// Typed expression kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum HExprKind {
    /// Integer constant.
    Int(i64),
    /// String literal (index into [`Hir::strings`]).
    Str(usize),
    /// Local variable reference (an lvalue; arrays/structs are used via
    /// their address).
    Local(LocalId),
    /// Global variable reference (an lvalue).
    Global(GlobalId),
    /// Unary arithmetic.
    Unary(UnaryOp, Box<HExpr>),
    /// Binary arithmetic. Pointer arithmetic is *not* pre-scaled; codegen
    /// scales by the pointee size.
    Binary(BinaryOp, Box<HExpr>, Box<HExpr>),
    /// Short-circuit `&&`.
    LogicalAnd(Box<HExpr>, Box<HExpr>),
    /// Short-circuit `||`.
    LogicalOr(Box<HExpr>, Box<HExpr>),
    /// Assignment (lhs is an lvalue).
    Assign(Box<HExpr>, Box<HExpr>),
    /// Ternary conditional.
    Cond(Box<HExpr>, Box<HExpr>, Box<HExpr>),
    /// Pointer dereference (an lvalue).
    Deref(Box<HExpr>),
    /// Address-of an lvalue.
    AddrOf(Box<HExpr>),
    /// `base[index]` (an lvalue). `base` decays to a pointer.
    Index(Box<HExpr>, Box<HExpr>),
    /// `base.field` where `base` is a struct lvalue.
    Member(Box<HExpr>, FieldRef),
    /// `base->field` where `base` is a struct pointer rvalue.
    Arrow(Box<HExpr>, FieldRef),
    /// Call to a user function by index into [`Hir::funcs`].
    Call(usize, Vec<HExpr>),
    /// Intrinsic call.
    Intrinsic(Intrinsic, Vec<HExpr>),
    /// Value conversion (explicit cast or implicit conversion); the target
    /// type is this node's `ty`.
    Cast(Box<HExpr>),
    /// Array-to-pointer decay of an array lvalue. This node is the
    /// HardBound instrumentation point: the compiler narrows bounds to the
    /// array's extent here (paper §3.2, "protecting sub-objects").
    Decay(Box<HExpr>),
}

impl HExpr {
    /// Whether this expression designates a memory location.
    #[must_use]
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self.kind,
            HExprKind::Local(_)
                | HExprKind::Global(_)
                | HExprKind::Deref(_)
                | HExprKind::Index(_, _)
                | HExprKind::Member(_, _)
                | HExprKind::Arrow(_, _)
        )
    }
}

/// A typed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum HStmt {
    /// Evaluate for effect.
    Expr(HExpr),
    /// Initialize a local (declaration with initializer).
    Init(LocalId, HExpr),
    /// Two-way branch.
    If {
        /// Condition (scalar).
        cond: HExpr,
        /// Then branch.
        then: Vec<HStmt>,
        /// Else branch.
        els: Vec<HStmt>,
    },
    /// Loop with optional step (the `for`-loop desugaring target;
    /// `continue` jumps to the step).
    While {
        /// Condition (scalar); `None` = infinite.
        cond: Option<HExpr>,
        /// Body.
        body: Vec<HStmt>,
        /// Step expression run after the body and on `continue`.
        step: Option<HExpr>,
    },
    /// Return.
    Return(Option<HExpr>),
    /// Break out of the innermost loop.
    Break,
    /// Continue the innermost loop (via its step).
    Continue,
}

/// A local variable (parameters are the first `params` locals).
#[derive(Clone, Debug, PartialEq)]
pub struct HLocal {
    /// Source name.
    pub name: String,
    /// Declared type (arrays/structs kept as such; they live in the frame).
    pub ty: Type,
}

/// A typed function.
#[derive(Clone, Debug, PartialEq)]
pub struct HFunc {
    /// Source name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Number of parameters (the first locals).
    pub num_params: usize,
    /// All locals (parameters first).
    pub locals: Vec<HLocal>,
    /// Body.
    pub body: Vec<HStmt>,
}

/// A global variable.
#[derive(Clone, Debug, PartialEq)]
pub struct HGlobal {
    /// Source name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Byte offset from `GLOBALS_BASE`.
    pub offset: u32,
    /// Constant initial value (zero if absent).
    pub init: i32,
}

/// A fully type-checked translation unit.
#[derive(Clone, Debug)]
pub struct Hir {
    /// Struct layouts.
    pub types: TypeTable,
    /// Globals with assigned offsets.
    pub globals: Vec<HGlobal>,
    /// Total bytes of global data (before the string pool).
    pub globals_size: u32,
    /// Functions; `Call` indexes this vector.
    pub funcs: Vec<HFunc>,
    /// Index of `main` in [`Hir::funcs`].
    pub main: usize,
    /// String-literal pool (NUL terminators already appended).
    pub strings: Vec<Vec<u8>>,
}

/// A semantic error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemaError {
    /// Description, prefixed with the containing function when known.
    pub message: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error: {}", self.message)
    }
}

impl std::error::Error for SemaError {}

/// Type-checks a parsed unit.
///
/// # Errors
///
/// Returns the first [`SemaError`] found (unknown names, type mismatches,
/// bad lvalues, missing `main`, …).
pub fn check(unit: &Unit) -> Result<Hir, SemaError> {
    Checker::new().check_unit(unit)
}

struct FuncSig {
    ret: Type,
    params: Vec<Type>,
}

struct Checker {
    types: TypeTable,
    globals: Vec<HGlobal>,
    globals_size: u32,
    global_ids: HashMap<String, GlobalId>,
    func_sigs: Vec<FuncSig>,
    func_ids: HashMap<String, usize>,
    strings: Vec<Vec<u8>>,
    // Per-function state:
    locals: Vec<HLocal>,
    scopes: Vec<HashMap<String, LocalId>>,
    current_fn: String,
    current_ret: Type,
    loop_depth: u32,
}

impl Checker {
    fn new() -> Checker {
        Checker {
            types: TypeTable::new(),
            globals: Vec::new(),
            globals_size: 0,
            global_ids: HashMap::new(),
            func_sigs: Vec::new(),
            func_ids: HashMap::new(),
            strings: Vec::new(),
            locals: Vec::new(),
            scopes: Vec::new(),
            current_fn: String::new(),
            current_ret: Type::Void,
            loop_depth: 0,
        }
    }

    fn err<T>(&self, msg: impl fmt::Display) -> Result<T, SemaError> {
        let prefix = if self.current_fn.is_empty() {
            String::new()
        } else {
            format!("in `{}`: ", self.current_fn)
        };
        Err(SemaError {
            message: format!("{prefix}{msg}"),
        })
    }

    fn resolve_type(&self, te: &TypeExpr) -> Result<Type, SemaError> {
        Ok(match te {
            TypeExpr::Int => Type::Int,
            TypeExpr::Char => Type::Char,
            TypeExpr::Void => Type::Void,
            TypeExpr::Struct(name) => match self.types.struct_id(name) {
                Some(id) => Type::Struct(id),
                None => return self.err(format_args!("unknown struct `{name}`")),
            },
            TypeExpr::Ptr(inner) => self.resolve_type(inner)?.ptr(),
            TypeExpr::Array(inner, n) => {
                let elem = self.resolve_type(inner)?;
                if *n == 0 {
                    return self.err("zero-length arrays are not supported");
                }
                Type::Array(Box::new(elem), *n)
            }
        })
    }

    fn check_unit(mut self, unit: &Unit) -> Result<Hir, SemaError> {
        // Struct layouts (definition order; pointers to later structs are
        // not supported — Olden's data structures are self/backward
        // referential via pointers to the *same* struct, which works
        // because field types behind pointers resolve by name at use time).
        // To allow self-reference we register a provisional empty struct
        // first, then fill it in.
        for s in &unit.structs {
            let placeholder = crate::types::StructLayout {
                name: s.name.clone(),
                fields: Vec::new(),
                size: 0,
                align: 1,
            };
            self.types.add_struct(placeholder).map_err(|e| SemaError {
                message: e.to_string(),
            })?;
        }
        for s in &unit.structs {
            let mut fields = Vec::new();
            for f in &s.fields {
                let ty = self.resolve_type(&f.ty)?;
                if let Type::Struct(id) = &ty {
                    if self.types.layout(*id).fields.is_empty() {
                        return self.err(format_args!(
                            "struct `{}` embeds incomplete struct `{}` (use a pointer)",
                            s.name, f.ty
                        ));
                    }
                }
                if matches!(ty, Type::Void) {
                    return self.err(format_args!("field `{}` cannot be void", f.name));
                }
                fields.push((f.name.clone(), ty));
            }
            let laid = self
                .types
                .lay_out(&s.name, &fields)
                .map_err(|e| SemaError {
                    message: e.to_string(),
                })?;
            let id = self.types.struct_id(&s.name).expect("registered above");
            self.types.replace_struct(id, laid);
        }

        // Globals.
        for g in &unit.globals {
            let ty = self.resolve_type(&g.ty)?;
            if matches!(ty, Type::Void) {
                return self.err(format_args!("global `{}` cannot be void", g.name));
            }
            if self.global_ids.contains_key(&g.name) {
                return self.err(format_args!("duplicate global `{}`", g.name));
            }
            let init = match &g.init {
                None => 0,
                Some(Expr::Int(v)) => *v as i32,
                Some(Expr::Unary(UnaryOp::Neg, inner)) => match &**inner {
                    Expr::Int(v) => -(*v as i32),
                    _ => return self.err("global initializers must be integer constants"),
                },
                Some(_) => return self.err("global initializers must be integer constants"),
            };
            let align = self.types.align_of(&ty);
            let size = self.types.size_of(&ty);
            let offset = self.globals_size.next_multiple_of(align);
            self.globals_size = offset + size;
            let id = GlobalId(self.globals.len() as u32);
            self.global_ids.insert(g.name.clone(), id);
            self.globals.push(HGlobal {
                name: g.name.clone(),
                ty,
                offset,
                init,
            });
        }

        // Function signatures (two-pass so order does not matter).
        for f in &unit.funcs {
            if self.func_ids.contains_key(&f.name) {
                return self.err(format_args!("duplicate function `{}`", f.name));
            }
            if f.params.len() > 8 {
                return self.err(format_args!(
                    "function `{}` has {} parameters; the ABI allows 8",
                    f.name,
                    f.params.len()
                ));
            }
            let ret = self.resolve_type(&f.ret)?;
            let mut params = Vec::new();
            for p in &f.params {
                let ty = self.resolve_type(&p.ty)?;
                if !ty.is_scalar() {
                    return self.err(format_args!(
                        "parameter `{}` of `{}` must be scalar (pass structs by pointer)",
                        p.name, f.name
                    ));
                }
                params.push(ty);
            }
            self.func_ids.insert(f.name.clone(), self.func_sigs.len());
            self.func_sigs.push(FuncSig { ret, params });
        }

        // Bodies.
        let mut funcs = Vec::new();
        for (idx, f) in unit.funcs.iter().enumerate() {
            funcs.push(self.check_func(idx, f)?);
        }

        let Some(&main) = self.func_ids.get("main") else {
            return self.err("program has no `main` function");
        };

        Ok(Hir {
            types: self.types,
            globals: self.globals,
            globals_size: self.globals_size,
            funcs,
            main,
            strings: self.strings,
        })
    }

    fn check_func(&mut self, idx: usize, f: &ast::FuncDecl) -> Result<HFunc, SemaError> {
        self.current_fn = f.name.clone();
        self.current_ret = self.func_sigs[idx].ret.clone();
        self.locals = Vec::new();
        self.scopes = vec![HashMap::new()];
        self.loop_depth = 0;

        for (p, ty) in f.params.iter().zip(self.func_sigs[idx].params.clone()) {
            self.declare_local(&p.name, ty)?;
        }
        let body = self.check_block(&f.body)?;
        Ok(HFunc {
            name: f.name.clone(),
            ret: self.current_ret.clone(),
            num_params: f.params.len(),
            locals: std::mem::take(&mut self.locals),
            body,
        })
    }

    fn declare_local(&mut self, name: &str, ty: Type) -> Result<LocalId, SemaError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return self.err(format_args!("duplicate variable `{name}` in scope"));
        }
        let id = LocalId(self.locals.len() as u32);
        self.scopes.last_mut().unwrap().insert(name.to_owned(), id);
        self.locals.push(HLocal {
            name: name.to_owned(),
            ty,
        });
        Ok(id)
    }

    fn lookup_local(&self, name: &str) -> Option<LocalId> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn check_block(&mut self, stmts: &[Stmt]) -> Result<Vec<HStmt>, SemaError> {
        self.scopes.push(HashMap::new());
        let mut out = Vec::new();
        for s in stmts {
            self.check_stmt(s, &mut out)?;
        }
        self.scopes.pop();
        Ok(out)
    }

    fn check_stmt(&mut self, s: &Stmt, out: &mut Vec<HStmt>) -> Result<(), SemaError> {
        match s {
            Stmt::Empty => {}
            Stmt::Expr(e) => {
                let he = self.check_expr(e)?;
                out.push(HStmt::Expr(he));
            }
            Stmt::Decl { ty, name, init } => {
                let ty = self.resolve_type(ty)?;
                if matches!(ty, Type::Void) {
                    return self.err(format_args!("variable `{name}` cannot be void"));
                }
                let id = self.declare_local(name, ty.clone())?;
                if let Some(init) = init {
                    if !ty.is_scalar() {
                        return self.err(format_args!(
                            "aggregate `{name}` cannot have an initializer"
                        ));
                    }
                    let rv = self.check_expr(init)?;
                    let rhs = self.coerce(rv, &ty)?;
                    out.push(HStmt::Init(id, rhs));
                }
            }
            Stmt::If { cond, then, els } => {
                let cond = self.check_condition(cond)?;
                let then = self.check_stmt_as_block(then)?;
                let els = match els {
                    Some(e) => self.check_stmt_as_block(e)?,
                    None => Vec::new(),
                };
                out.push(HStmt::If { cond, then, els });
            }
            Stmt::While { cond, body } => {
                let cond = self.check_condition(cond)?;
                self.loop_depth += 1;
                let body = self.check_stmt_as_block(body)?;
                self.loop_depth -= 1;
                out.push(HStmt::While {
                    cond: Some(cond),
                    body,
                    step: None,
                });
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let mut prologue = Vec::new();
                if let Some(init) = init {
                    self.check_stmt(init, &mut prologue)?;
                }
                let cond = match cond {
                    Some(c) => Some(self.check_condition(c)?),
                    None => None,
                };
                let step = match step {
                    Some(s) => Some(self.check_expr(s)?),
                    None => None,
                };
                self.loop_depth += 1;
                let body = self.check_stmt_as_block(body)?;
                self.loop_depth -= 1;
                self.scopes.pop();
                prologue.push(HStmt::While { cond, body, step });
                out.extend(prologue);
            }
            Stmt::Return(value) => {
                let hv = match value {
                    Some(v) => {
                        if matches!(self.current_ret, Type::Void) {
                            return self.err("void function returns a value");
                        }
                        let ret = self.current_ret.clone();
                        let rv = self.check_expr(v)?;
                        Some(self.coerce(rv, &ret)?)
                    }
                    None => {
                        if !matches!(self.current_ret, Type::Void) {
                            return self.err("non-void function returns no value");
                        }
                        None
                    }
                };
                out.push(HStmt::Return(hv));
            }
            Stmt::Break => {
                if self.loop_depth == 0 {
                    return self.err("`break` outside a loop");
                }
                out.push(HStmt::Break);
            }
            Stmt::Continue => {
                if self.loop_depth == 0 {
                    return self.err("`continue` outside a loop");
                }
                out.push(HStmt::Continue);
            }
            Stmt::Block(stmts) => {
                let inner = self.check_block(stmts)?;
                out.push(HStmt::If {
                    cond: HExpr {
                        ty: Type::Int,
                        kind: HExprKind::Int(1),
                    },
                    then: inner,
                    els: Vec::new(),
                });
            }
        }
        Ok(())
    }

    fn check_stmt_as_block(&mut self, s: &Stmt) -> Result<Vec<HStmt>, SemaError> {
        match s {
            Stmt::Block(stmts) => self.check_block(stmts),
            other => {
                self.scopes.push(HashMap::new());
                let mut out = Vec::new();
                self.check_stmt(other, &mut out)?;
                self.scopes.pop();
                Ok(out)
            }
        }
    }

    /// Conditions accept any scalar and decay arrays (`if (p)`).
    fn check_condition(&mut self, e: &Expr) -> Result<HExpr, SemaError> {
        let he = self.check_expr(e)?;
        let ty = he.ty.decay();
        if !ty.is_scalar() {
            return self.err(format_args!("condition has non-scalar type {}", he.ty));
        }
        Ok(decay_expr(he))
    }

    /// Implicit conversion of `e` to `target`, inserting a `Cast` node when
    /// the representation changes.
    fn coerce(&mut self, e: HExpr, target: &Type) -> Result<HExpr, SemaError> {
        let from = e.ty.decay();
        if &from == target {
            return Ok(decay_expr(e));
        }
        let ok = match (&from, target) {
            // int ↔ char, both directions (C's usual conversions).
            (a, b) if a.is_integer() && b.is_integer() => true,
            // void* ↔ T*.
            (Type::Ptr(a), Type::Ptr(b)) => matches!(**a, Type::Void) || matches!(**b, Type::Void),
            // Integer zero to pointer (NULL).
            (a, Type::Ptr(_)) if a.is_integer() && matches!(e.kind, HExprKind::Int(0)) => true,
            _ => false,
        };
        if !ok {
            return self.err(format_args!("cannot convert {} to {}", e.ty, target));
        }
        Ok(HExpr {
            ty: target.clone(),
            kind: HExprKind::Cast(Box::new(decay_expr(e))),
        })
    }

    fn check_expr(&mut self, e: &Expr) -> Result<HExpr, SemaError> {
        match e {
            Expr::Int(v) => Ok(HExpr {
                ty: Type::Int,
                kind: HExprKind::Int(*v),
            }),
            Expr::Str(s) => {
                let mut bytes = s.clone();
                bytes.push(0);
                let idx = self.strings.len();
                self.strings.push(bytes);
                Ok(HExpr {
                    ty: Type::Char.ptr(),
                    kind: HExprKind::Str(idx),
                })
            }
            Expr::Ident(name) => {
                if let Some(id) = self.lookup_local(name) {
                    let ty = self.locals[id.0 as usize].ty.clone();
                    return Ok(HExpr {
                        ty,
                        kind: HExprKind::Local(id),
                    });
                }
                if let Some(&id) = self.global_ids.get(name) {
                    let ty = self.globals[id.0 as usize].ty.clone();
                    return Ok(HExpr {
                        ty,
                        kind: HExprKind::Global(id),
                    });
                }
                self.err(format_args!("unknown variable `{name}`"))
            }
            Expr::Sizeof(te) => {
                let ty = self.resolve_type(te)?;
                if matches!(ty, Type::Void) {
                    return self.err("sizeof(void) is not allowed");
                }
                let size = self.types.size_of(&ty);
                Ok(HExpr {
                    ty: Type::Int,
                    kind: HExprKind::Int(i64::from(size)),
                })
            }
            Expr::Unary(op, inner) => {
                let inner = self.check_expr(inner)?;
                let ity = inner.ty.decay();
                match op {
                    UnaryOp::Neg | UnaryOp::BitNot => {
                        if !ity.is_integer() {
                            return self.err(format_args!("unary {op:?} needs an integer"));
                        }
                        Ok(HExpr {
                            ty: Type::Int,
                            kind: HExprKind::Unary(*op, Box::new(decay_expr(inner))),
                        })
                    }
                    UnaryOp::Not => {
                        if !ity.is_scalar() {
                            return self.err("`!` needs a scalar");
                        }
                        Ok(HExpr {
                            ty: Type::Int,
                            kind: HExprKind::Unary(*op, Box::new(decay_expr(inner))),
                        })
                    }
                }
            }
            Expr::Deref(inner) => {
                let inner = self.check_expr(inner)?;
                let ty = inner.ty.decay();
                let Some(pointee) = ty.pointee().cloned() else {
                    return self.err(format_args!("cannot dereference {}", inner.ty));
                };
                if matches!(pointee, Type::Void) {
                    return self.err("cannot dereference void*");
                }
                Ok(HExpr {
                    ty: pointee,
                    kind: HExprKind::Deref(Box::new(decay_expr(inner))),
                })
            }
            Expr::AddrOf(inner) => {
                let inner = self.check_expr(inner)?;
                if !inner.is_lvalue() {
                    return self.err("`&` needs an lvalue");
                }
                let ty = inner.ty.clone().ptr();
                Ok(HExpr {
                    ty,
                    kind: HExprKind::AddrOf(Box::new(inner)),
                })
            }
            Expr::Binary(op, lhs, rhs) => self.check_binary(*op, lhs, rhs),
            Expr::LogicalAnd(a, b) => {
                let a = self.check_condition(a)?;
                let b = self.check_condition(b)?;
                Ok(HExpr {
                    ty: Type::Int,
                    kind: HExprKind::LogicalAnd(Box::new(a), Box::new(b)),
                })
            }
            Expr::LogicalOr(a, b) => {
                let a = self.check_condition(a)?;
                let b = self.check_condition(b)?;
                Ok(HExpr {
                    ty: Type::Int,
                    kind: HExprKind::LogicalOr(Box::new(a), Box::new(b)),
                })
            }
            Expr::Assign(lhs, rhs) => {
                let lhs = self.check_expr(lhs)?;
                if !lhs.is_lvalue() {
                    return self.err("assignment target is not an lvalue");
                }
                if !lhs.ty.is_scalar() {
                    return self.err(format_args!("cannot assign aggregate type {}", lhs.ty));
                }
                let target = lhs.ty.clone();
                let rv = self.check_expr(rhs)?;
                let rhs = self.coerce(rv, &target)?;
                Ok(HExpr {
                    ty: target,
                    kind: HExprKind::Assign(Box::new(lhs), Box::new(rhs)),
                })
            }
            Expr::Cond(c, t, f) => {
                let c = self.check_condition(c)?;
                let t = self.check_expr(t)?;
                let f = self.check_expr(f)?;
                let (tt, ft) = (t.ty.decay(), f.ty.decay());
                let ty = if tt == ft {
                    tt
                } else if tt.is_integer() && ft.is_integer() {
                    Type::Int
                } else if tt.is_ptr() && ft.is_ptr() {
                    // void* unification.
                    Type::Void.ptr()
                } else if tt.is_ptr() && matches!(f.kind, HExprKind::Int(0)) {
                    tt
                } else if ft.is_ptr() && matches!(t.kind, HExprKind::Int(0)) {
                    ft
                } else {
                    return self.err(format_args!("`?:` branches disagree: {tt} vs {ft}"));
                };
                let t = self.coerce(t, &ty)?;
                let f = self.coerce(f, &ty)?;
                Ok(HExpr {
                    ty,
                    kind: HExprKind::Cond(Box::new(c), Box::new(t), Box::new(f)),
                })
            }
            Expr::Index(base, index) => {
                let base = self.check_expr(base)?;
                let bty = base.ty.decay();
                let Some(elem) = bty.pointee().cloned() else {
                    return self.err(format_args!("cannot index {}", base.ty));
                };
                let index = self.check_expr(index)?;
                if !index.ty.decay().is_integer() {
                    return self.err("array index must be an integer");
                }
                Ok(HExpr {
                    ty: elem,
                    kind: HExprKind::Index(Box::new(decay_expr(base)), Box::new(decay_expr(index))),
                })
            }
            Expr::Member(base, field) => {
                let base = self.check_expr(base)?;
                let Type::Struct(sid) = base.ty else {
                    return self.err(format_args!("`.` on non-struct {}", base.ty));
                };
                if !base.is_lvalue() {
                    return self.err("`.` needs a struct lvalue");
                }
                let fr = self.field_ref(sid, field)?;
                let ty = fr.ty.clone();
                Ok(HExpr {
                    ty,
                    kind: HExprKind::Member(Box::new(base), fr),
                })
            }
            Expr::Arrow(base, field) => {
                let base = self.check_expr(base)?;
                let bty = base.ty.decay();
                let sid = match bty.pointee() {
                    Some(Type::Struct(sid)) => *sid,
                    _ => return self.err(format_args!("`->` on non-struct-pointer {}", base.ty)),
                };
                let fr = self.field_ref(sid, field)?;
                let ty = fr.ty.clone();
                Ok(HExpr {
                    ty,
                    kind: HExprKind::Arrow(Box::new(decay_expr(base)), fr),
                })
            }
            Expr::Call(name, args) => self.check_call(name, args),
            Expr::Cast(te, inner) => {
                let target = self.resolve_type(te)?;
                let inner = self.check_expr(inner)?;
                let from = inner.ty.decay();
                let ok = match (&from, &target) {
                    (a, b) if a.is_scalar() && b.is_scalar() => true,
                    (_, Type::Void) => true, // (void)e discards
                    _ => false,
                };
                if !ok {
                    return self.err(format_args!("invalid cast from {} to {}", inner.ty, target));
                }
                Ok(HExpr {
                    ty: target,
                    kind: HExprKind::Cast(Box::new(decay_expr(inner))),
                })
            }
        }
    }

    fn field_ref(&self, sid: StructId, field: &str) -> Result<FieldRef, SemaError> {
        let layout = self.types.layout(sid);
        match layout.field(field) {
            Some(f) => Ok(FieldRef {
                offset: f.offset,
                ty: f.ty.clone(),
            }),
            None => self.err(format_args!(
                "struct `{}` has no field `{field}`",
                layout.name
            )),
        }
    }

    fn check_binary(&mut self, op: BinaryOp, lhs: &Expr, rhs: &Expr) -> Result<HExpr, SemaError> {
        let lhs = self.check_expr(lhs)?;
        let rhs = self.check_expr(rhs)?;
        let (lt, rt) = (lhs.ty.decay(), rhs.ty.decay());
        use BinaryOp::*;
        let ty = match op {
            Add => match (lt.is_ptr(), rt.is_ptr()) {
                (true, false) if rt.is_integer() => lt.clone(),
                (false, true) if lt.is_integer() => rt.clone(),
                (false, false) if lt.is_integer() && rt.is_integer() => Type::Int,
                _ => return self.err(format_args!("invalid operands to `+`: {lt} and {rt}")),
            },
            Sub => match (lt.is_ptr(), rt.is_ptr()) {
                (true, false) if rt.is_integer() => lt.clone(),
                (true, true) => {
                    if lt != rt {
                        return self.err("pointer difference needs matching types");
                    }
                    Type::Int
                }
                (false, false) if lt.is_integer() && rt.is_integer() => Type::Int,
                _ => return self.err(format_args!("invalid operands to `-`: {lt} and {rt}")),
            },
            Mul | Div | Rem | BitAnd | BitOr | BitXor | Shl | Shr => {
                if !(lt.is_integer() && rt.is_integer()) {
                    return self.err(format_args!("integer operator on {lt} and {rt}"));
                }
                Type::Int
            }
            Lt | Le | Gt | Ge | Eq | Ne => {
                let compatible = (lt.is_integer() && rt.is_integer())
                    || (lt.is_ptr() && rt.is_ptr())
                    || (lt.is_ptr() && rt.is_integer())
                    || (lt.is_integer() && rt.is_ptr());
                if !compatible {
                    return self.err(format_args!("cannot compare {lt} and {rt}"));
                }
                Type::Int
            }
        };
        Ok(HExpr {
            ty,
            kind: HExprKind::Binary(op, Box::new(decay_expr(lhs)), Box::new(decay_expr(rhs))),
        })
    }

    fn check_call(&mut self, name: &str, args: &[Expr]) -> Result<HExpr, SemaError> {
        // Intrinsics first.
        let intrinsic = match name {
            "__setbound" => Some((Intrinsic::SetBound, 2)),
            "__unbound" => Some((Intrinsic::Unbound, 1)),
            "__freebound" => Some((Intrinsic::FreeBound, 1)),
            "__readbase" => Some((Intrinsic::ReadBase, 1)),
            "__readbound" => Some((Intrinsic::ReadBound, 1)),
            "__mulh" => Some((Intrinsic::Mulh, 2)),
            "print_int" => Some((Intrinsic::PrintInt, 1)),
            "print_char" => Some((Intrinsic::PrintChar, 1)),
            "halt" => Some((Intrinsic::Halt, 1)),
            _ => None,
        };
        if let Some((which, arity)) = intrinsic {
            if args.len() != arity {
                return self.err(format_args!("`{name}` expects {arity} argument(s)"));
            }
            let mut hargs = Vec::new();
            for a in args {
                hargs.push(decay_expr(self.check_expr(a)?));
            }
            let ty = match which {
                Intrinsic::SetBound | Intrinsic::Unbound => {
                    let pty = hargs[0].ty.decay();
                    if !pty.is_ptr() {
                        return self.err(format_args!("`{name}` needs a pointer argument"));
                    }
                    if which == Intrinsic::SetBound && !hargs[1].ty.decay().is_integer() {
                        return self.err("`__setbound` size must be an integer");
                    }
                    pty
                }
                Intrinsic::FreeBound => {
                    if !hargs[0].ty.decay().is_ptr() {
                        return self.err("`__freebound` needs a pointer argument");
                    }
                    Type::Void
                }
                Intrinsic::ReadBase | Intrinsic::ReadBound => {
                    if !hargs[0].ty.decay().is_ptr() {
                        return self.err(format_args!("`{name}` needs a pointer argument"));
                    }
                    Type::Int
                }
                Intrinsic::Mulh => {
                    for a in &hargs {
                        if !a.ty.decay().is_integer() {
                            return self.err("`__mulh` needs integer arguments");
                        }
                    }
                    Type::Int
                }
                Intrinsic::PrintInt | Intrinsic::PrintChar | Intrinsic::Halt => {
                    if !hargs[0].ty.decay().is_integer() {
                        return self.err(format_args!("`{name}` needs an integer argument"));
                    }
                    Type::Void
                }
            };
            return Ok(HExpr {
                ty,
                kind: HExprKind::Intrinsic(which, hargs),
            });
        }

        let Some(&idx) = self.func_ids.get(name) else {
            return self.err(format_args!("unknown function `{name}`"));
        };
        let sig_params = self.func_sigs[idx].params.clone();
        let ret = self.func_sigs[idx].ret.clone();
        if args.len() != sig_params.len() {
            return self.err(format_args!(
                "`{name}` expects {} argument(s), got {}",
                sig_params.len(),
                args.len()
            ));
        }
        let mut hargs = Vec::new();
        for (a, pty) in args.iter().zip(&sig_params) {
            let ha = self.check_expr(a)?;
            hargs.push(self.coerce(ha, pty)?);
        }
        Ok(HExpr {
            ty: ret,
            kind: HExprKind::Call(idx, hargs),
        })
    }
}

/// Wraps an array-typed lvalue in an explicit [`HExprKind::Decay`] node.
/// Codegen materializes the array's address here and, under HardBound
/// instrumentation, narrows the pointer's bounds to the array's extent
/// (paper §3.2, "protecting sub-objects").
fn decay_expr(e: HExpr) -> HExpr {
    match &e.ty {
        Type::Array(_, _) => {
            let ty = e.ty.decay();
            HExpr {
                ty,
                kind: HExprKind::Decay(Box::new(e)),
            }
        }
        _ => e,
    }
}
