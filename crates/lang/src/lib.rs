//! Front end for **Cb**, the C subset this reproduction uses in place of
//! the paper's CIL + GCC toolchain.
//!
//! The paper's prototype compiler applies CIL source-to-source
//! transformations to C programs and compiles them with GCC (§5.1). This
//! workspace cannot ship GCC, so `hardbound-lang` implements a compact C
//! front end covering everything the evaluation needs: pointers and pointer
//! arithmetic, structs with embedded arrays (the sub-object case of §2.2/
//! §3.2), casts, strings, and the usual statements. `hardbound-compiler`
//! lowers the resulting HIR to the simulator ISA with the paper's
//! instrumentation modes.
//!
//! ```
//! let source = r"
//!     struct node { char str[5]; int x; };
//!     int main() {
//!         struct node n;
//!         n.x = 7;
//!         return n.x;
//!     }
//! ";
//! let unit = hardbound_lang::parse(source)?;
//! let hir = hardbound_lang::check(&unit)?;
//! assert_eq!(hir.funcs[hir.main].name, "main");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod parser;
pub mod pretty;
mod sema;
mod token;
pub mod types;

pub use parser::{parse, ParseError};
pub use sema::{
    check, FieldRef, GlobalId, HExpr, HExprKind, HFunc, HGlobal, HLocal, HStmt, Hir, Intrinsic,
    LocalId, SemaError,
};
pub use token::{lex, LexError, Span, Tok};

/// Parses and type-checks a translation unit in one step.
///
/// # Errors
///
/// Returns a formatted message for lexical, syntactic or semantic errors.
pub fn frontend(source: &str) -> Result<Hir, String> {
    let unit = parse(source).map_err(|e| e.to_string())?;
    check(&unit).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::types::Type;
    use super::*;

    fn hir(src: &str) -> Hir {
        match frontend(src) {
            Ok(h) => h,
            Err(e) => panic!("frontend failed: {e}\nsource:\n{src}"),
        }
    }

    fn hir_err(src: &str) -> String {
        frontend(src).expect_err("expected frontend error")
    }

    #[test]
    fn minimal_program() {
        let h = hir("int main() { return 0; }");
        assert_eq!(h.funcs.len(), 1);
        assert_eq!(h.main, 0);
    }

    #[test]
    fn self_referential_struct() {
        let h = hir("struct list { int value; struct list *next; };\n\
             int main() { struct list l; l.next = 0; return l.value; }");
        let layout = h.types.layout(h.types.struct_id("list").unwrap());
        assert_eq!(layout.size, 8);
        assert_eq!(layout.field("next").unwrap().offset, 4);
    }

    #[test]
    fn embedding_incomplete_struct_is_rejected() {
        let e = hir_err("struct a { struct a inner; }; int main() { return 0; }");
        assert!(e.contains("incomplete"), "{e}");
    }

    #[test]
    fn globals_get_aligned_offsets() {
        let h = hir("char c; int i; char d; int arr[4]; int main() { return 0; }");
        assert_eq!(h.globals[0].offset, 0);
        assert_eq!(h.globals[1].offset, 4);
        assert_eq!(h.globals[2].offset, 8);
        assert_eq!(h.globals[3].offset, 12);
        assert_eq!(h.globals_size, 28);
    }

    #[test]
    fn global_initializers_constant_folded() {
        let h = hir("int a = 5; int b = -3; int main() { return a + b; }");
        assert_eq!(h.globals[0].init, 5);
        assert_eq!(h.globals[1].init, -3);
    }

    #[test]
    fn pointer_arithmetic_types() {
        let h = hir("int main() {\n\
               int a[10];\n\
               int *p = a + 2;\n\
               int n = p - a;\n\
               p = p - 1;\n\
               return n + *p;\n\
             }");
        let f = &h.funcs[0];
        assert_eq!(f.locals[1].ty, Type::Int.ptr());
        assert_eq!(f.locals[2].ty, Type::Int);
    }

    #[test]
    fn array_decay_nodes_are_inserted() {
        let h = hir("int main() { int a[4]; int *p = a; return p[0]; }");
        let HStmt::Init(_, init) = &h.funcs[0].body[0] else {
            panic!()
        };
        assert!(
            matches!(&init.kind, HExprKind::Decay(_)),
            "array initializer must decay explicitly, got {:?}",
            init.kind
        );
    }

    #[test]
    fn member_array_decays_for_sub_object_narrowing() {
        // The paper's §3.2 example: char *ptr = node.str;
        let h = hir("struct node { char str[5]; int x; };\n\
             int main() { struct node n; char *p = n.str; return 0; }");
        let HStmt::Init(_, init) = &h.funcs[0].body[0] else {
            panic!()
        };
        let HExprKind::Decay(inner) = &init.kind else {
            panic!("got {:?}", init.kind)
        };
        assert!(matches!(inner.kind, HExprKind::Member(_, _)));
        assert_eq!(init.ty, Type::Char.ptr());
    }

    #[test]
    fn void_pointer_conversions_are_implicit() {
        hir("void *id(void *p) { return p; }\n\
             int main() { int x; int *p = id(&x); return *p; }");
    }

    #[test]
    fn incompatible_pointer_assignment_requires_cast() {
        let e = hir_err("int main() { int x; char *p; p = &x; return 0; }");
        assert!(e.contains("cannot convert"), "{e}");
        hir("int main() { int x; char *p; p = (char*)&x; return *p; }");
    }

    #[test]
    fn null_literal_converts_to_pointer() {
        hir("int main() { int *p = 0; return p == 0; }");
    }

    #[test]
    fn intrinsics_are_typed() {
        let h = hir("int main() {\n\
               int a[4];\n\
               int *p = __setbound(a, 16);\n\
               int *q = __unbound(p);\n\
               int b = __readbase(p);\n\
               int d = __readbound(p);\n\
               int m = __mulh(1000000, 1000000);\n\
               print_int(m);\n\
               print_char(65);\n\
               return b + d + (q == p);\n\
             }");
        let HStmt::Init(_, init) = &h.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            init.kind,
            HExprKind::Intrinsic(Intrinsic::SetBound, _)
        ));
        assert_eq!(init.ty, Type::Int.ptr());
    }

    #[test]
    fn sizeof_folds_to_constants() {
        let h = hir("struct node { char str[5]; int x; };\n\
             int main() { return sizeof(struct node) + sizeof(int*) + sizeof(char); }");
        let HStmt::Return(Some(e)) = &h.funcs[0].body[0] else {
            panic!()
        };
        // 12 + 4 + 1 — all folded to Int literals combined with Add nodes.
        fn sum(e: &HExpr) -> i64 {
            match &e.kind {
                HExprKind::Int(v) => *v,
                HExprKind::Binary(ast::BinaryOp::Add, a, b) => sum(a) + sum(b),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(sum(e), 17);
    }

    #[test]
    fn string_literals_pool_with_nul() {
        let h = hir("int main() { char *s = \"hi\"; return s == 0; }");
        assert_eq!(h.strings, vec![b"hi\0".to_vec()]);
    }

    #[test]
    fn for_loop_desugars_to_while_with_step() {
        let h =
            hir("int main() { int s = 0; for (int i = 0; i < 4; i = i + 1) s = s + i; return s; }");
        fn find_while(stmts: &[HStmt]) -> bool {
            stmts.iter().any(|s| match s {
                HStmt::While {
                    cond: Some(_),
                    step: Some(_),
                    ..
                } => true,
                HStmt::If { then, els, .. } => find_while(then) || find_while(els),
                _ => false,
            })
        }
        assert!(
            find_while(&h.funcs[0].body),
            "for must desugar to While with step"
        );
    }

    #[test]
    fn error_cases() {
        assert!(hir_err("int main() { return x; }").contains("unknown variable"));
        assert!(hir_err("int main() { f(); return 0; }").contains("unknown function"));
        assert!(
            hir_err("int f(int a) { return a; } int main() { return f(); }").contains("expects 1")
        );
        assert!(hir_err("int main() { break; }").contains("outside a loop"));
        assert!(hir_err("int main() { 1 = 2; return 0; }").contains("lvalue"));
        assert!(hir_err("int main() { return *3; }").contains("dereference"));
        assert!(hir_err("void f() { return 1; } int main() { return 0; }")
            .contains("void function returns"));
        assert!(
            hir_err("int f() { return 1; } int f() { return 2; } int main() { return 0; }")
                .contains("duplicate function")
        );
        assert!(hir_err("int g() { return 1; }").contains("no `main`"));
        assert!(
            hir_err("struct s { int x; }; int main() { struct s v; return v.y; }")
                .contains("no field")
        );
        assert!(hir_err("int main() { int x; return x.y; }").contains("non-struct"));
        assert!(hir_err("int main() { void v; return 0; }").contains("void"));
    }

    #[test]
    fn logical_operators_and_ternary() {
        hir("int main() { int a = 1; int b = 0; return (a && !b) || (a ? b : 2); }");
    }

    #[test]
    fn char_and_int_interconvert() {
        hir("int main() {\n\
               char c = 65;\n\
               int i = c + 1;\n\
               c = i;\n\
               char buf[4];\n\
               buf[0] = c;\n\
               return buf[0];\n\
             }");
    }

    #[test]
    fn struct_pointer_navigation() {
        hir("struct tree { int v; struct tree *l; struct tree *r; };\n\
             int sum(struct tree *t) {\n\
               if (t == 0) return 0;\n\
               return t->v + sum(t->l) + sum(t->r);\n\
             }\n\
             int main() { return sum(0); }");
    }

    #[test]
    fn shadowing_in_nested_scopes() {
        hir("int main() {\n\
               int x = 1;\n\
               { int x = 2; print_int(x); }\n\
               return x;\n\
             }");
        assert!(hir_err("int main() { int x; int x; return 0; }").contains("duplicate variable"));
    }
}
