//! Abstract syntax of Cb, the C subset used in place of the paper's
//! CIL/GCC toolchain.
//!
//! Cb covers the constructs the Olden benchmarks and the §5.2 violation
//! corpus need: `int`/`char`/`void`, pointers, fixed-size arrays
//! (including arrays inside structs — the case object-table schemes cannot
//! protect, §2.2), structs, the usual statement forms, and C expression
//! syntax with pointer arithmetic and casts. Omissions relative to C are
//! listed in DESIGN.md (floats → fixed-point, no function pointers at the
//! source level, one declarator per declaration).

use std::fmt;

/// A type expression as written in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int` — 32-bit signed.
    Int,
    /// `char` — 8-bit unsigned.
    Char,
    /// `void` — only behind pointers or as a return type.
    Void,
    /// `struct NAME`.
    Struct(String),
    /// `T *`.
    Ptr(Box<TypeExpr>),
    /// `T [N]` (arrays of arrays are written `T [N][M]`).
    Array(Box<TypeExpr>, u32),
}

impl TypeExpr {
    /// Convenience: pointer to this type.
    #[must_use]
    pub fn ptr(self) -> TypeExpr {
        TypeExpr::Ptr(Box::new(self))
    }
}

/// Binary operators (assignment and short-circuit forms are separate
/// expression kinds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+` (pointer arithmetic scales by the pointee size).
    Add,
    /// `-` (pointer difference divides by the pointee size).
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer (or character) literal.
    Int(i64),
    /// String literal.
    Str(Vec<u8>),
    /// Variable or function reference.
    Ident(String),
    /// `sizeof(T)`.
    Sizeof(TypeExpr),
    /// Unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// `*e`.
    Deref(Box<Expr>),
    /// `&e`.
    AddrOf(Box<Expr>),
    /// Binary operator application.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `a && b` (short-circuit).
    LogicalAnd(Box<Expr>, Box<Expr>),
    /// `a || b` (short-circuit).
    LogicalOr(Box<Expr>, Box<Expr>),
    /// `lhs = rhs` (value is `rhs` after conversion).
    Assign(Box<Expr>, Box<Expr>),
    /// `c ? t : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `base.field`.
    Member(Box<Expr>, String),
    /// `base->field`.
    Arrow(Box<Expr>, String),
    /// `callee(args)` — callee is a function name (Cb has no source-level
    /// function pointers).
    Call(String, Vec<Expr>),
    /// `(T) e`.
    Cast(TypeExpr, Box<Expr>),
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration: `T name = init;`.
    Decl {
        /// Declared type.
        ty: TypeExpr,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `if (cond) then else els`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Optional else branch.
        els: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init statement (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Optional condition (missing = infinite).
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return e;` / `return;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `{ ... }`.
    Block(Vec<Stmt>),
    /// Lone `;`.
    Empty,
}

/// A struct field declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field type.
    pub ty: TypeExpr,
    /// Field name.
    pub name: String,
}

/// A struct definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructDecl {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldDecl>,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Parameter type.
    pub ty: TypeExpr,
    /// Parameter name.
    pub name: String,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncDecl {
    /// Return type.
    pub ret: TypeExpr,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A global variable definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Declared type.
    pub ty: TypeExpr,
    /// Variable name.
    pub name: String,
    /// Optional constant initializer (integer literals only).
    pub init: Option<Expr>,
}

/// A whole translation unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Unit {
    /// Struct definitions.
    pub structs: Vec<StructDecl>,
    /// Global variables.
    pub globals: Vec<GlobalDecl>,
    /// Functions.
    pub funcs: Vec<FuncDecl>,
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Int => write!(f, "int"),
            TypeExpr::Char => write!(f, "char"),
            TypeExpr::Void => write!(f, "void"),
            TypeExpr::Struct(n) => write!(f, "struct {n}"),
            TypeExpr::Ptr(inner) => write!(f, "{inner}*"),
            TypeExpr::Array(inner, n) => write!(f, "{inner}[{n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        let t = TypeExpr::Struct("node".into()).ptr();
        assert_eq!(t.to_string(), "struct node*");
        assert_eq!(
            TypeExpr::Array(Box::new(TypeExpr::Char), 5).to_string(),
            "char[5]"
        );
    }

    #[test]
    fn ptr_builder() {
        assert_eq!(TypeExpr::Int.ptr(), TypeExpr::Ptr(Box::new(TypeExpr::Int)));
    }
}
