//! Pretty-printer for the Cb AST.
//!
//! Produces parseable source: `parse(print(unit)) == unit` (modulo the
//! printer's fully-parenthesized expressions), which the round-trip
//! property test in `tests/roundtrip.rs` verifies on generated programs.

use std::fmt::Write as _;

use crate::ast::{
    BinaryOp, Expr, FuncDecl, GlobalDecl, Param, Stmt, StructDecl, TypeExpr, UnaryOp, Unit,
};

/// Renders a whole translation unit as Cb source.
#[must_use]
pub fn print_unit(unit: &Unit) -> String {
    let mut out = String::new();
    for s in &unit.structs {
        print_struct(&mut out, s);
    }
    for g in &unit.globals {
        print_global(&mut out, g);
    }
    for f in &unit.funcs {
        print_func(&mut out, f);
    }
    out
}

fn print_struct(out: &mut String, s: &StructDecl) {
    let _ = writeln!(out, "struct {} {{", s.name);
    for f in &s.fields {
        let _ = writeln!(out, "    {};", declarator(&f.ty, &f.name));
    }
    let _ = writeln!(out, "}};");
}

fn print_global(out: &mut String, g: &GlobalDecl) {
    match &g.init {
        Some(init) => {
            let _ = writeln!(
                out,
                "{} = {};",
                declarator(&g.ty, &g.name),
                print_expr(init)
            );
        }
        None => {
            let _ = writeln!(out, "{};", declarator(&g.ty, &g.name));
        }
    }
}

fn print_func(out: &mut String, f: &FuncDecl) {
    let params = if f.params.is_empty() {
        String::new()
    } else {
        f.params
            .iter()
            .map(|Param { ty, name }| declarator(ty, name))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "{} {}({params}) {{", type_prefix(&f.ret), f.name);
    for s in &f.body {
        print_stmt(out, s, 1);
    }
    let _ = writeln!(out, "}}");
}

/// A declaration of `name` with type `ty`, in C declarator syntax
/// (`int *p`, `char buf[5]`, `int m[2][3]`).
fn declarator(ty: &TypeExpr, name: &str) -> String {
    // Peel array suffixes (outermost first).
    let mut dims = Vec::new();
    let mut base = ty;
    while let TypeExpr::Array(inner, n) = base {
        dims.push(*n);
        base = inner;
    }
    let mut s = format!("{} {name}", type_prefix(base));
    for n in dims {
        let _ = write!(s, "[{n}]");
    }
    s
}

/// A non-array type as a prefix: base keyword plus pointer stars.
fn type_prefix(ty: &TypeExpr) -> String {
    match ty {
        TypeExpr::Int => "int".to_owned(),
        TypeExpr::Char => "char".to_owned(),
        TypeExpr::Void => "void".to_owned(),
        TypeExpr::Struct(n) => format!("struct {n}"),
        TypeExpr::Ptr(inner) => format!("{}*", type_prefix(inner)),
        // Arrays behind pointers cannot be spelled in Cb declarators;
        // the parser never produces them except via declarator suffixes,
        // which `declarator` handles before calling here.
        TypeExpr::Array(inner, n) => format!("{}[{n}]", type_prefix(inner)),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{};", print_expr(e));
        }
        Stmt::Decl { ty, name, init } => match init {
            Some(e) => {
                let _ = writeln!(out, "{} = {};", declarator(ty, name), print_expr(e));
            }
            None => {
                let _ = writeln!(out, "{};", declarator(ty, name));
            }
        },
        Stmt::If { cond, then, els } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_stmt_body(out, then, depth);
            match els {
                Some(e) => {
                    indent(out, depth);
                    let _ = writeln!(out, "}} else {{");
                    print_stmt_body(out, e, depth);
                    indent(out, depth);
                    let _ = writeln!(out, "}}");
                }
                None => {
                    indent(out, depth);
                    let _ = writeln!(out, "}}");
                }
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_stmt_body(out, body, depth);
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let init_s = match init {
                Some(s) => {
                    let mut tmp = String::new();
                    print_stmt(&mut tmp, s, 0);
                    tmp.trim_end().trim_end_matches(';').to_owned() + ";"
                }
                None => ";".to_owned(),
            };
            let cond_s = cond.as_ref().map(print_expr).unwrap_or_default();
            let step_s = step.as_ref().map(print_expr).unwrap_or_default();
            let _ = writeln!(out, "for ({init_s} {cond_s}; {step_s}) {{");
            print_stmt_body(out, body, depth);
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", print_expr(e));
        }
        Stmt::Return(None) => {
            let _ = writeln!(out, "return;");
        }
        Stmt::Break => {
            let _ = writeln!(out, "break;");
        }
        Stmt::Continue => {
            let _ = writeln!(out, "continue;");
        }
        Stmt::Block(stmts) => {
            let _ = writeln!(out, "{{");
            for inner in stmts {
                print_stmt(out, inner, depth + 1);
            }
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
        Stmt::Empty => {
            let _ = writeln!(out, ";");
        }
    }
}

fn print_stmt_body(out: &mut String, s: &Stmt, depth: usize) {
    // Bodies are printed inside explicit braces; flatten a block statement
    // so the round trip does not accumulate nesting.
    match s {
        Stmt::Block(stmts) => {
            for inner in stmts {
                print_stmt(out, inner, depth + 1);
            }
        }
        other => print_stmt(out, other, depth + 1),
    }
}

/// Renders an expression, fully parenthesized (associativity-safe).
#[must_use]
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => {
            if *v < 0 {
                format!("(0 - {})", v.unsigned_abs())
            } else {
                format!("{v}")
            }
        }
        Expr::Str(bytes) => {
            let mut s = String::from("\"");
            for &b in bytes {
                match b {
                    b'\n' => s.push_str("\\n"),
                    b'\t' => s.push_str("\\t"),
                    0 => s.push_str("\\0"),
                    b'"' => s.push_str("\\\""),
                    b'\\' => s.push_str("\\\\"),
                    other => s.push(other as char),
                }
            }
            s.push('"');
            s
        }
        Expr::Ident(n) => n.clone(),
        Expr::Sizeof(ty) => format!("sizeof({})", type_prefix(ty)),
        Expr::Unary(op, a) => {
            let o = match op {
                UnaryOp::Neg => "-",
                UnaryOp::Not => "!",
                UnaryOp::BitNot => "~",
            };
            format!("({o}{})", print_expr(a))
        }
        Expr::Deref(a) => format!("(*{})", print_expr(a)),
        Expr::AddrOf(a) => format!("(&{})", print_expr(a)),
        Expr::Binary(op, a, b) => {
            let o = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::Rem => "%",
                BinaryOp::BitAnd => "&",
                BinaryOp::BitOr => "|",
                BinaryOp::BitXor => "^",
                BinaryOp::Shl => "<<",
                BinaryOp::Shr => ">>",
                BinaryOp::Lt => "<",
                BinaryOp::Le => "<=",
                BinaryOp::Gt => ">",
                BinaryOp::Ge => ">=",
                BinaryOp::Eq => "==",
                BinaryOp::Ne => "!=",
            };
            format!("({} {o} {})", print_expr(a), print_expr(b))
        }
        Expr::LogicalAnd(a, b) => format!("({} && {})", print_expr(a), print_expr(b)),
        Expr::LogicalOr(a, b) => format!("({} || {})", print_expr(a), print_expr(b)),
        Expr::Assign(a, b) => format!("({} = {})", print_expr(a), print_expr(b)),
        Expr::Cond(c, t, f) => {
            format!(
                "({} ? {} : {})",
                print_expr(c),
                print_expr(t),
                print_expr(f)
            )
        }
        Expr::Index(a, i) => format!("{}[{}]", print_expr(a), print_expr(i)),
        Expr::Member(a, f) => format!("{}.{f}", print_expr(a)),
        Expr::Arrow(a, f) => format!("{}->{f}", print_expr(a)),
        Expr::Call(name, args) => {
            let args = args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            format!("{name}({args})")
        }
        Expr::Cast(ty, a) => format!("(({}){})", type_prefix(ty), print_expr(a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(src: &str) {
        let unit = parse(src).expect("source parses");
        let printed = print_unit(&unit);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed source fails to parse: {e}\n{printed}"));
        let reprinted = print_unit(&reparsed);
        assert_eq!(printed, reprinted, "printing must be a fixed point");
    }

    #[test]
    fn roundtrip_structures_and_functions() {
        roundtrip(
            "struct node { char str[5]; int x; struct node *next; };\n\
             int g = 42;\n\
             int arr[10];\n\
             int add(int a, int b) { return a + b; }\n\
             int main() {\n\
               struct node n;\n\
               n.x = add(1, 2);\n\
               int *p = &n.x;\n\
               for (int i = 0; i < 3; i = i + 1) { if (i == 1) continue; else *p = *p + i; }\n\
               while (n.x > 0) { n.x = n.x - 1; break; }\n\
               char *s = \"hi\\n\";\n\
               return n.x + sizeof(struct node) + (1 ? 2 : 3) + (s != 0);\n\
             }",
        );
    }

    #[test]
    fn roundtrip_expressions() {
        roundtrip(
            "int main() {\n\
               int a[4];\n\
               int x = -5;\n\
               x = ~x + !x + a[1] * (x << 2) % 7 & 3 | 1 ^ 2;\n\
               int *p = (int*)a;\n\
               return p[0] == a[0] && p != 0 || x < 3;\n\
             }",
        );
    }

    #[test]
    fn printed_code_is_executable() {
        // Not just parseable: the printed program must behave identically.
        let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
                   int main() { return fib(10); }";
        let unit = parse(src).unwrap();
        let printed = print_unit(&unit);
        let h1 = crate::check(&parse(src).unwrap()).unwrap();
        let h2 = crate::check(&parse(&printed).unwrap()).unwrap();
        // Same functions, same structure.
        assert_eq!(h1.funcs.len(), h2.funcs.len());
        assert_eq!(h1.funcs[h1.main].name, h2.funcs[h2.main].name);
    }
}
