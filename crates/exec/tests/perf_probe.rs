//! Developer probe (ignored by default): per-workload engine vs
//! interpreter wall-clock with block-cache statistics, doubling as a
//! statistics-identity differential over the whole Olden suite. Run with
//! `cargo test --release -p hardbound_exec --test perf_probe -- --ignored
//! --nocapture`.

use hardbound_compiler::Mode;
use hardbound_core::PointerEncoding;
use hardbound_exec::Engine;
use hardbound_runtime::{build_machine, compile};
use hardbound_workloads::{all, Scale};
use std::time::{Duration, Instant};

#[test]
#[ignore]
fn per_workload() {
    for w in all(Scale::Smoke) {
        let p = compile(&w.source, Mode::HardBound).unwrap();
        let mut interp = Duration::MAX;
        let mut engine = Duration::MAX;
        let mut es = None;
        for _ in 0..5 {
            let mut m = build_machine(p.clone(), Mode::HardBound, PointerEncoding::Intern4);
            let t0 = Instant::now();
            let a = m.run();
            interp = interp.min(t0.elapsed());
            let mut e = Engine::new(build_machine(
                p.clone(),
                Mode::HardBound,
                PointerEncoding::Intern4,
            ));
            let t0 = Instant::now();
            let b = e.run();
            engine = engine.min(t0.elapsed());
            assert_eq!(a.stats, b.stats, "{}", w.name);
            es = Some(e.stats());
        }
        let es = es.unwrap();
        println!("{:10} interp {interp:>9.1?} engine {engine:>9.1?} ratio {:4.2} decoded {:>5} hits {:>8} stepped {:>6} blocks {:>8}",
            w.name, interp.as_secs_f64()/engine.as_secs_f64(), es.cache.decoded, es.cache.hits, es.stepped_insts, es.blocks_executed);
    }
}
