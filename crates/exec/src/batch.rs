//! Deterministic parallel batch driver.
//!
//! The evaluation's outer loops — 288 violation pairs × modes, 9 Olden
//! ports × encodings — are embarrassingly parallel: every job compiles and
//! simulates its own machine with zero shared state. [`map`] fans a job
//! list across `std::thread` workers and returns results **in input
//! order**, so a parallelized driver produces byte-identical reports to the
//! serial loop it replaces.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parses an `HB_JOBS`-style worker-count value: `None`/empty means "not
/// set" (fall back to available parallelism), otherwise the value must be
/// an integer ≥ 1.
///
/// # Errors
///
/// Returns a diagnostic for unparseable or zero values — the old behaviour
/// of silently falling through to `available_parallelism` turned typos
/// (`HB_JOBS=abc`) and impossible requests (`HB_JOBS=0`) into surprise
/// full-width parallelism.
pub fn parse_jobs(value: Option<&str>) -> Result<Option<usize>, String> {
    let Some(v) = value else { return Ok(None) };
    let v = v.trim();
    if v.is_empty() {
        return Ok(None);
    }
    match v.parse::<usize>() {
        Ok(0) => Err("HB_JOBS must be at least 1 (set HB_JOBS=1 for a serial run)".to_owned()),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "HB_JOBS must be a positive integer worker count, got `{v}`"
        )),
    }
}

/// Worker count: `HB_JOBS` if set (≥ 1), else the machine's available
/// parallelism.
///
/// # Panics
///
/// Panics with a clear diagnostic when `HB_JOBS` is set but not a positive
/// integer (see [`parse_jobs`]).
#[must_use]
pub fn default_workers() -> usize {
    let jobs = std::env::var("HB_JOBS").ok();
    match parse_jobs(jobs.as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        Err(e) => panic!("{e}"),
    }
}

/// Applies `f` to every item on [`default_workers`] threads, preserving
/// input order in the results.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (a panicking job poisons
/// nothing: each job owns its slot).
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    map_with_workers(items, default_workers(), f)
}

/// [`map`] with an explicit worker count (`1` degrades to the plain serial
/// loop — the `--interp`-style escape hatch for debugging).
pub fn map_with_workers<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    // Work-stealing by atomic index: each job's input and output live in
    // dedicated slots, so result order is the input order regardless of
    // which worker ran what.
    let queue: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = queue[i]
                    .lock()
                    .expect("job slot lock")
                    .take()
                    .expect("each slot is taken once");
                let r = f(i, item);
                *results[i].lock().expect("result slot lock") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("every job completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = map(items.clone(), |i, x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn matches_the_serial_path_exactly() {
        let items: Vec<u32> = (0..100).rev().collect();
        let serial = map_with_workers(items.clone(), 1, |i, x| (i, x.wrapping_mul(2654435761)));
        let parallel = map_with_workers(items, 8, |i, x| (i, x.wrapping_mul(2654435761)));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_item_batches() {
        let empty: Vec<u8> = Vec::new();
        assert!(map(empty, |_, x: u8| x).is_empty());
        assert_eq!(map(vec![7u8], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn worker_count_honors_env_floor() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn jobs_parsing_rejects_invalid_values() {
        assert_eq!(parse_jobs(None), Ok(None));
        assert_eq!(parse_jobs(Some("")), Ok(None));
        assert_eq!(parse_jobs(Some("  ")), Ok(None));
        assert_eq!(parse_jobs(Some("1")), Ok(Some(1)));
        assert_eq!(parse_jobs(Some(" 8 ")), Ok(Some(8)));
        let zero = parse_jobs(Some("0")).expect_err("0 workers is impossible");
        assert!(zero.contains("at least 1"), "{zero}");
        for bad in ["abc", "-2", "1.5", "4x"] {
            let err = parse_jobs(Some(bad)).expect_err(bad);
            assert!(err.contains(bad), "diagnostic must quote the value: {err}");
            assert!(err.contains("HB_JOBS"), "{err}");
        }
    }
}
