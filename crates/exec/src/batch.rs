//! Deterministic parallel batch driver.
//!
//! The evaluation's outer loops — 288 violation pairs × modes, 9 Olden
//! ports × encodings — are embarrassingly parallel: every job compiles and
//! simulates its own machine with zero shared state. [`map`] fans a job
//! list across `std::thread` workers and returns results **in input
//! order**, so a parallelized driver produces byte-identical reports to the
//! serial loop it replaces.
//!
//! Scheduling is a **lock-free claimed-by-atomic-index** design: jobs are
//! claimed by a single `fetch_add` on a shared cursor (dynamic load
//! balancing — a worker stuck on a slow job never strands queued work),
//! inputs are read straight from the shared slice, and each result lands
//! in its own write-once [`OnceLock`] slot. The previous scheme took two
//! `Mutex` locks per job (one to take the input, one to store the output)
//! even though neither slot was ever contended.
//!
//! [`map_with_states`] additionally threads a per-worker mutable state
//! through the claim loop — the corpus service hands each worker its own
//! [`SharedBlockCache`](crate::SharedBlockCache) shard this way.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Parses an `HB_JOBS`-style worker-count value: `None`/empty means "not
/// set" (fall back to available parallelism), otherwise the value must be
/// an integer ≥ 1.
///
/// # Errors
///
/// Returns a diagnostic for unparseable or zero values — the old behaviour
/// of silently falling through to `available_parallelism` turned typos
/// (`HB_JOBS=abc`) and impossible requests (`HB_JOBS=0`) into surprise
/// full-width parallelism.
pub fn parse_jobs(value: Option<&str>) -> Result<Option<usize>, String> {
    let Some(v) = value else { return Ok(None) };
    let v = v.trim();
    if v.is_empty() {
        return Ok(None);
    }
    match v.parse::<usize>() {
        Ok(0) => Err("HB_JOBS must be at least 1 (set HB_JOBS=1 for a serial run)".to_owned()),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "HB_JOBS must be a positive integer worker count, got `{v}`"
        )),
    }
}

/// Worker count: `HB_JOBS` if set (≥ 1), else the machine's available
/// parallelism.
///
/// # Panics
///
/// Panics with a clear diagnostic when `HB_JOBS` is set but not a positive
/// integer (see [`parse_jobs`]).
#[must_use]
pub fn default_workers() -> usize {
    let jobs = std::env::var("HB_JOBS").ok();
    match parse_jobs(jobs.as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        Err(e) => panic!("{e}"),
    }
}

/// Applies `f` to every item on [`default_workers`] threads, preserving
/// input order in the results.
///
/// # Panics
///
/// Propagates a panic raised by `f` (a panicking job poisons nothing:
/// every slot is independent).
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with_workers(items, default_workers(), f)
}

/// [`map`] with an explicit worker count (`1` degrades to the plain serial
/// loop — the `--interp`-style escape hatch for debugging).
pub fn map_with_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut states = vec![(); workers.clamp(1, items.len().max(1))];
    map_with_states(items, &mut states, |(), i, t| f(i, t))
}

/// [`map`] with one mutable state per worker: `states.len()` workers run,
/// each claiming jobs off the shared cursor and threading its own `&mut S`
/// through every job it claims. Results are still returned in input
/// order, and — because job results must not depend on which worker ran
/// them — a state may only carry *transparent* mutable context (caches,
/// scratch buffers, statistics).
///
/// # Panics
///
/// Panics if `states` is empty; propagates a panic raised by `f`.
pub fn map_with_states<S, T, R, F>(items: &[T], states: &mut [S], f: F) -> Vec<R>
where
    S: Send,
    T: Sync,
    R: Send + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    assert!(!states.is_empty(), "need at least one worker state");
    let n = items.len();
    if states.len() == 1 || n <= 1 {
        let state = &mut states[0];
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(state, i, t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    {
        let (next, results, f, items) = (&next, &results, &f, items);
        std::thread::scope(|scope| {
            for state in states.iter_mut() {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(state, i, &items[i]);
                    // `i` was claimed exactly once, so the slot is empty.
                    assert!(results[i].set(r).is_ok(), "job slot set twice");
                });
            }
        });
    }
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn matches_the_serial_path_exactly() {
        let items: Vec<u32> = (0..100).rev().collect();
        let serial = map_with_workers(&items, 1, |i, x| (i, x.wrapping_mul(2654435761)));
        let parallel = map_with_workers(&items, 8, |i, x| (i, x.wrapping_mul(2654435761)));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_item_batches() {
        let empty: Vec<u8> = Vec::new();
        assert!(map(&empty, |_, &x| x).is_empty());
        assert_eq!(map(&[7u8], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn per_worker_states_cover_every_job_exactly_once() {
        let items: Vec<usize> = (0..500).collect();
        let mut tallies = vec![0usize; 4];
        let out = map_with_states(&items, &mut tallies, |count, i, &x| {
            assert_eq!(i, x);
            *count += 1;
            x + 1
        });
        assert_eq!(out, (1..=500).collect::<Vec<_>>());
        assert_eq!(
            tallies.iter().sum::<usize>(),
            500,
            "each job touched exactly one worker's state: {tallies:?}"
        );
    }

    #[test]
    fn more_states_than_items_is_fine() {
        let mut states = vec![(); 16];
        assert_eq!(
            map_with_states(&[1, 2], &mut states, |(), _, &x| x * 10),
            vec![10, 20]
        );
    }

    #[test]
    fn worker_count_honors_env_floor() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn jobs_parsing_rejects_invalid_values() {
        assert_eq!(parse_jobs(None), Ok(None));
        assert_eq!(parse_jobs(Some("")), Ok(None));
        assert_eq!(parse_jobs(Some("  ")), Ok(None));
        assert_eq!(parse_jobs(Some("1")), Ok(Some(1)));
        assert_eq!(parse_jobs(Some(" 8 ")), Ok(Some(8)));
        let zero = parse_jobs(Some("0")).expect_err("0 workers is impossible");
        assert!(zero.contains("at least 1"), "{zero}");
        for bad in ["abc", "-2", "1.5", "4x"] {
            let err = parse_jobs(Some(bad)).expect_err(bad);
            assert!(err.contains(bad), "diagnostic must quote the value: {err}");
            assert!(err.contains("HB_JOBS"), "{err}");
        }
    }
}
