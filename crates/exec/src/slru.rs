//! A reusable **segmented-LRU recency index** over slab slot ids.
//!
//! This is the probation/protected replacement scheme the decoded-block
//! cache pioneered ([`crate::SharedBlockCache`]), factored out so the
//! result store can run the same policy: fresh entries enter a
//! *probationary* segment and are promoted to a *protected* segment on
//! their first re-use, so a one-shot stream (an open-ended corpus sweep, a
//! cold figure grid) cannot wash a long-lived store's re-used entries out.
//! Eviction takes the probationary LRU first and touches the protected
//! segment only when probation is empty.
//!
//! The index tracks recency *only*: callers own the slab of values and a
//! key map, and pair every slab insert/remove/lookup with the matching
//! [`SlruIndex`] call. Slot ids are the caller's slab indices.

/// Sentinel for "no slot" in the intrusive lists.
const NONE: u32 = u32::MAX;

/// Which segment a tracked slot lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    /// Freshly inserted, not yet re-used.
    Probation,
    /// Re-used at least once; evicted only when probation is empty.
    Protected,
}

/// Head/tail/length of one segment's recency list (head = MRU).
#[derive(Clone, Copy, Debug)]
struct List {
    head: u32,
    tail: u32,
    len: usize,
}

impl List {
    const EMPTY: List = List {
        head: NONE,
        tail: NONE,
        len: 0,
    };
}

/// One tracked slot's intrusive links.
#[derive(Clone, Copy, Debug)]
struct Node {
    seg: Segment,
    prev: u32,
    next: u32,
}

/// The segmented-LRU recency index (see the module docs).
#[derive(Debug)]
pub(crate) struct SlruIndex {
    /// Links per slot id; untracked ids hold `None`.
    nodes: Vec<Option<Node>>,
    probation: List,
    protected: List,
    /// Maximum protected residents (the classic SLRU ~¾ split); promotion
    /// past this demotes the protected LRU back to probation instead of
    /// evicting it.
    protected_cap: usize,
}

impl SlruIndex {
    /// An empty index whose protected segment holds at most ~¾ of
    /// `capacity` entries.
    pub(crate) fn new(capacity: usize) -> SlruIndex {
        SlruIndex {
            nodes: Vec::new(),
            probation: List::EMPTY,
            protected: List::EMPTY,
            protected_cap: (capacity * 3 / 4).max(1),
        }
    }

    fn list_mut(&mut self, seg: Segment) -> &mut List {
        match seg {
            Segment::Probation => &mut self.probation,
            Segment::Protected => &mut self.protected,
        }
    }

    fn node(&self, id: u32) -> Node {
        self.nodes[id as usize].expect("tracked slot")
    }

    fn node_mut(&mut self, id: u32) -> &mut Node {
        self.nodes[id as usize].as_mut().expect("tracked slot")
    }

    /// Unthreads `id` from its segment list (the node stays allocated).
    fn unlink(&mut self, id: u32) {
        let Node { seg, prev, next } = self.node(id);
        if prev == NONE {
            self.list_mut(seg).head = next;
        } else {
            self.node_mut(prev).next = next;
        }
        if next == NONE {
            self.list_mut(seg).tail = prev;
        } else {
            self.node_mut(next).prev = prev;
        }
        self.list_mut(seg).len -= 1;
    }

    /// Starts tracking slot `id` as the probationary MRU.
    pub(crate) fn insert(&mut self, id: u32) {
        if self.nodes.len() <= id as usize {
            self.nodes.resize(id as usize + 1, None);
        }
        debug_assert!(self.nodes[id as usize].is_none(), "slot tracked twice");
        self.nodes[id as usize] = Some(Node {
            seg: Segment::Probation,
            prev: NONE,
            next: NONE,
        });
        self.push_front(Segment::Probation, id);
    }

    /// Threads `id` (not currently on any list) onto the MRU end of `seg`.
    fn push_front(&mut self, seg: Segment, id: u32) {
        let head = self.list_mut(seg).head;
        *self.node_mut(id) = Node {
            seg,
            prev: NONE,
            next: head,
        };
        if head != NONE {
            self.node_mut(head).prev = id;
        }
        let list = self.list_mut(seg);
        list.head = id;
        if list.tail == NONE {
            list.tail = id;
        }
        list.len += 1;
    }

    /// Records a re-use of `id`: promotes it to the protected MRU,
    /// demoting the protected LRU back to probation when the segment
    /// overflows its share (it stays resident, ahead of cold entries).
    pub(crate) fn touch(&mut self, id: u32) {
        self.unlink(id);
        self.push_front(Segment::Protected, id);
        while self.protected.len > self.protected_cap {
            let lru = self.protected.tail;
            self.unlink(lru);
            self.push_front(Segment::Probation, lru);
        }
    }

    /// Stops tracking `id` (after the caller removed it from its slab).
    pub(crate) fn remove(&mut self, id: u32) {
        self.unlink(id);
        self.nodes[id as usize] = None;
    }

    /// The current eviction victim: the probationary LRU, else the
    /// protected LRU, else `None` when nothing is tracked. The caller
    /// removes the victim from its slab and then calls
    /// [`SlruIndex::remove`].
    pub(crate) fn victim(&self) -> Option<u32> {
        if self.probation.tail != NONE {
            Some(self.probation.tail)
        } else if self.protected.tail != NONE {
            Some(self.protected.tail)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_is_fifo_until_touched() {
        let mut ix = SlruIndex::new(8);
        for id in 0..4 {
            ix.insert(id);
        }
        assert_eq!(ix.victim(), Some(0), "probationary LRU is the oldest");
        ix.remove(0);
        assert_eq!(ix.victim(), Some(1));
    }

    #[test]
    fn touched_entries_outlive_a_cold_stream() {
        let mut ix = SlruIndex::new(4);
        ix.insert(0);
        ix.touch(0); // promoted
        for id in 1..40 {
            ix.insert(id);
            let v = ix.victim().unwrap();
            assert_ne!(v, 0, "protected entry must not be the victim");
            ix.remove(v);
        }
    }

    #[test]
    fn protected_overflow_demotes_not_evicts() {
        let mut ix = SlruIndex::new(4); // protected cap = 3
        for id in 0..5 {
            ix.insert(id);
            ix.touch(id);
        }
        // All five still tracked; two have been demoted to probation.
        let mut seen = 0;
        while let Some(v) = ix.victim() {
            ix.remove(v);
            seen += 1;
        }
        assert_eq!(seen, 5);
    }
}
