//! The basic-block execution engine.
//!
//! [`Engine::run`] is a drop-in replacement for
//! [`Machine::run`](hardbound_core::Machine::run): identical observable
//! behaviour (output, ints, exit code, traps *including their program
//! counters*, and every [`ExecStats`](hardbound_core::ExecStats) counter),
//! reached by dispatching pre-decoded µop superblocks instead of
//! re-decoding one instruction per step. Semantics stay in
//! `hardbound-core` behind the [`ExecState`] interface; anything the block
//! path cannot express — indirect calls, environment calls, runs near the
//! fuel limit — falls back to the interpreter's own [`Machine::step`].

use std::sync::OnceLock;
use std::time::Instant;

use hardbound_core::{ExecState, Machine, MachineConfig, Meta, Pc, RunOutcome, Trap};
use hardbound_isa::{BinOp, FuncId, Program};
use hardbound_telemetry::{
    trace, BlockKey, BlockStat, Counter, Field, Histogram, SpanId, SpanTimer,
};

use crate::block::{Block, BlockCacheStats, ProgramId, SharedBlockCache};
use crate::opt::{self, OptConfig};
use crate::uop::{decode_block, Uop};

/// The global `hb_decode_us` histogram handle, resolved once — the decode
/// path must not take the registry lock per block.
fn decode_us_hist() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| hardbound_telemetry::global().histogram("hb_decode_us"))
}

/// Global optimizer metric handles, resolved once (same rationale as
/// [`decode_us_hist`]).
struct OptMetrics {
    emitted: Counter,
    elided: Counter,
    hoisted: Counter,
    coalesced: Counter,
    opt_us: Histogram,
}

fn opt_metrics() -> &'static OptMetrics {
    static M: OnceLock<OptMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let reg = hardbound_telemetry::global();
        OptMetrics {
            emitted: reg.counter("hb_checks_emitted"),
            elided: reg.counter("hb_checks_elided"),
            hoisted: reg.counter("hb_checks_hoisted"),
            coalesced: reg.counter("hb_checks_coalesced"),
            opt_us: reg.histogram("hb_opt_us"),
        }
    })
}

/// Global memory-hierarchy metric handles, resolved once (same rationale
/// as [`decode_us_hist`]). `hb_hier_us` records the wall time of each
/// [`Engine::run`] — the window over which that run's fast-path counters
/// accumulated.
struct HierMetrics {
    fastpath_hits: Counter,
    fastpath_misses: Counter,
    sampled_sets: Counter,
    hier_us: Histogram,
}

fn hier_metrics() -> &'static HierMetrics {
    static M: OnceLock<HierMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let reg = hardbound_telemetry::global();
        HierMetrics {
            fastpath_hits: reg.counter("hb_hier_fastpath_hits"),
            fastpath_misses: reg.counter("hb_hier_fastpath_misses"),
            sampled_sets: reg.counter("hb_hier_sampled_sets"),
            hier_us: reg.histogram("hb_hier_us"),
        }
    })
}

/// Whether `HB_PROF` enables the hot-spot profiler by default (read once;
/// [`Engine::set_profiling`] overrides per engine, which is what tests use
/// to exercise both states inside one process).
fn profiling_default() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("HB_PROF")
            .map(|v| matches!(v.trim(), "1" | "true" | "on" | "yes"))
            .unwrap_or(false)
    })
}

/// Per-superblock retire counters accumulated while profiling. The static
/// check mix of the block (`static_elided` / `static_taken`) is computed
/// once on first execution and credited per retire, so the per-dispatch
/// cost of profiling is four counter bumps behind one indexed load.
#[derive(Clone, Default)]
struct ProfCell {
    /// Identity of the block this cell is counting (`execs == 0` marks an
    /// untouched cell).
    func: u32,
    entry: u32,
    execs: u64,
    cycles: u64,
    elided: u64,
    taken: u64,
    static_elided: u64,
    static_taken: u64,
}

/// One run's profiler state. `cells` is a flat vector indexed by
/// block-cache id — the hot-path dispatch credit is an indexed bump, not
/// a hash lookup. If the cache reuses a slot for a different block
/// mid-run (eviction/invalidation), the displaced cell moves to
/// `spilled` so no retire is ever dropped; both drain into the
/// process-wide accumulator at the end of the run.
#[derive(Default)]
struct BlockProfile {
    cells: Vec<ProfCell>,
    spilled: Vec<ProfCell>,
}

/// Counters describing how a run was executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Behaviour of the cache the engine is bound to (decodes, hits,
    /// evictions, invalidations) — lifetime counters of that cache, which
    /// a shared cache accumulates across every engine bound to it.
    pub cache: BlockCacheStats,
    /// Blocks dispatched through the fast path.
    pub blocks_executed: u64,
    /// µops retired by the block dispatch loop.
    pub fast_uops: u64,
    /// Instructions executed via the `Machine::step` fallback (indirect
    /// calls, environment calls, and fuel-limited tails).
    pub stepped_insts: u64,
}

/// The engine's cache: its own private [`SharedBlockCache`], or a borrowed
/// long-lived one (a corpus-service shard) whose warm blocks outlive the
/// engine.
enum CacheBinding<'c> {
    Owned(Box<SharedBlockCache>),
    Shared(&'c mut SharedBlockCache),
}

impl CacheBinding<'_> {
    fn get(&self) -> &SharedBlockCache {
        match self {
            CacheBinding::Owned(c) => c,
            CacheBinding::Shared(c) => c,
        }
    }

    fn get_mut(&mut self) -> &mut SharedBlockCache {
        match self {
            CacheBinding::Owned(c) => c,
            CacheBinding::Shared(c) => c,
        }
    }
}

/// A machine driven through pre-decoded basic blocks.
///
/// The lifetime parameter is the borrow of a shared block cache
/// ([`Engine::with_shared_cache`]); engines that own their cache
/// ([`Engine::new`]) are `Engine<'static>`.
pub struct Engine<'c> {
    machine: Machine,
    cache: CacheBinding<'c>,
    /// Dense handle of this machine's program in the bound cache.
    prog: u32,
    pid: ProgramId,
    opt: OptConfig,
    /// Whether elided-check statistics are credited per completed segment
    /// instead of per access ([`Machine::elided_stats_static`], and never
    /// under audit, whose shadow checks want the per-access path).
    batch_stats: bool,
    blocks_executed: u64,
    fast_uops: u64,
    stepped_insts: u64,
    /// Hot-spot profiler: per-block retire counters indexed by cache id,
    /// flushed into the process-wide
    /// [`hardbound_telemetry::profile::global`] accumulator at the end of
    /// each run. `None` (the default unless `HB_PROF` is set) costs one
    /// `Option` test per dispatched block and changes nothing observable.
    profile: Option<BlockProfile>,
}

impl Engine<'static> {
    /// Wraps `machine` with its own default-capacity block cache. The
    /// optimizer configuration is taken from the environment
    /// ([`OptConfig::from_env`]).
    #[must_use]
    pub fn new(machine: Machine) -> Engine<'static> {
        Engine::with_block_capacity(machine, SharedBlockCache::DEFAULT_CAPACITY)
    }

    /// Wraps `machine` with its own default-capacity block cache and an
    /// explicit optimizer configuration (differential tests pin the opt
    /// and audit legs this way, independent of the environment).
    #[must_use]
    pub fn with_opt(machine: Machine, opt: OptConfig) -> Engine<'static> {
        let cache = Box::new(SharedBlockCache::new(SharedBlockCache::DEFAULT_CAPACITY));
        Engine::bind(machine, CacheBinding::Owned(cache), opt)
    }

    /// Wraps `machine` with its own block cache holding at most `capacity`
    /// decoded blocks (smaller caches exercise the eviction path).
    #[must_use]
    pub fn with_block_capacity(machine: Machine, capacity: usize) -> Engine<'static> {
        let cache = Box::new(SharedBlockCache::new(capacity));
        Engine::bind(machine, CacheBinding::Owned(cache), OptConfig::from_env())
    }
}

impl<'c> Engine<'c> {
    /// Binds `machine` to a long-lived shared cache: the machine's program
    /// is registered under its [`ProgramId`] (idempotently — a cache that
    /// has run this image before hands back its warm decoded blocks), and
    /// all decode work this run produces stays in `cache` for the next
    /// engine bound to it.
    #[must_use]
    pub fn with_shared_cache(machine: Machine, cache: &'c mut SharedBlockCache) -> Engine<'c> {
        Engine::bind(machine, CacheBinding::Shared(cache), OptConfig::from_env())
    }

    /// [`Engine::with_shared_cache`] with an explicit optimizer
    /// configuration. Optimized blocks are cached under a distinct
    /// [`ProgramId`] ([`ProgramId::of_opt`]), so optimized and unoptimized
    /// engines can share one cache without ever handing each other blocks.
    #[must_use]
    pub fn with_shared_cache_opt(
        machine: Machine,
        cache: &'c mut SharedBlockCache,
        opt: OptConfig,
    ) -> Engine<'c> {
        Engine::bind(machine, CacheBinding::Shared(cache), opt)
    }

    fn bind(machine: Machine, mut cache: CacheBinding<'c>, opt: OptConfig) -> Engine<'c> {
        let pid = ProgramId::of_opt(machine.program(), machine.config(), opt);
        let prog = cache.get_mut().register(pid, machine.program());
        let batch_stats = !opt.audit && machine.elided_stats_static();
        Engine {
            machine,
            cache,
            prog,
            pid,
            opt,
            batch_stats,
            blocks_executed: 0,
            fast_uops: 0,
            stepped_insts: 0,
            profile: profiling_default().then(BlockProfile::default),
        }
    }

    /// Turns the hot-spot profiler on or off for this engine, overriding
    /// the `HB_PROF` default. Enabling mid-run starts attribution at the
    /// next dispatched block; disabling drops any unflushed counters.
    pub fn set_profiling(&mut self, on: bool) {
        self.profile = on.then(BlockProfile::default);
    }

    /// The content-hash identity this engine's program is cached under.
    #[must_use]
    pub fn program_id(&self) -> ProgramId {
        self.pid
    }

    /// Runs to halt, trap, or fuel exhaustion — observationally identical
    /// to [`Machine::run`].
    pub fn run(&mut self) -> RunOutcome {
        let run_start = Instant::now();
        let fast_before = self.machine.hier_fast_stats();
        // After a block that ended in pure intra-function control flow
        // (branch/jump, or a call that entered its callee cleanly), the
        // machine cannot have halted or trapped, so the state re-check is
        // skipped — only the fuel gate runs.
        let mut check_state = true;
        loop {
            let gate = {
                let mut st = self.machine.exec_state();
                if check_state && (st.halted().is_some() || st.trap().is_some()) {
                    None
                } else if st.uops() >= st.fuel() {
                    st.set_trap(Trap::OutOfFuel);
                    None
                } else {
                    let (func, pc) = st.pc();
                    Some((func, pc, st.fuel() - st.uops()))
                }
            };
            let Some((func, pc, budget)) = gate else {
                break;
            };
            let id = self.lookup_or_decode(func, pc);
            let len = self.cache.get().block(id).uops.len() as u64;
            // A memory µop can retire up to two extra µops (metadata +
            // check); 3×len over-approximates the block's fuel draw. Runs
            // that close to the limit finish on the interpreter so the
            // per-step fuel accounting (and the exact µop count inside an
            // `OutOfFuel` outcome) matches `Machine::run` bit for bit.
            if 3 * len >= budget {
                self.interp_tail();
                break;
            }
            if self.profile.is_some() {
                let uops_before = self.machine.exec_state().uops();
                check_state = !self.exec_block(id, func);
                self.note_block_profile(func, pc, id, uops_before);
            } else {
                check_state = !self.exec_block(id, func);
            }
        }
        self.flush_profile();
        let outcome = self.machine.finish_outcome();
        let fast = self.machine.hier_fast_stats();
        let m = hier_metrics();
        m.fastpath_hits
            .add(fast.fastpath_hits - fast_before.fastpath_hits);
        m.fastpath_misses
            .add(fast.fastpath_misses - fast_before.fastpath_misses);
        m.sampled_sets
            .add(fast.sampled_sets - fast_before.sampled_sets);
        m.hier_us
            .record(run_start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        outcome
    }

    /// Engine-level counters for the run so far.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache.get().stats(),
            blocks_executed: self.blocks_executed,
            fast_uops: self.fast_uops,
            stepped_insts: self.stepped_insts,
        }
    }

    /// The wrapped machine (for post-run register/statistics inspection).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The decoded-block cache the engine is bound to (tests and
    /// diagnostics; invalidation is exposed here).
    pub fn block_cache_mut(&mut self) -> &mut SharedBlockCache {
        self.cache.get_mut()
    }

    /// Dense handle of this engine's program in the bound cache (pairs
    /// with the program-scoped [`SharedBlockCache`] invalidation API).
    #[must_use]
    pub fn program_handle(&self) -> u32 {
        self.prog
    }

    /// Hook for hosts that patch the program image (simulated stores never
    /// reach the code region — `region_ok` wild-faults them): reacts to a
    /// write of `len` bytes at `addr` by dropping exactly the decoded
    /// blocks embedding code the write overlaps — *this program's* blocks;
    /// a shared cache's other programs are untouched. A write range
    /// covering only data invalidates nothing, so a long-lived engine
    /// keeps its decode work where the pre-span API offered only the
    /// whole-function/whole-cache invalidations.
    pub fn note_code_write(&mut self, addr: u32, len: u32) {
        self.cache
            .get_mut()
            .invalidate_code_range(self.prog, addr, addr.saturating_add(len));
    }

    fn lookup_or_decode(&mut self, func: FuncId, pc: u32) -> usize {
        if let Some(id) = self.cache.get_mut().lookup(self.prog, func, pc) {
            return id;
        }
        // Cold path only: decode latency feeds the `hb_decode_us`
        // histogram, and under `HB_TRACE` each decode is a stamped span.
        let timer =
            trace::enabled().then(|| SpanTimer::start(trace::new_trace(), SpanId::NONE, "decode"));
        let started = Instant::now();
        let mut decoded = decode_block(self.machine.program(), func, pc, self.machine.config());
        decode_us_hist().record_duration(started.elapsed());
        if self.opt.enabled {
            let opt_started = Instant::now();
            let (optimized, ostats) = opt::optimize(&decoded, pc);
            let m = opt_metrics();
            m.opt_us.record_duration(opt_started.elapsed());
            m.emitted.add(ostats.emitted);
            m.elided.add(ostats.elided);
            m.hoisted.add(ostats.hoisted);
            m.coalesced.add(ostats.coalesced);
            if let Some(b) = optimized {
                decoded = b;
            }
        }
        if let Some(t) = timer {
            t.emit(vec![
                ("func".to_owned(), Field::from(u64::from(func.0))),
                ("pc".to_owned(), Field::from(u64::from(pc))),
                ("uops".to_owned(), Field::from(decoded.uops.len() as u64)),
            ]);
        }
        self.cache.get_mut().insert(self.prog, func, pc, decoded)
    }

    /// Dispatches one decoded block. The caller has already guaranteed the
    /// fuel budget covers the block's worst case. Returns `true` when the
    /// block ended in pure control flow that cannot have halted or trapped
    /// the machine.
    fn exec_block(&mut self, id: usize, func: FuncId) -> bool {
        let Engine {
            machine,
            cache,
            blocks_executed,
            fast_uops,
            stepped_insts,
            opt,
            batch_stats,
            ..
        } = self;
        *blocks_executed += 1;
        let block = cache.get().block(id);
        if block.fallback != 0 {
            // Guarded (optimizer-rewritten) block: a failed guard may
            // divert into the appended original copy, so dispatch carries
            // its own retired-µop accounting.
            return match (opt.audit, *batch_stats) {
                (true, _) => {
                    exec_guarded::<true, false>(machine, block, func, fast_uops, stepped_insts)
                }
                (false, true) => {
                    exec_guarded::<false, true>(machine, block, func, fast_uops, stepped_insts)
                }
                (false, false) => {
                    exec_guarded::<false, false>(machine, block, func, fast_uops, stepped_insts)
                }
            };
        }
        let uops = &block.uops;
        let n = uops.len();
        let audit = opt.audit;
        let mut st = machine.exec_state();

        // Straight-line µops: everything but the terminator. The audit and
        // batch flags pick a whole-loop instantiation so the per-µop path
        // tests nothing.
        let r = match (audit, *batch_stats) {
            (true, _) => exec_run::<true, false>(&mut st, &uops[..n - 1], func),
            (false, true) => exec_run::<false, true>(&mut st, &uops[..n - 1], func),
            (false, false) => exec_run::<false, false>(&mut st, &uops[..n - 1], func),
        };
        match r {
            Ok(()) => {
                if *batch_stats {
                    if let Some(&c) = block.elided_counts.first() {
                        st.bump_elided_checks(u64::from(c));
                    }
                }
            }
            Err((i, t)) => {
                if *batch_stats {
                    st.bump_elided_checks(elided_in(&uops[..i]));
                }
                // Mirror the interpreter: the trapping µop retires and the
                // pc is left pre-advanced past it.
                st.retire_uops(i as u64 + 1);
                *fast_uops += i as u64 + 1;
                if let Some(pc) = trap_pc(&t) {
                    st.set_pc(pc.func, pc.index + 1);
                }
                st.set_trap(t);
                return false;
            }
        }

        match uops[n - 1] {
            Uop::BranchRR {
                op,
                rs1,
                rs2,
                target,
                fall,
            } => {
                st.retire_uops(n as u64);
                *fast_uops += n as u64;
                let taken = op.eval(st.reg(rs1), st.reg(rs2));
                st.set_pc(func, if taken { target } else { fall });
                true
            }
            Uop::BranchRI {
                op,
                rs1,
                imm,
                target,
                fall,
            } => {
                st.retire_uops(n as u64);
                *fast_uops += n as u64;
                let taken = op.eval(st.reg(rs1), imm);
                st.set_pc(func, if taken { target } else { fall });
                true
            }
            Uop::Jump { target } => {
                st.retire_uops(n as u64);
                *fast_uops += n as u64;
                st.set_pc(func, target);
                true
            }
            Uop::Fall { target } => {
                // Synthesized by a superblock-cap cut: no dynamic µop.
                st.retire_uops(n as u64 - 1);
                *fast_uops += n as u64 - 1;
                st.set_pc(func, target);
                true
            }
            Uop::Call { func: callee, ret } => {
                st.retire_uops(n as u64);
                *fast_uops += n as u64;
                st.set_pc(func, ret);
                if let Err(t) = st.call(callee) {
                    st.set_trap(t);
                    false
                } else {
                    true
                }
            }
            Uop::Ret => {
                st.retire_uops(n as u64);
                *fast_uops += n as u64;
                // A non-halting return is pure control flow: skip the gate.
                !st.ret()
            }
            Uop::Step { idx } => {
                st.retire_uops(n as u64 - 1);
                *fast_uops += n as u64 - 1;
                st.set_pc(func, idx);
                drop(st);
                *stepped_insts += 1;
                if let Err(t) = machine.step() {
                    machine.exec_state().set_trap(t);
                }
                false
            }
            u => unreachable!("non-terminator {u:?} at block end"),
        }
    }

    /// Credits one dispatch of the block at `(func, entry)` to the
    /// profiler: one execution, the µops the machine retired across the
    /// dispatch (guarded fallback paths and `Step` interpreter escapes
    /// included — the delta is read from the machine's own retire counter,
    /// so attribution follows wherever dispatch actually went), and the
    /// block's static elided/taken check mix.
    fn note_block_profile(&mut self, func: FuncId, entry: u32, id: usize, uops_before: u64) {
        let uops_after = self.machine.exec_state().uops();
        let Some(prof) = self.profile.as_mut() else {
            return;
        };
        if id >= prof.cells.len() {
            prof.cells.resize_with(id + 1, ProfCell::default);
        }
        let cell = &mut prof.cells[id];
        if cell.execs != 0 && (cell.func, cell.entry) != (func.0, entry) {
            // The cache reused this slot for a different block mid-run;
            // park the displaced counts for the flush.
            prof.spilled.push(cell.clone());
            *cell = ProfCell::default();
        }
        if cell.execs == 0 {
            let block = self.cache.get().block(id);
            cell.func = func.0;
            cell.entry = entry;
            cell.static_elided = elided_in(&block.uops);
            cell.static_taken = block
                .uops
                .iter()
                .filter(|u| matches!(u, Uop::LoadHb { .. } | Uop::StoreHb { .. }))
                .count() as u64;
        }
        cell.execs += 1;
        cell.cycles += uops_after - uops_before;
        cell.elided += cell.static_elided;
        cell.taken += cell.static_taken;
    }

    /// Drains this run's per-block counters into the process-wide profile
    /// accumulator (labelled with function names from the program image and
    /// keyed under the program's stable content hash, so profiles from
    /// different processes — or different shards — merge exactly).
    fn flush_profile(&mut self) {
        let Some(prof) = self.profile.as_mut() else {
            return;
        };
        if prof.cells.is_empty() && prof.spilled.is_empty() {
            return;
        }
        let cells = std::mem::take(&mut prof.cells);
        let spilled = std::mem::take(&mut prof.spilled);
        let program = self.machine.program();
        let mut p = hardbound_telemetry::Profile::new();
        for cell in cells.iter().chain(&spilled) {
            if cell.execs == 0 {
                continue;
            }
            let name = program.func(FuncId(cell.func)).name.clone();
            p.record(
                BlockKey {
                    prog: self.pid.0,
                    func: cell.func,
                    entry: cell.entry,
                },
                &BlockStat {
                    name,
                    execs: cell.execs,
                    cycles: cell.cycles,
                    elided: cell.elided,
                    taken: cell.taken,
                },
            );
        }
        hardbound_telemetry::profile::global().add(&p);
    }

    /// Finishes the run on the interpreter — the exact `Machine::run` loop.
    fn interp_tail(&mut self) {
        loop {
            let mut st = self.machine.exec_state();
            if st.halted().is_some() || st.trap().is_some() {
                return;
            }
            if st.uops() >= st.fuel() {
                st.set_trap(Trap::OutOfFuel);
                return;
            }
            drop(st);
            self.stepped_insts += 1;
            if let Err(t) = self.machine.step() {
                self.machine.exec_state().set_trap(t);
            }
        }
    }
}

/// Builds a machine for `program` under `cfg` and runs it through the
/// engine.
///
/// # Panics
///
/// Panics if the program fails validation (as [`Machine::new`] does).
#[must_use]
pub fn run_program(program: Program, cfg: MachineConfig) -> RunOutcome {
    Engine::new(Machine::new(program, cfg)).run()
}

/// Dispatches one guarded block: `uops[..fallback]` is the optimized
/// stream, `uops[fallback..]` the verbatim original, and a failed
/// [`Uop::Guard`] jumps from the former into the latter. Both streams are
/// terminated, so whichever one dispatch ends on, the last µop of its
/// slice is the terminator.
///
/// Dispatch runs guard-free *segments* with the same tight slice loop as
/// [`Engine::exec_block`]'s fast path: each [`Uop::Guard`] carries the
/// index of the next guard (`next`), so the only per-segment work beyond
/// straight dispatch is the guard check itself — hoisted guards sit at
/// index 0, and the scan below finds the first mid-stream guard without
/// touching the hot per-µop path. A failed guard swaps the original copy
/// in as the final (guard-free) segment.
///
/// Retired-µop accounting is explicit here: guards retire nothing (they
/// exist only in the optimized stream), every other µop retires exactly
/// one, which keeps `ExecStats::uops` — and therefore fuel and the
/// `OutOfFuel` edge — bit-identical to the interpreter whichever stream
/// finishes the block.
fn exec_guarded<const AUDIT: bool, const BATCH: bool>(
    machine: &mut Machine,
    block: &Block,
    func: FuncId,
    fast_uops: &mut u64,
    stepped_insts: &mut u64,
) -> bool {
    let uops = &block.uops;
    let fallback = block.fallback as usize;
    let mut st = machine.exec_state();
    let mut retired: u64 = 0;
    // The slice being dispatched: the optimized stream first; a failed
    // guard swaps in the original copy. `seg_end` is the current
    // guard-free segment's end: the next guard, or `end - 1` (terminator).
    let (mut start, mut end) = (0usize, fallback);
    let mut seg_end = uops[..fallback - 1]
        .iter()
        .position(|u| matches!(u, Uop::Guard { .. }))
        .unwrap_or(fallback - 1);
    // Segment ordinal into `block.elided_counts` (batched statistics);
    // `usize::MAX` once diverted — the original copy replays its checks
    // (and their statistics) in full.
    let mut seg = 0usize;
    let mut seg_base = 0u64;
    let term = loop {
        for &u in &uops[start..seg_end] {
            match exec_straight::<AUDIT, BATCH>(&mut st, u, func) {
                Ok(()) => retired += 1,
                Err(t) => {
                    if BATCH && seg != usize::MAX {
                        // Credit the partial segment: every elided access
                        // before the trapping µop executed.
                        let done = (retired - seg_base) as usize;
                        st.bump_elided_checks(elided_in(&uops[start..start + done]));
                    }
                    // Mirror the interpreter: the trapping µop retires and
                    // the pc is left pre-advanced past it.
                    st.retire_uops(retired + 1);
                    *fast_uops += retired + 1;
                    if let Some(pc) = trap_pc(&t) {
                        st.set_pc(pc.func, pc.index + 1);
                    }
                    st.set_trap(t);
                    return false;
                }
            }
        }
        if BATCH && seg != usize::MAX {
            st.bump_elided_checks(u64::from(block.elided_counts[seg]));
        }
        if seg_end == end - 1 {
            break uops[end - 1];
        }
        let Uop::Guard {
            addr,
            lo_off,
            span,
            resume,
            next,
        } = uops[seg_end]
        else {
            unreachable!("segment ends on a non-guard µop {:?}", uops[seg_end])
        };
        // Pass: fall through to the µops the guard protects. Fail: divert
        // to the original copy of the first protected µop — never a trap,
        // so a widened window can only send execution down the
        // fully-checked path.
        seg_base = retired;
        if st.guard_check(addr, lo_off, span) {
            seg += 1;
            start = seg_end + 1;
            seg_end = next as usize;
        } else {
            seg = usize::MAX;
            start = resume as usize;
            end = uops.len();
            seg_end = end - 1;
        }
    };
    match term {
        Uop::BranchRR {
            op,
            rs1,
            rs2,
            target,
            fall,
        } => {
            st.retire_uops(retired + 1);
            *fast_uops += retired + 1;
            let taken = op.eval(st.reg(rs1), st.reg(rs2));
            st.set_pc(func, if taken { target } else { fall });
            true
        }
        Uop::BranchRI {
            op,
            rs1,
            imm,
            target,
            fall,
        } => {
            st.retire_uops(retired + 1);
            *fast_uops += retired + 1;
            let taken = op.eval(st.reg(rs1), imm);
            st.set_pc(func, if taken { target } else { fall });
            true
        }
        Uop::Jump { target } => {
            st.retire_uops(retired + 1);
            *fast_uops += retired + 1;
            st.set_pc(func, target);
            true
        }
        Uop::Fall { target } => {
            st.retire_uops(retired);
            *fast_uops += retired;
            st.set_pc(func, target);
            true
        }
        Uop::Call { func: callee, ret } => {
            st.retire_uops(retired + 1);
            *fast_uops += retired + 1;
            st.set_pc(func, ret);
            if let Err(t) = st.call(callee) {
                st.set_trap(t);
                false
            } else {
                true
            }
        }
        Uop::Ret => {
            st.retire_uops(retired + 1);
            *fast_uops += retired + 1;
            !st.ret()
        }
        Uop::Step { idx } => {
            st.retire_uops(retired);
            *fast_uops += retired;
            st.set_pc(func, idx);
            drop(st);
            *stepped_insts += 1;
            if let Err(t) = machine.step() {
                machine.exec_state().set_trap(t);
            }
            false
        }
        u => unreachable!("non-terminator {u:?} at stream end"),
    }
}

/// Runs a guard-free straight-line slice to completion; on a trap,
/// returns the trapping µop's index alongside the trap. Outlined on
/// purpose: each instantiation carries a full copy of the
/// [`exec_straight`] match, and inlining all three into `exec_block`
/// measurably slows the dispatch-bound fleet (one call per block is
/// noise; a 3× larger dispatch body is not).
#[inline(never)]
fn exec_run<const AUDIT: bool, const BATCH: bool>(
    st: &mut ExecState<'_>,
    uops: &[Uop],
    func: FuncId,
) -> Result<(), (usize, Trap)> {
    for (i, &u) in uops.iter().enumerate() {
        exec_straight::<AUDIT, BATCH>(st, u, func).map_err(|t| (i, t))?;
    }
    Ok(())
}

/// Elided accesses in `uops` — the cold re-scan that reconstructs batched
/// statistics when a trap cuts a segment short.
fn elided_in(uops: &[Uop]) -> u64 {
    uops.iter()
        .filter(|u| matches!(u, Uop::LoadHbElided { .. } | Uop::StoreHbElided { .. }))
        .count() as u64
}

/// The faulting position of a trap raised by a straight-line µop.
fn trap_pc(t: &Trap) -> Option<Pc> {
    match t {
        Trap::BoundsViolation { pc, .. }
        | Trap::NonPointerDereference { pc, .. }
        | Trap::WildAddress { pc, .. }
        | Trap::DivideByZero { pc } => Some(*pc),
        _ => None,
    }
}

/// Executes one straight-line (non-terminator) µop. `AUDIT` is the
/// optimizer's shadow-check mode: elided accesses re-run their eliminated
/// check and panic on divergence. `BATCH` makes elided accesses skip their
/// per-access statistics replay — the dispatcher credits whole segments
/// instead (sound only when [`Machine::elided_stats_static`] holds; never
/// combined with `AUDIT`). Both are const parameters so the hot
/// instantiations carry no per-µop tests at all.
///
/// [`Machine::elided_stats_static`]: hardbound_core::Machine::elided_stats_static
#[inline(always)]
fn exec_straight<const AUDIT: bool, const BATCH: bool>(
    st: &mut ExecState<'_>,
    u: Uop,
    func: FuncId,
) -> Result<(), Trap> {
    match u {
        Uop::Li { rd, imm } => st.set_reg(rd, imm, Meta::NONE),
        Uop::Mov { rd, rs } => st.set_reg(rd, st.reg(rs), st.reg_meta(rs)),
        Uop::AddRR { rd, rs1, rs2 } => {
            let a = st.reg(rs1);
            let am = st.reg_meta(rs1);
            let b = st.reg(rs2);
            // Figure 3 A/B: the first pointer operand's bounds win.
            let meta = if am != Meta::NONE {
                am
            } else {
                st.reg_meta(rs2)
            };
            st.set_reg(rd, a.wrapping_add(b), meta);
        }
        Uop::AddRI { rd, rs1, imm } => {
            let a = st.reg(rs1);
            let am = st.reg_meta(rs1);
            st.set_reg(rd, a.wrapping_add(imm), am);
        }
        Uop::SubRR { rd, rs1, rs2 } => {
            let a = st.reg(rs1);
            let am = st.reg_meta(rs1);
            let b = st.reg(rs2);
            let meta = if am != Meta::NONE {
                am
            } else {
                st.reg_meta(rs2)
            };
            st.set_reg(rd, a.wrapping_sub(b), meta);
        }
        Uop::SubRI { rd, rs1, imm } => {
            let a = st.reg(rs1);
            let am = st.reg_meta(rs1);
            st.set_reg(rd, a.wrapping_sub(imm), am);
        }
        Uop::BinRR {
            op,
            rd,
            rs1,
            rs2,
            pc,
        } => {
            let v = bin_value(op, st.reg(rs1), st.reg(rs2), pc)?;
            st.set_reg(rd, v, Meta::NONE);
        }
        Uop::BinRI {
            op,
            rd,
            rs1,
            imm,
            pc,
        } => {
            let v = bin_value(op, st.reg(rs1), imm, pc)?;
            st.set_reg(rd, v, Meta::NONE);
        }
        Uop::CmpRR { op, rd, rs1, rs2 } => {
            let flag = op.eval(st.reg(rs1), st.reg(rs2));
            st.set_reg(rd, u32::from(flag), Meta::NONE);
        }
        Uop::CmpRI { op, rd, rs1, imm } => {
            let flag = op.eval(st.reg(rs1), imm);
            st.set_reg(rd, u32::from(flag), Meta::NONE);
        }
        Uop::LoadRaw {
            width,
            rd,
            addr,
            offset,
            pc,
        } => st.load_raw(pc, width, rd, addr, offset)?,
        Uop::LoadHb {
            width,
            rd,
            addr,
            offset,
            pc,
        } => st.load_hb(pc, width, rd, addr, offset)?,
        Uop::StoreRaw {
            width,
            src,
            addr,
            offset,
            pc,
        } => st.store_raw(pc, width, src, addr, offset)?,
        Uop::StoreHb {
            width,
            src,
            addr,
            offset,
            pc,
        } => st.store_hb(pc, width, src, addr, offset)?,
        Uop::LoadHbElided {
            width,
            rd,
            addr,
            offset,
            pc,
        } => st.load_hb_elided(pc, width, rd, addr, offset, AUDIT, !BATCH),
        Uop::StoreHbElided {
            width,
            src,
            addr,
            offset,
            pc,
        } => st.store_hb_elided(pc, width, src, addr, offset, AUDIT, !BATCH),
        Uop::SetBoundRR { rd, rs, size, pc } => {
            st.count_setbound();
            let value = st.reg(rs);
            let size = st.reg(size);
            let meta = Meta::object(value, size);
            st.note_setbound(pc, meta);
            st.set_reg(rd, value, meta);
        }
        Uop::SetBoundRI { rd, rs, size, pc } => {
            st.count_setbound();
            let value = st.reg(rs);
            let meta = Meta::object(value, size);
            st.note_setbound(pc, meta);
            st.set_reg(rd, value, meta);
        }
        Uop::Unbound { rd, rs } => {
            st.count_setbound();
            st.set_reg(rd, st.reg(rs), Meta::UNCHECKED);
        }
        Uop::CodePtr { rd, value, meta } => st.set_reg(rd, value, meta),
        Uop::ReadBase { rd, rs } => {
            let base = st.reg_meta(rs).base;
            st.set_reg(rd, base, Meta::NONE);
        }
        Uop::ReadBound { rd, rs } => {
            let bound = st.reg_meta(rs).bound;
            st.set_reg(rd, bound, Meta::NONE);
        }
        Uop::InlineCall { func: callee, ret } => {
            // The full calling sequence runs; only the block transition is
            // elided. The return point is in the *calling* function.
            st.set_pc(func, ret);
            st.call(callee)?;
        }
        Uop::InlineRet => {
            // Pops the frame its InlineCall pushed; the frame is always
            // there, so this can never halt the machine.
            let halted = st.ret();
            debug_assert!(!halted, "inlined leaf returns cannot halt");
        }
        Uop::Nop | Uop::FollowedJump => {}
        u => unreachable!("terminator {u:?} mid-block"),
    }
    Ok(())
}

/// Value of a non-propagating ALU op — the interpreter's expressions,
/// verbatim.
#[inline(always)]
fn bin_value(op: BinOp, a: u32, b: u32, pc: Pc) -> Result<u32, Trap> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
        BinOp::Div => {
            if b == 0 {
                return Err(Trap::DivideByZero { pc });
            }
            (a as i32).wrapping_div(b as i32) as u32
        }
        BinOp::Rem => {
            if b == 0 {
                return Err(Trap::DivideByZero { pc });
            }
            (a as i32).wrapping_rem(b as i32) as u32
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b),
        BinOp::Shr => a.wrapping_shr(b),
        BinOp::Sra => ((a as i32).wrapping_shr(b)) as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_isa::{CmpOp, FunctionBuilder, Reg, Width};

    fn engine_for(f: FunctionBuilder) -> Engine<'static> {
        let program = Program::with_entry(vec![f.finish()]);
        Engine::new(Machine::new(program, MachineConfig::default()))
    }

    #[test]
    fn figure2_runs_identically_under_the_engine() {
        let build = || {
            let mut f = FunctionBuilder::new("fig2", 0);
            f.li(Reg::A0, hardbound_isa::layout::HEAP_BASE);
            f.setbound_imm(Reg::A1, Reg::A0, 4);
            f.load(Width::Byte, Reg::A2, Reg::A1, 2);
            f.load(Width::Byte, Reg::A2, Reg::A1, 5); // out of bounds
            f.halt();
            Program::with_entry(vec![f.finish()])
        };
        let interp = Machine::new(build(), MachineConfig::default()).run();
        let engine = run_program(build(), MachineConfig::default());
        assert_eq!(engine.trap, interp.trap);
        assert_eq!(engine.stats, interp.stats);
    }

    #[test]
    fn loops_hit_the_block_cache() {
        let mut f = FunctionBuilder::new("loop", 0);
        f.li(Reg::A0, 0);
        let head = f.bind_label();
        f.addi(Reg::A0, Reg::A0, 1);
        let done = f.new_label();
        f.branch(CmpOp::Ge, Reg::A0, 100, done);
        f.jump(head);
        f.bind(done);
        f.li(Reg::A0, 0);
        f.halt();
        let mut e = engine_for(f);
        let out = e.run();
        assert!(out.is_success(), "trap: {:?}", out.trap);
        let s = e.stats();
        assert!(s.cache.hits > 90, "loop iterations must hit: {s:?}");
        assert!(s.cache.decoded <= 4, "few static blocks: {s:?}");
        assert!(s.blocks_executed > 100);
        assert!(s.fast_uops > 300);
    }

    #[test]
    fn tiny_block_cache_exercises_eviction() {
        let mut f = FunctionBuilder::new("evict", 0);
        f.li(Reg::A0, 0);
        let head = f.bind_label();
        f.addi(Reg::A0, Reg::A0, 1);
        let done = f.new_label();
        f.branch(CmpOp::Ge, Reg::A0, 10, done);
        f.jump(head);
        f.bind(done);
        f.li(Reg::A0, 0);
        f.halt();
        let program = Program::with_entry(vec![f.finish()]);
        let mut e = Engine::with_block_capacity(Machine::new(program, MachineConfig::default()), 1);
        let out = e.run();
        assert!(out.is_success());
        assert!(e.stats().cache.evicted > 0, "{:?}", e.stats());
    }

    #[test]
    fn fuel_exhaustion_matches_interpreter_exactly() {
        let build = || {
            let mut f = FunctionBuilder::new("spin", 0);
            let head = f.bind_label();
            f.jump(head);
            Program::with_entry(vec![f.finish()])
        };
        let cfg = MachineConfig::default().with_fuel(1000);
        let interp = Machine::new(build(), cfg.clone()).run();
        let engine = run_program(build(), cfg);
        assert_eq!(engine.trap, Some(Trap::OutOfFuel));
        assert_eq!(engine.stats.uops, interp.stats.uops);
    }

    #[test]
    fn explicit_invalidation_forces_redecode() {
        let mut f = FunctionBuilder::new("inv", 0);
        f.li(Reg::A0, 0);
        f.halt();
        let mut e = engine_for(f);
        let _ = e.run();
        let decoded_before = e.stats().cache.decoded;
        e.block_cache_mut().invalidate_all();
        assert!(e.stats().cache.invalidated >= decoded_before);
    }

    #[test]
    fn data_stores_invalidate_no_blocks_code_writes_only_theirs() {
        // The over-kill regression: a store anywhere near code used to
        // flush every decoded block. Now a data-only write invalidates
        // zero blocks, and a true code overwrite kills exactly the blocks
        // embedding the overwritten function — inlined copies included.
        let mut leaf = FunctionBuilder::new("leaf", 0);
        leaf.li(Reg::A1, 9);
        leaf.ret();
        // Branchy, so the decoder gives it its own block instead of
        // inlining it into main's superblock.
        let mut other = FunctionBuilder::new("other", 0);
        other.li(Reg::A2, 3);
        let out = other.new_label();
        other.branch(CmpOp::Ge, Reg::A2, 0, out);
        other.li(Reg::A2, 4);
        other.bind(out);
        other.ret();
        let mut main = FunctionBuilder::new("main", 0);
        main.call(FuncId(1)); // inlined into main's superblock
        main.call(FuncId(2));
        main.li(Reg::A0, 0);
        main.halt();
        let program = Program::with_entry(vec![main.finish(), leaf.finish(), other.finish()]);
        let mut e = Engine::new(Machine::new(program, MachineConfig::default()));
        assert!(e.run().is_success());
        let resident = e.block_cache_mut().resident();
        assert!(resident >= 2, "main + other blocks stay resident");

        // Data-only stores: heap, globals, stack. Zero invalidations.
        e.note_code_write(hardbound_isa::layout::HEAP_BASE, 4);
        e.note_code_write(hardbound_isa::layout::GLOBALS_BASE + 128, 64);
        e.note_code_write(hardbound_isa::layout::STACK_TOP - 64, 4);
        assert_eq!(e.stats().cache.invalidated, 0, "data stores are free");
        assert_eq!(e.block_cache_mut().resident(), resident);

        // Overwrite the inlined leaf's code: the block that embeds it
        // (main's superblock) dies; `other`'s block survives.
        e.note_code_write(hardbound_isa::layout::code_addr(1), 4);
        let invalidated = e.stats().cache.invalidated;
        assert!(invalidated >= 1, "{:?}", e.stats());
        assert!(
            invalidated < resident as u64,
            "only overlapping blocks die: {:?}",
            e.stats()
        );
        let h = e.program_handle();
        assert!(
            e.block_cache_mut().lookup(h, FuncId(2), 0).is_some(),
            "unrelated function's block survives the code write"
        );
        assert!(
            e.block_cache_mut().lookup(h, FuncId(0), 0).is_none(),
            "the superblock inlining the overwritten leaf must redecode"
        );
    }

    #[test]
    fn shared_cache_hands_warm_blocks_to_the_next_engine() {
        let build = || {
            let mut f = FunctionBuilder::new("main", 0);
            f.li(Reg::A0, 0);
            let head = f.bind_label();
            f.addi(Reg::A0, Reg::A0, 1);
            let done = f.new_label();
            f.branch(CmpOp::Ge, Reg::A0, 20, done);
            f.jump(head);
            f.bind(done);
            f.li(Reg::A0, 0);
            f.halt();
            Program::with_entry(vec![f.finish()])
        };
        let mut cache = SharedBlockCache::new(SharedBlockCache::DEFAULT_CAPACITY);
        let first = {
            let m = Machine::new(build(), MachineConfig::default());
            let mut e = Engine::with_shared_cache(m, &mut cache);
            let out = e.run();
            assert!(out.is_success());
            out
        };
        let decoded_cold = cache.stats().decoded;
        assert!(decoded_cold > 0);
        let second = {
            let m = Machine::new(build(), MachineConfig::default());
            let mut e = Engine::with_shared_cache(m, &mut cache);
            let out = e.run();
            assert!(out.is_success());
            out
        };
        assert_eq!(
            cache.stats().decoded,
            decoded_cold,
            "the second run of the same image must decode nothing"
        );
        assert_eq!(first, second, "warm blocks change nothing observable");

        // A different decode identity (baseline hardware) shares the cache
        // but not the blocks.
        let m = Machine::new(build(), MachineConfig::baseline());
        let mut e = Engine::with_shared_cache(m, &mut cache);
        assert!(e.run().is_success());
        assert!(
            cache.stats().decoded > decoded_cold,
            "a new decode configuration decodes its own blocks"
        );
        assert_eq!(cache.program_count(), 2);
    }

    #[test]
    fn hot_loop_blocks_survive_cold_code_under_pressure() {
        // Segmented LRU under the engine: a loop body re-used every
        // iteration is promoted to the protected segment and keeps its
        // decode work even when a tiny cache thrashes on one-shot blocks.
        let mut f = FunctionBuilder::new("mix", 0);
        f.li(Reg::A0, 0);
        let head = f.bind_label();
        f.addi(Reg::A0, Reg::A0, 1);
        let done = f.new_label();
        f.branch(CmpOp::Ge, Reg::A0, 50, done);
        f.jump(head);
        f.bind(done);
        f.li(Reg::A0, 0);
        f.halt();
        let program = Program::with_entry(vec![f.finish()]);
        let mut e = Engine::with_block_capacity(Machine::new(program, MachineConfig::default()), 2);
        let out = e.run();
        assert!(out.is_success());
        let s = e.stats();
        assert!(
            s.cache.hits > 45,
            "the promoted loop block must keep hitting: {s:?}"
        );
        assert!(
            s.cache.decoded <= 4,
            "no whole-flush redecode storms: {s:?}"
        );
    }

    #[test]
    fn optimizer_preserves_behaviour_on_a_check_dense_loop() {
        // Hoisting fires (self-loop, invariant base) and the guard passes
        // every iteration: the optimized run must still match the
        // interpreter on every observable, stats included.
        let build = || {
            let mut f = FunctionBuilder::new("optloop", 0);
            f.li(Reg::A0, 0);
            f.li(Reg::T0, hardbound_isa::layout::HEAP_BASE);
            f.setbound_imm(Reg::A1, Reg::T0, 64);
            let head = f.bind_label();
            f.load(Width::Word, Reg::A2, Reg::A1, 0);
            f.load(Width::Word, Reg::A3, Reg::A1, 4);
            f.addi(Reg::A0, Reg::A0, 1);
            let done = f.new_label();
            f.branch(CmpOp::Ge, Reg::A0, 50, done);
            f.jump(head);
            f.bind(done);
            f.li(Reg::A0, 0);
            f.halt();
            Program::with_entry(vec![f.finish()])
        };
        let interp = Machine::new(build(), MachineConfig::default()).run();
        for opt in [OptConfig::ON, OptConfig::AUDIT] {
            let mut e = Engine::with_opt(Machine::new(build(), MachineConfig::default()), opt);
            let out = e.run();
            assert_eq!(out, interp, "opt {opt:?} diverged");
        }
    }

    #[test]
    fn failed_guard_falls_back_and_traps_where_the_original_would() {
        // The widened window [0,16) exceeds the 8-byte object, so the
        // guard fails every time; the fallback path must run the original
        // checks and trap at the second load's pc, exactly like the
        // interpreter.
        let build = || {
            let mut f = FunctionBuilder::new("optfail", 0);
            f.li(Reg::A0, hardbound_isa::layout::HEAP_BASE);
            f.setbound_imm(Reg::A1, Reg::A0, 8);
            f.load(Width::Word, Reg::A2, Reg::A1, 0);
            f.load(Width::Word, Reg::A3, Reg::A1, 12); // out of bounds
            f.halt();
            Program::with_entry(vec![f.finish()])
        };
        let interp = Machine::new(build(), MachineConfig::default()).run();
        assert!(
            matches!(interp.trap, Some(Trap::BoundsViolation { .. })),
            "{:?}",
            interp.trap
        );
        for opt in [OptConfig::ON, OptConfig::AUDIT] {
            let mut e = Engine::with_opt(Machine::new(build(), MachineConfig::default()), opt);
            let out = e.run();
            assert_eq!(out, interp, "opt {opt:?} diverged");
        }
    }

    #[test]
    fn profiling_changes_nothing_observable_and_attributes_all_blocks() {
        let build = || {
            let mut f = FunctionBuilder::new("profloop", 0);
            f.li(Reg::A0, 0);
            f.li(Reg::T0, hardbound_isa::layout::HEAP_BASE);
            f.setbound_imm(Reg::A1, Reg::T0, 64);
            let head = f.bind_label();
            f.load(Width::Word, Reg::A2, Reg::A1, 0);
            f.addi(Reg::A0, Reg::A0, 1);
            let done = f.new_label();
            f.branch(CmpOp::Ge, Reg::A0, 25, done);
            f.jump(head);
            f.bind(done);
            f.li(Reg::A0, 0);
            f.halt();
            Program::with_entry(vec![f.finish()])
        };
        let plain = run_program(build(), MachineConfig::default());
        let drained = hardbound_telemetry::profile::global().take();
        let mut e = Engine::new(Machine::new(build(), MachineConfig::default()));
        e.set_profiling(true);
        let profiled = e.run();
        assert_eq!(profiled, plain, "profiling must be invisible to outcomes");
        let blocks_executed = e.stats().blocks_executed;
        let p = hardbound_telemetry::profile::global().take();
        // Other tests in this process may flush concurrently, so filter to
        // this engine's program before asserting exact conservation.
        let pid = e.program_id().0;
        let execs: u64 = p
            .blocks
            .iter()
            .filter(|(k, _)| k.prog == pid)
            .map(|(_, s)| s.execs)
            .sum();
        let cycles: u64 = p
            .blocks
            .iter()
            .filter(|(k, _)| k.prog == pid)
            .map(|(_, s)| s.cycles)
            .sum();
        assert_eq!(
            execs, blocks_executed,
            "every dispatched block must be attributed exactly once"
        );
        assert_eq!(
            cycles, profiled.stats.uops,
            "all retired µops must be attributed to some block"
        );
        assert!(
            p.blocks
                .iter()
                .any(|(k, s)| k.prog == pid && s.name == "profloop" && s.taken > 0),
            "the loop block must show its taken checks: {p:?}"
        );
        // Restore anything another test had accumulated.
        hardbound_telemetry::profile::global().add(&drained);
    }

    #[test]
    fn mid_block_trap_counts_uops_like_the_interpreter() {
        let build = || {
            let mut f = FunctionBuilder::new("div0", 0);
            f.li(Reg::A0, 10);
            f.li(Reg::A1, 0);
            f.bin(BinOp::Div, Reg::A2, Reg::A0, Reg::A1);
            f.li(Reg::A3, 1); // never reached
            f.halt();
            Program::with_entry(vec![f.finish()])
        };
        let interp = Machine::new(build(), MachineConfig::default()).run();
        let engine = run_program(build(), MachineConfig::default());
        assert_eq!(engine.trap, interp.trap);
        assert_eq!(engine.stats.uops, interp.stats.uops);
        assert!(matches!(engine.trap, Some(Trap::DivideByZero { pc }) if pc.index == 2));
    }
}
