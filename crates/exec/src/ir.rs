//! An SSA-ish value-numbered view of one decoded superblock, built for the
//! bounds-check optimization passes (`crate::opt`).
//!
//! Superblocks are straight-line (every µop but the last dominates
//! everything after it), so "SSA" degenerates to **value numbering**: each
//! register write defines a fresh immutable value number ([`Vn`]), and a
//! µop's operands name the value numbers its registers held at that point.
//! Two occurrences of the same `Vn` are *guaranteed* equal at run time —
//! that immutability is what lets availability facts survive without kill
//! sets.
//!
//! On top of plain numbering the lift keeps a **symbolic form** for
//! pointer arithmetic: every value is `root + delta` where `root` is the
//! `Vn` that originated the chain and `delta` accumulates the constant
//! offsets applied by `AddRI`/`SubRI` (the µops whose metadata propagation
//! is unconditional, so the sidecar bounds travel with the chain). A
//! HardBound memory access therefore checks the window
//! `[root + lo, root + hi)` in symbolic space — the common coordinate
//! system the redundancy, hoisting and coalescing passes reason in.
//!
//! Soundness notes encoded here rather than re-derived per pass:
//!
//! - Deltas are exact `i64`s; a chain whose delta leaves `±2^31` falls
//!   back to a fresh root (`u32` wrapping would otherwise break the
//!   subset-window argument).
//! - `AddRR`/`SubRR` metadata depends on run-time operand metadata
//!   ("first pointer operand wins"), so their results get fresh value
//!   *and* metadata numbers — conservative, never wrong.
//! - `InlineCall`/`InlineRet` execute the full calling sequence, which
//!   writes `sp`/`fp`; both registers are killed.
//! - Writes to the zero register are discarded by the machine and
//!   therefore define nothing.

use hardbound_isa::{Reg, Width};

use crate::uop::Uop;

/// A value number: an immutable name for one run-time value (or one
/// run-time sidecar [`Meta`](hardbound_core::Meta)) produced in the block.
/// Equal numbers imply equal run-time values; unequal numbers imply
/// nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Vn(pub u32);

/// One HardBound memory access (`LoadHb`/`StoreHb`) in value-numbered
/// form: the implicit check it carries covers `[root + lo, root + hi)`
/// under the pointer metadata named by `meta`.
#[derive(Clone, Copy, Debug)]
pub struct Access {
    /// Index of the µop in the block's stream.
    pub idx: usize,
    /// Store (`true`) or load.
    pub is_store: bool,
    /// Access width.
    pub width: Width,
    /// The architectural address register the µop reads.
    pub addr: Reg,
    /// Metadata value number of `addr` at this point.
    pub meta: Vn,
    /// Root of `addr`'s symbolic value chain.
    pub root: Vn,
    /// `addr`'s constant delta from `root` (the register value, before the
    /// µop's own `offset` is applied).
    pub addr_delta: i64,
    /// Window start in symbolic space: `addr_delta + offset`.
    pub lo: i64,
    /// Window end (exclusive): `lo + width.bytes()`.
    pub hi: i64,
}

/// The lifted block: every HardBound access in program order, plus which
/// architectural registers the block writes (hoisting's invariance test).
#[derive(Clone, Debug)]
pub struct BlockIr {
    /// HardBound accesses in program order.
    pub accesses: Vec<Access>,
    /// `written[r.index()]`: whether any µop in the block (terminator
    /// excluded — terminators write no data register) writes register `r`.
    pub written: [bool; Reg::COUNT],
    /// The value number each register holds at block entry. A register
    /// that is never written keeps this number for the whole block — the
    /// loop-invariance witness hoisting keys on.
    pub entry_val: [Vn; Reg::COUNT],
    /// The metadata value number each register holds at block entry.
    pub entry_meta: [Vn; Reg::COUNT],
}

/// Per-register value/metadata numbering state during the lift.
struct Values {
    next: u32,
    /// Value number currently held by each register.
    val: [Vn; Reg::COUNT],
    /// Metadata value number currently held by each register.
    meta: [Vn; Reg::COUNT],
    /// `sym[vn.0] = (root, delta)`: the symbolic form of each value
    /// number. Fresh numbers are their own root at delta 0.
    sym: Vec<(Vn, i64)>,
}

/// Delta magnitude beyond which a chain falls back to a fresh root (the
/// symbolic subset argument needs exact arithmetic; `i32`-ranged deltas
/// keep every derived quantity far from `i64` overflow too).
const DELTA_CAP: i64 = i32::MAX as i64;

impl Values {
    fn new() -> Values {
        let mut v = Values {
            next: 0,
            val: [Vn(0); Reg::COUNT],
            meta: [Vn(0); Reg::COUNT],
            sym: Vec::with_capacity(2 * Reg::COUNT + 64),
        };
        // Block-entry state: every register holds an unknown (fresh)
        // value and metadata. Distinct registers get distinct numbers —
        // nothing may be assumed equal at entry.
        for i in 0..Reg::COUNT {
            v.val[i] = v.fresh();
            v.meta[i] = v.fresh();
        }
        v
    }

    /// Allocates a fresh value number (its own root, delta 0).
    fn fresh(&mut self) -> Vn {
        let vn = Vn(self.next);
        self.next += 1;
        self.sym.push((vn, 0));
        vn
    }

    /// The symbolic form of `vn`.
    fn sym(&self, vn: Vn) -> (Vn, i64) {
        self.sym[vn.0 as usize]
    }

    /// Allocates the value number for `base + delta` (chains through
    /// `base`'s own symbolic form; overflowing the cap starts a new root).
    fn derived(&mut self, base: Vn, delta: i64) -> Vn {
        let (root, d0) = self.sym(base);
        let d = d0 + delta;
        if d.abs() > DELTA_CAP {
            return self.fresh();
        }
        let vn = Vn(self.next);
        self.next += 1;
        self.sym.push((root, d));
        vn
    }

    /// Register write with fresh value and metadata numbers.
    fn kill(&mut self, rd: Reg) {
        if rd.is_zero() {
            return;
        }
        self.val[rd.index()] = self.fresh();
        self.meta[rd.index()] = self.fresh();
    }
}

/// Lifts a decoded (unoptimized) µop stream into its value-numbered form.
#[must_use]
pub fn lift(uops: &[Uop]) -> BlockIr {
    let mut v = Values::new();
    let entry_val = v.val;
    let entry_meta = v.meta;
    let mut accesses = Vec::new();
    let mut written = [false; Reg::COUNT];
    let note_write = |written: &mut [bool; Reg::COUNT], rd: Reg| {
        if !rd.is_zero() {
            written[rd.index()] = true;
        }
    };
    for (idx, &u) in uops.iter().enumerate() {
        match u {
            // Fresh definitions: the result value (and metadata) is not a
            // constant-offset function of a single operand.
            Uop::Li { rd, .. }
            | Uop::BinRR { rd, .. }
            | Uop::BinRI { rd, .. }
            | Uop::CmpRR { rd, .. }
            | Uop::CmpRI { rd, .. }
            | Uop::AddRR { rd, .. }
            | Uop::SubRR { rd, .. }
            | Uop::SetBoundRR { rd, .. }
            | Uop::SetBoundRI { rd, .. }
            | Uop::Unbound { rd, .. }
            | Uop::CodePtr { rd, .. }
            | Uop::ReadBase { rd, .. }
            | Uop::ReadBound { rd, .. } => {
                note_write(&mut written, rd);
                v.kill(rd);
            }
            Uop::Mov { rd, rs } => {
                note_write(&mut written, rd);
                if !rd.is_zero() {
                    v.val[rd.index()] = v.val[rs.index()];
                    v.meta[rd.index()] = v.meta[rs.index()];
                }
            }
            Uop::AddRI { rd, rs1, imm } => {
                note_write(&mut written, rd);
                if !rd.is_zero() {
                    let vn = v.derived(v.val[rs1.index()], i64::from(imm as i32));
                    v.val[rd.index()] = vn;
                    // AddRI propagates rs1's metadata unconditionally, so
                    // the metadata number travels with the chain.
                    v.meta[rd.index()] = v.meta[rs1.index()];
                }
            }
            Uop::SubRI { rd, rs1, imm } => {
                note_write(&mut written, rd);
                if !rd.is_zero() {
                    let vn = v.derived(v.val[rs1.index()], -i64::from(imm as i32));
                    v.val[rd.index()] = vn;
                    v.meta[rd.index()] = v.meta[rs1.index()];
                }
            }
            Uop::LoadHb {
                width,
                rd,
                addr,
                offset,
                ..
            } => {
                let (root, addr_delta) = v.sym(v.val[addr.index()]);
                let lo = addr_delta + i64::from(offset);
                accesses.push(Access {
                    idx,
                    is_store: false,
                    width,
                    addr,
                    meta: v.meta[addr.index()],
                    root,
                    addr_delta,
                    lo,
                    hi: lo + i64::from(width.bytes()),
                });
                note_write(&mut written, rd);
                v.kill(rd);
            }
            Uop::StoreHb {
                width,
                src: _,
                addr,
                offset,
                ..
            } => {
                let (root, addr_delta) = v.sym(v.val[addr.index()]);
                let lo = addr_delta + i64::from(offset);
                accesses.push(Access {
                    idx,
                    is_store: true,
                    width,
                    addr,
                    meta: v.meta[addr.index()],
                    root,
                    addr_delta,
                    lo,
                    hi: lo + i64::from(width.bytes()),
                });
            }
            Uop::LoadRaw { rd, .. } => {
                // Baseline load: no check to reason about; just the write.
                note_write(&mut written, rd);
                v.kill(rd);
            }
            Uop::StoreRaw { .. } | Uop::Nop | Uop::FollowedJump => {}
            Uop::InlineCall { .. } | Uop::InlineRet => {
                // The calling sequence writes sp/fp (frame carve / frame
                // pop), invalidating any chains rooted in them.
                for r in [Reg::SP, Reg::FP] {
                    note_write(&mut written, r);
                    v.kill(r);
                }
            }
            // Terminators read registers but write none; the lift only
            // ever sees them in last position.
            Uop::BranchRR { .. }
            | Uop::BranchRI { .. }
            | Uop::Jump { .. }
            | Uop::Fall { .. }
            | Uop::Call { .. }
            | Uop::Ret
            | Uop::Step { .. } => {}
            Uop::Guard { .. } | Uop::LoadHbElided { .. } | Uop::StoreHbElided { .. } => {
                unreachable!("lift runs on unoptimized streams only")
            }
        }
    }
    BlockIr {
        accesses,
        written,
        entry_val,
        entry_meta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_core::Pc;
    use hardbound_isa::FuncId;

    const PC: Pc = Pc {
        func: FuncId(0),
        index: 0,
    };

    fn load(addr: Reg, offset: i32) -> Uop {
        Uop::LoadHb {
            width: Width::Word,
            rd: Reg::A5,
            addr,
            offset,
            pc: PC,
        }
    }

    #[test]
    fn repeated_access_shares_root_and_window() {
        let uops = [load(Reg::A0, 4), load(Reg::A0, 4), Uop::Ret];
        let ir = lift(&uops);
        assert_eq!(ir.accesses.len(), 2);
        let (a, b) = (&ir.accesses[0], &ir.accesses[1]);
        assert_eq!(a.root, b.root);
        assert_eq!(a.meta, b.meta);
        assert_eq!((a.lo, a.hi), (4, 8));
        assert_eq!((b.lo, b.hi), (4, 8));
    }

    #[test]
    fn addri_chains_stay_in_one_symbolic_space() {
        let uops = [
            load(Reg::A0, 0),
            Uop::AddRI {
                rd: Reg::A1,
                rs1: Reg::A0,
                imm: 8,
            },
            load(Reg::A1, -4), // = A0 + 4
            Uop::Ret,
        ];
        let ir = lift(&uops);
        let (a, b) = (&ir.accesses[0], &ir.accesses[1]);
        assert_eq!(a.root, b.root, "AddRI keeps the chain's root");
        assert_eq!(a.meta, b.meta, "AddRI propagates metadata");
        assert_eq!((b.lo, b.hi), (4, 8));
    }

    #[test]
    fn writes_kill_value_numbers() {
        let uops = [
            load(Reg::A0, 0),
            Uop::Li {
                rd: Reg::A0,
                imm: 1,
            },
            load(Reg::A0, 0),
            Uop::Ret,
        ];
        let ir = lift(&uops);
        assert_ne!(ir.accesses[0].root, ir.accesses[1].root);
        assert!(ir.written[Reg::A0.index()]);
        assert!(!ir.written[Reg::A2.index()]);
    }

    #[test]
    fn addrr_results_get_fresh_meta() {
        let uops = [
            Uop::AddRR {
                rd: Reg::A1,
                rs1: Reg::A0,
                rs2: Reg::A2,
            },
            load(Reg::A0, 0),
            load(Reg::A1, 0),
            Uop::Ret,
        ];
        let ir = lift(&uops);
        assert_ne!(ir.accesses[0].meta, ir.accesses[1].meta);
        assert_ne!(ir.accesses[0].root, ir.accesses[1].root);
    }

    #[test]
    fn inline_call_kills_sp_and_fp() {
        let uops = [
            load(Reg::SP, 0),
            Uop::InlineCall {
                func: FuncId(1),
                ret: 1,
            },
            Uop::InlineRet,
            load(Reg::SP, 0),
            Uop::Ret,
        ];
        let ir = lift(&uops);
        assert_ne!(ir.accesses[0].root, ir.accesses[1].root);
        assert!(ir.written[Reg::SP.index()]);
        assert!(ir.written[Reg::FP.index()]);
    }

    #[test]
    fn mov_copies_both_numbers() {
        let uops = [
            load(Reg::A0, 0),
            Uop::Mov {
                rd: Reg::A1,
                rs: Reg::A0,
            },
            load(Reg::A1, 0),
            Uop::Ret,
        ];
        let ir = lift(&uops);
        assert_eq!(ir.accesses[0].root, ir.accesses[1].root);
        assert_eq!(ir.accesses[0].meta, ir.accesses[1].meta);
    }
}
