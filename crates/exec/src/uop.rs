//! Pre-decoded micro-operations.
//!
//! [`Machine::step`](hardbound_core::Machine::step) re-derives three things
//! on every dynamic instruction: which function it is in, whether the second
//! ALU operand is a register or an immediate, and whether the HardBound
//! extension (and which [`SafetyMode`](hardbound_core::SafetyMode)) applies
//! to a memory access. All three are properties of the *static* instruction
//! under a fixed [`MachineConfig`], so the block engine resolves them once
//! at decode time — the same move the paper's µop-insertion pipeline makes
//! when it materializes bounds-check µops per static memory operation
//! (§4.4) — and dispatches a flat array of [`Uop`]s afterwards.
//!
//! µops that can trap or transfer control carry their own instruction
//! index (`idx`), so a decoded block is position-independent. That lets
//! [`decode_block`] build *superblocks*: decoding follows unconditional
//! jumps (each one emitting a [`Uop::FollowedJump`] so µop accounting stays
//! exact) until it would revisit an already-emitted instruction, hit a
//! two-way terminator, or exceed [`FOLLOW_CAP`].

use hardbound_core::{MachineConfig, Meta, Pc};
use hardbound_isa::{BinOp, CmpOp, FuncId, Inst, Operand, Program, Reg, Width};

/// Maximum µops in one decoded block (bounds superblock growth).
pub const FOLLOW_CAP: usize = 64;

/// One pre-decoded micro-operation. Decoding is one-to-one with dynamic
/// [`Inst`]s, so µop counts (and therefore the fuel meter and every
/// statistic) are preserved exactly; trap program counters come from the
/// embedded `idx` fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Uop {
    /// `rd ← imm`, metadata cleared.
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: u32,
    },
    /// `rd ← rs`, metadata copied.
    Mov {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// Pointer-forming add, register second operand.
    AddRR {
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Pointer-forming add, immediate second operand.
    AddRI {
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Immediate (already cast to the wrapping-add operand).
        imm: u32,
    },
    /// Pointer-forming subtract, register second operand.
    SubRR {
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Pointer-forming subtract, immediate second operand.
    SubRI {
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Immediate.
        imm: u32,
    },
    /// Non-propagating ALU op (`mul`…`sra`), register second operand.
    BinRR {
        /// Operation (never `Add`/`Sub`; those decode to dedicated µops).
        op: BinOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
        /// Own position (for the divide-by-zero trap pc).
        pc: Pc,
    },
    /// Non-propagating ALU op, immediate second operand.
    BinRI {
        /// Operation.
        op: BinOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Immediate.
        imm: u32,
        /// Own position.
        pc: Pc,
    },
    /// Comparison flag, register second operand.
    CmpRR {
        /// Predicate.
        op: CmpOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Comparison flag, immediate second operand.
    CmpRI {
        /// Predicate.
        op: CmpOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Immediate.
        imm: u32,
    },
    /// Load on the baseline machine: no implicit check, no tag traffic
    /// (resolved at decode time from the configuration).
    LoadRaw {
        /// Access width.
        width: Width,
        /// Destination.
        rd: Reg,
        /// Address register.
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
        /// Own position (trap pc).
        pc: Pc,
    },
    /// Load with the HardBound extension active: the Figure 3 C check µop
    /// is materialized here.
    LoadHb {
        /// Access width.
        width: Width,
        /// Destination.
        rd: Reg,
        /// Address register.
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
        /// Own position (trap pc).
        pc: Pc,
    },
    /// Store on the baseline machine.
    StoreRaw {
        /// Access width.
        width: Width,
        /// Value register.
        src: Reg,
        /// Address register.
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
        /// Own position (trap pc).
        pc: Pc,
    },
    /// Store with the HardBound extension active (Figure 3 D).
    StoreHb {
        /// Access width.
        width: Width,
        /// Value register.
        src: Reg,
        /// Address register.
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
        /// Own position (trap pc).
        pc: Pc,
    },
    /// A HardBound load whose bounds check and region probe the optimizer
    /// proved redundant (covered by a dominating check or a passed
    /// [`Uop::Guard`] on the same pointer value). Executes the load and
    /// replays every statistic the full check would have charged, but skips
    /// the compare itself.
    LoadHbElided {
        /// Access width.
        width: Width,
        /// Destination.
        rd: Reg,
        /// Address register.
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
        /// Own position (trap pc; kept so `HB_OPT_AUDIT` can name the site).
        pc: Pc,
    },
    /// A HardBound store with an optimizer-elided check (dual of
    /// [`Uop::LoadHbElided`]).
    StoreHbElided {
        /// Access width.
        width: Width,
        /// Value register.
        src: Reg,
        /// Address register.
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
        /// Own position (trap pc).
        pc: Pc,
    },
    /// A widened range check inserted by the coalescing/hoisting passes:
    /// passes iff `addr`'s sidecar metadata is a pointer whose bounds (and
    /// the machine's address regions) admit the whole window
    /// `[r(addr)+lo_off, r(addr)+lo_off+span)`. Retires **no** µop, charges
    /// **no** statistics, and never traps: on failure the block diverts to
    /// index `resume` in the appended original-copy region, where unmodified
    /// µops re-run every check and trap exactly where the unoptimized block
    /// would have.
    Guard {
        /// Address register the guarded group indexes off.
        addr: Reg,
        /// Lowest byte offset covered, relative to `r(addr)`.
        lo_off: i32,
        /// Window size in bytes (covers `[lo_off, lo_off + span)`).
        span: u32,
        /// Fallback µop index (into the original-copy region) on failure.
        resume: u32,
        /// Index of the next [`Uop::Guard`] in the optimized stream, or of
        /// the stream's terminator if this is the last one. Dispatch runs
        /// `[here + 1, next)` as a plain straight-line segment, so guards
        /// cost nothing per covered µop.
        next: u32,
    },
    /// `setbound` with the size in a register.
    SetBoundRR {
        /// Destination.
        rd: Reg,
        /// Pointer-value source.
        rs: Reg,
        /// Size register.
        size: Reg,
        /// Own position (the bounds-provenance site recorded for
        /// violation forensics — dispatch bypasses `Machine::step`, so
        /// the site travels with the µop).
        pc: Pc,
    },
    /// `setbound` with an immediate size.
    SetBoundRI {
        /// Destination.
        rd: Reg,
        /// Pointer-value source.
        rs: Reg,
        /// Size in bytes.
        size: u32,
        /// Own position (bounds-provenance site).
        pc: Pc,
    },
    /// The §3.2 escape hatch.
    Unbound {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// Materialize a function pointer; the sidecar metadata (CODE vs NONE)
    /// is resolved from the configuration at decode time.
    CodePtr {
        /// Destination.
        rd: Reg,
        /// Pre-computed code-region address.
        value: u32,
        /// Pre-resolved sidecar metadata.
        meta: Meta,
    },
    /// Extract sidecar base.
    ReadBase {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// Extract sidecar bound.
    ReadBound {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// No operation.
    Nop,
    /// An unconditional jump the decoder followed: retires one µop (the
    /// dynamic `jmp`) with no other effect — the jump's effect is that the
    /// following µops in the block are the target's.
    FollowedJump,
    /// A direct call to a straight-line leaf function that the decoder
    /// inlined: performs the full calling sequence (frame push, stack
    /// check), then execution continues *in this block* with the callee's
    /// µops, ending at the matching [`Uop::InlineRet`].
    InlineCall {
        /// Callee.
        func: FuncId,
        /// Return-point instruction index in the calling function.
        ret: u32,
    },
    /// The return of an inlined leaf callee: pops the frame pushed by the
    /// matching [`Uop::InlineCall`] (never halts — the frame is always
    /// there) and continues in-block at the caller's µops.
    InlineRet,
    /// Block terminator: conditional branch, register second operand.
    BranchRR {
        /// Predicate.
        op: CmpOp,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
        /// Taken-path instruction index.
        target: u32,
        /// Untaken-path instruction index (the branch's own index + 1).
        fall: u32,
    },
    /// Block terminator: conditional branch, immediate second operand.
    BranchRI {
        /// Predicate.
        op: CmpOp,
        /// First source.
        rs1: Reg,
        /// Immediate.
        imm: u32,
        /// Taken-path instruction index.
        target: u32,
        /// Untaken-path instruction index.
        fall: u32,
    },
    /// Block terminator: unconditional jump (not followed by the decoder —
    /// a loop backedge or a jump into already-emitted territory). Retires
    /// the dynamic `jmp` µop.
    Jump {
        /// Destination instruction index.
        target: u32,
    },
    /// Block terminator synthesized by a superblock-cap cut: transfers to
    /// `target` **without retiring a µop** — there is no dynamic
    /// instruction behind it, execution merely resumes in another block.
    Fall {
        /// Destination instruction index.
        target: u32,
    },
    /// Block terminator: direct call, handled natively through
    /// [`ExecState::call`](hardbound_core::ExecState::call).
    Call {
        /// Callee.
        func: FuncId,
        /// Return-point instruction index (the call's own index + 1).
        ret: u32,
    },
    /// Block terminator: return, handled natively.
    Ret,
    /// Block terminator executed by falling back to
    /// [`Machine::step`](hardbound_core::Machine::step): indirect calls and
    /// environment calls (I/O, halt, object-table hooks).
    Step {
        /// The instruction's own index (the machine is positioned there
        /// before stepping).
        idx: u32,
    },
}

impl Uop {
    /// Whether this µop ends a basic block.
    #[must_use]
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Uop::BranchRR { .. }
                | Uop::BranchRI { .. }
                | Uop::Jump { .. }
                | Uop::Fall { .. }
                | Uop::Call { .. }
                | Uop::Ret
                | Uop::Step { .. }
        )
    }
}

/// Decodes the instruction at `func`/`idx` under `cfg`.
#[must_use]
pub fn decode_inst(inst: Inst, cfg: &MachineConfig, func: FuncId, idx: u32) -> Uop {
    let hb = cfg.hardbound.is_some();
    let pc = Pc { func, index: idx };
    match inst {
        Inst::Li { rd, imm } => Uop::Li { rd, imm },
        Inst::Mov { rd, rs } => Uop::Mov { rd, rs },
        Inst::Bin { op, rd, rs1, rs2 } => match (op, rs2) {
            (BinOp::Add, Operand::Reg(rs2)) => Uop::AddRR { rd, rs1, rs2 },
            (BinOp::Add, Operand::Imm(i)) => Uop::AddRI {
                rd,
                rs1,
                imm: i as u32,
            },
            (BinOp::Sub, Operand::Reg(rs2)) => Uop::SubRR { rd, rs1, rs2 },
            (BinOp::Sub, Operand::Imm(i)) => Uop::SubRI {
                rd,
                rs1,
                imm: i as u32,
            },
            (op, Operand::Reg(rs2)) => Uop::BinRR {
                op,
                rd,
                rs1,
                rs2,
                pc,
            },
            (op, Operand::Imm(i)) => Uop::BinRI {
                op,
                rd,
                rs1,
                imm: i as u32,
                pc,
            },
        },
        Inst::Cmp { op, rd, rs1, rs2 } => match rs2 {
            Operand::Reg(rs2) => Uop::CmpRR { op, rd, rs1, rs2 },
            Operand::Imm(i) => Uop::CmpRI {
                op,
                rd,
                rs1,
                imm: i as u32,
            },
        },
        Inst::Load {
            width,
            rd,
            addr,
            offset,
        } => {
            if hb {
                Uop::LoadHb {
                    width,
                    rd,
                    addr,
                    offset,
                    pc,
                }
            } else {
                Uop::LoadRaw {
                    width,
                    rd,
                    addr,
                    offset,
                    pc,
                }
            }
        }
        Inst::Store {
            width,
            src,
            addr,
            offset,
        } => {
            if hb {
                Uop::StoreHb {
                    width,
                    src,
                    addr,
                    offset,
                    pc,
                }
            } else {
                Uop::StoreRaw {
                    width,
                    src,
                    addr,
                    offset,
                    pc,
                }
            }
        }
        Inst::SetBound { rd, rs, size } => match size {
            Operand::Reg(size) => Uop::SetBoundRR { rd, rs, size, pc },
            Operand::Imm(i) => Uop::SetBoundRI {
                rd,
                rs,
                size: i as u32,
                pc,
            },
        },
        Inst::Unbound { rd, rs } => Uop::Unbound { rd, rs },
        Inst::CodePtr { rd, func } => Uop::CodePtr {
            rd,
            value: func.code_addr(),
            meta: if hb { Meta::CODE } else { Meta::NONE },
        },
        Inst::ReadBase { rd, rs } => Uop::ReadBase { rd, rs },
        Inst::ReadBound { rd, rs } => Uop::ReadBound { rd, rs },
        Inst::Branch {
            op,
            rs1,
            rs2,
            target,
        } => match rs2 {
            Operand::Reg(rs2) => Uop::BranchRR {
                op,
                rs1,
                rs2,
                target,
                fall: idx + 1,
            },
            Operand::Imm(i) => Uop::BranchRI {
                op,
                rs1,
                imm: i as u32,
                target,
                fall: idx + 1,
            },
        },
        Inst::Jump { target } => Uop::Jump { target },
        Inst::Call { func } => Uop::Call { func, ret: idx + 1 },
        Inst::CallInd { .. } | Inst::Sys { .. } => Uop::Step { idx },
        Inst::Ret => Uop::Ret,
        Inst::Nop => Uop::Nop,
    }
}

/// Contiguous range `[lo, hi)` of one function's instructions covered by a
/// decoded block. A superblock's spans name every instruction it embeds —
/// its own function's emitted hull plus the full body of every inlined
/// leaf callee — so invalidation after a code write can drop exactly the
/// blocks that overlap the written range instead of flushing the world.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeSpan {
    /// Function the range indexes into.
    pub func: FuncId,
    /// First covered instruction index.
    pub lo: u32,
    /// One past the last covered instruction index.
    pub hi: u32,
}

impl CodeSpan {
    /// Whether this span covers instruction `idx` of `func`.
    #[must_use]
    pub fn covers(&self, func: FuncId, idx: u32) -> bool {
        self.func == func && (self.lo..self.hi).contains(&idx)
    }

    /// Whether this span intersects `[lo, hi)` of `func`.
    #[must_use]
    pub fn overlaps(&self, func: FuncId, lo: u32, hi: u32) -> bool {
        self.func == func && self.lo < hi && lo < self.hi
    }
}

/// A decoded superblock: the µop array plus the code ranges it covers.
#[derive(Clone, Debug)]
pub struct DecodedBlock {
    /// Pre-decoded µops; one per instruction, terminator last. When
    /// `fallback != 0` the array holds **two** terminated streams: the
    /// optimized stream in `uops[..fallback]` and a verbatim copy of the
    /// original block in `uops[fallback..]`, which failed [`Uop::Guard`]s
    /// divert into.
    pub uops: Box<[Uop]>,
    /// Covered instruction ranges, one (hull) span per involved function.
    pub spans: Box<[CodeSpan]>,
    /// `0` for an ordinary block; otherwise the index where the appended
    /// original copy begins (guarded blocks only — index 0 is always inside
    /// the optimized stream, so 0 is unambiguous as "no fallback").
    pub fallback: u32,
    /// Elided-access count per guard-free segment of the optimized stream
    /// (one entry when `fallback == 0`, `guards + 1` entries otherwise;
    /// empty for unoptimized blocks). When the machine's elided statistics
    /// are static ([`Machine::elided_stats_static`]), dispatch credits a
    /// whole completed segment in one bump instead of replaying per access.
    ///
    /// [`Machine::elided_stats_static`]: hardbound_core::Machine::elided_stats_static
    pub elided_counts: Box<[u32]>,
}

/// Extends the hull span of `func` (or opens one) to cover `[lo, hi)`.
fn cover(spans: &mut Vec<CodeSpan>, func: FuncId, lo: u32, hi: u32) {
    if let Some(s) = spans.iter_mut().find(|s| s.func == func) {
        s.lo = s.lo.min(lo);
        s.hi = s.hi.max(hi);
    } else {
        spans.push(CodeSpan { func, lo, hi });
    }
}

/// Maximum instruction count of a leaf callee that [`decode_block`]
/// inlines into the calling superblock.
pub const INLINE_CAP: usize = 16;

/// Whether `f` is a straight-line leaf: every instruction but the last is
/// a plain data µop and the last is `ret`. Such callees can be inlined
/// into a caller's superblock — the calling sequence still executes
/// (frame push/pop, stack check), only the block transitions disappear.
fn inlinable_leaf(f: &hardbound_isa::Function) -> bool {
    f.insts.len() <= INLINE_CAP
        && f.insts.last() == Some(&Inst::Ret)
        && f.insts[..f.insts.len() - 1].iter().all(|i| {
            !matches!(
                i,
                Inst::Branch { .. }
                    | Inst::Jump { .. }
                    | Inst::Call { .. }
                    | Inst::CallInd { .. }
                    | Inst::Sys { .. }
                    | Inst::Ret
            )
        })
}

/// Decodes the superblock of `func` beginning at instruction index
/// `entry`: straight-line µops, following unconditional jumps (each
/// emitting a [`Uop::FollowedJump`]) and inlining straight-line leaf
/// callees ([`Uop::InlineCall`]/[`Uop::InlineRet`]), until a two-way
/// terminator, a jump back into an already-emitted instruction, or
/// [`FOLLOW_CAP`]. The returned [`DecodedBlock`] carries the code ranges
/// the block covers, which range-precise invalidation keys on.
///
/// Validated programs always end functions with an unconditional transfer,
/// so a terminator is guaranteed before the slice runs out.
#[must_use]
pub fn decode_block(
    program: &Program,
    func: FuncId,
    entry: u32,
    cfg: &MachineConfig,
) -> DecodedBlock {
    let insts = &program.func(func).insts;
    let mut uops = Vec::new();
    let mut spans = Vec::new();
    let mut emitted: Vec<u32> = Vec::new();
    let mut pc = entry;
    loop {
        let u = decode_inst(insts[pc as usize], cfg, func, pc);
        cover(&mut spans, func, pc, pc + 1);
        match u {
            Uop::Jump { target } => {
                if uops.len() + 1 < FOLLOW_CAP && !emitted.contains(&target) {
                    // Follow the jump: the dynamic `jmp` still retires.
                    uops.push(Uop::FollowedJump);
                    emitted.push(pc);
                    pc = target;
                    continue;
                }
                uops.push(u);
                break;
            }
            Uop::Call { func: callee, ret } => {
                let body = &program.func(callee).insts;
                if uops.len() + body.len() + 2 < FOLLOW_CAP && inlinable_leaf(program.func(callee))
                {
                    uops.push(Uop::InlineCall { func: callee, ret });
                    // The whole callee body (its `ret` included) is
                    // embedded in this block.
                    cover(&mut spans, callee, 0, body.len() as u32);
                    for (i, &inst) in body[..body.len() - 1].iter().enumerate() {
                        uops.push(decode_inst(inst, cfg, callee, i as u32));
                    }
                    uops.push(Uop::InlineRet);
                    emitted.push(pc);
                    pc = ret;
                    continue;
                }
                uops.push(u);
                break;
            }
            u if u.is_terminator() => {
                uops.push(u);
                break;
            }
            u => {
                emitted.push(pc);
                uops.push(u);
                pc += 1;
                if uops.len() + 1 >= FOLLOW_CAP {
                    // Cap cut mid-run: continue in the block decoded at `pc`.
                    uops.push(Uop::Fall { target: pc });
                    break;
                }
            }
        }
    }
    debug_assert!(
        uops.last().is_some_and(|u| u.is_terminator()),
        "blocks always end in a terminator"
    );
    DecodedBlock {
        uops: uops.into_boxed_slice(),
        spans: spans.into_boxed_slice(),
        fallback: 0,
        elided_counts: Box::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_isa::{Function, SysCall};

    fn hb_cfg() -> MachineConfig {
        MachineConfig::default()
    }

    fn base_cfg() -> MachineConfig {
        MachineConfig::baseline()
    }

    fn program_of(insts: Vec<Inst>) -> Program {
        Program::with_entry(vec![Function {
            name: "main".into(),
            insts,
            frame_size: 0,
            num_args: 0,
        }])
    }

    const F0: FuncId = FuncId(0);

    #[test]
    fn memory_ops_specialize_on_configuration() {
        let load = Inst::Load {
            width: Width::Word,
            rd: Reg::A0,
            addr: Reg::A1,
            offset: 4,
        };
        assert!(matches!(
            decode_inst(load, &hb_cfg(), F0, 7),
            Uop::LoadHb {
                offset: 4,
                pc: Pc { func: F0, index: 7 },
                ..
            }
        ));
        assert!(matches!(
            decode_inst(load, &base_cfg(), F0, 7),
            Uop::LoadRaw { offset: 4, .. }
        ));
    }

    #[test]
    fn code_pointer_meta_resolved_at_decode() {
        let inst = Inst::CodePtr {
            rd: Reg::A0,
            func: FuncId(3),
        };
        assert!(matches!(
            decode_inst(inst, &hb_cfg(), F0, 0),
            Uop::CodePtr {
                meta: Meta::CODE,
                ..
            }
        ));
        assert!(matches!(
            decode_inst(inst, &base_cfg(), F0, 0),
            Uop::CodePtr {
                meta: Meta::NONE,
                ..
            }
        ));
    }

    #[test]
    fn operands_resolve_to_rr_ri_variants() {
        let add_ri = Inst::Bin {
            op: BinOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Operand::Imm(-4),
        };
        assert!(
            matches!(decode_inst(add_ri, &hb_cfg(), F0, 0), Uop::AddRI { imm, .. } if imm == (-4i32) as u32)
        );
        let mul_rr = Inst::Bin {
            op: BinOp::Mul,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Operand::Reg(Reg::A2),
        };
        assert!(matches!(
            decode_inst(mul_rr, &hb_cfg(), F0, 0),
            Uop::BinRR { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn branches_carry_both_successors() {
        let b = Inst::Branch {
            op: CmpOp::Eq,
            rs1: Reg::A0,
            rs2: Operand::Imm(0),
            target: 3,
        };
        assert!(matches!(
            decode_inst(b, &hb_cfg(), F0, 9),
            Uop::BranchRI {
                target: 3,
                fall: 10,
                ..
            }
        ));
    }

    #[test]
    fn blocks_stop_at_two_way_terminators() {
        let p = program_of(vec![
            Inst::Li {
                rd: Reg::A0,
                imm: 1,
            },
            Inst::Nop,
            Inst::Branch {
                op: CmpOp::Eq,
                rs1: Reg::A0,
                rs2: Operand::Imm(0),
                target: 0,
            },
            Inst::Sys {
                call: SysCall::Halt,
            },
        ]);
        let block = decode_block(&p, F0, 0, &hb_cfg()).uops;
        assert_eq!(block.len(), 3);
        assert!(matches!(
            block[2],
            Uop::BranchRI {
                target: 0,
                fall: 3,
                ..
            }
        ));
        let tail = decode_block(&p, F0, 3, &hb_cfg()).uops;
        assert_eq!(&*tail, &[Uop::Step { idx: 3 }]);
    }

    #[test]
    fn superblocks_follow_forward_jumps_but_not_backedges() {
        let p = program_of(vec![
            // 0: jump over a gap to 2
            Inst::Jump { target: 2 },
            Inst::Nop,
            // 2: body, then backedge to 2 (a loop head)
            Inst::Li {
                rd: Reg::A0,
                imm: 1,
            },
            Inst::Jump { target: 2 },
        ]);
        let block = decode_block(&p, F0, 0, &hb_cfg()).uops;
        // jmp (followed) + li + backedge jump terminator
        assert_eq!(
            &*block,
            &[
                Uop::FollowedJump,
                Uop::Li {
                    rd: Reg::A0,
                    imm: 1
                },
                Uop::Jump { target: 2 },
            ]
        );
    }

    #[test]
    fn superblock_cap_cuts_with_a_fall_continuation() {
        let mut insts = vec![Inst::Nop; FOLLOW_CAP + 8];
        let n = insts.len();
        insts[n - 1] = Inst::Ret;
        let p = program_of(insts);
        let block = decode_block(&p, F0, 0, &hb_cfg()).uops;
        assert_eq!(block.len(), FOLLOW_CAP);
        assert!(matches!(
            block[FOLLOW_CAP - 1],
            Uop::Fall { target } if target == FOLLOW_CAP as u32 - 1
        ));
    }

    #[test]
    fn straight_line_leaf_calls_are_inlined() {
        let leaf = Function {
            name: "leaf".into(),
            insts: vec![
                Inst::Li {
                    rd: Reg::A0,
                    imm: 42,
                },
                Inst::Ret,
            ],
            frame_size: 0,
            num_args: 0,
        };
        let main = Function {
            name: "main".into(),
            insts: vec![
                Inst::Call { func: FuncId(1) },
                Inst::Sys {
                    call: SysCall::Halt,
                },
            ],
            frame_size: 0,
            num_args: 0,
        };
        let p = Program::with_entry(vec![main, leaf]);
        let block = decode_block(&p, F0, 0, &hb_cfg());
        assert_eq!(
            &*block.uops,
            &[
                Uop::InlineCall {
                    func: FuncId(1),
                    ret: 1
                },
                Uop::Li {
                    rd: Reg::A0,
                    imm: 42
                },
                Uop::InlineRet,
                Uop::Step { idx: 1 },
            ]
        );
        // The spans record both the caller's hull and the whole inlined
        // callee body, so range invalidation can find the embedded copy.
        assert_eq!(
            &*block.spans,
            &[
                CodeSpan {
                    func: F0,
                    lo: 0,
                    hi: 2
                },
                CodeSpan {
                    func: FuncId(1),
                    lo: 0,
                    hi: 2
                },
            ]
        );
    }

    #[test]
    fn branchy_callees_are_not_inlined() {
        let callee = Function {
            name: "callee".into(),
            insts: vec![
                Inst::Branch {
                    op: CmpOp::Eq,
                    rs1: Reg::A0,
                    rs2: Operand::Imm(0),
                    target: 0,
                },
                Inst::Ret,
            ],
            frame_size: 0,
            num_args: 0,
        };
        let main = Function {
            name: "main".into(),
            insts: vec![
                Inst::Call { func: FuncId(1) },
                Inst::Sys {
                    call: SysCall::Halt,
                },
            ],
            frame_size: 0,
            num_args: 0,
        };
        let p = Program::with_entry(vec![main, callee]);
        let block = decode_block(&p, F0, 0, &hb_cfg());
        assert_eq!(
            &*block.uops,
            &[Uop::Call {
                func: FuncId(1),
                ret: 1
            }]
        );
        assert_eq!(
            &*block.spans,
            &[CodeSpan {
                func: F0,
                lo: 0,
                hi: 1
            }],
            "a non-inlined call covers only the call site"
        );
    }
}
