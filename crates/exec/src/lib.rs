//! `hardbound-exec` — the pre-decoded basic-block execution engine and the
//! parallel corpus driver.
//!
//! The interpreter in `hardbound-core` re-decodes and re-dispatches every
//! dynamic µop, re-deriving per-step facts that are static under a fixed
//! [`MachineConfig`](hardbound_core::MachineConfig): operand shapes,
//! whether the HardBound extension is active, which check µops a memory
//! operation needs. This crate resolves all of that once per *basic block*
//! — mirroring the paper's decode-time µop-insertion pipeline (§4.4) — and
//! then executes cached blocks in a tight dispatch loop:
//!
//! 1. [`uop`] pre-decodes instructions into configuration-resolved
//!    micro-operations; with `HB_OPT` set, the static bounds-check
//!    optimizer ([`ir`] + [`opt`]) then proves checks redundant at decode
//!    time and deletes, hoists, or coalesces them,
//! 2. [`block`] caches decoded blocks in a [`SharedBlockCache`] keyed by
//!    `(`[`ProgramId`]`, entry PC)` — one segmented-LRU cache serving any
//!    number of machines and programs, with eviction and program-scoped
//!    range-precise invalidation,
//! 3. [`engine`] dispatches blocks against the machine state through the
//!    narrow [`ExecState`](hardbound_core::ExecState) interface — owning a
//!    private cache or borrowing a long-lived shared one — falling back to
//!    [`Machine::step`](hardbound_core::Machine::step) for indirect calls,
//!    environment calls and fuel-limited tails,
//! 4. [`batch`] fans independent simulations (the 288-pair violation
//!    corpus, the 9 Olden ports × 3 encodings) across threads with a
//!    lock-free claimed-by-atomic-index scheduler and deterministic,
//!    input-ordered results, and
//! 5. [`service`] turns the one-shot simulator into a long-lived corpus
//!    backend: per-worker shared decode-cache shards plus a
//!    [`ResultStore`](service::ResultStore) keyed by program hash, so a
//!    warm corpus re-run replays identical cells instead of simulating
//!    them and incremental re-runs execute only invalidated keys.
//!
//! The engine is observationally identical to the interpreter — same
//! output, same traps at the same program counters, same
//! [`ExecStats`](hardbound_core::ExecStats) to the last counter — which the
//! engine-vs-interpreter differential suite (`tests/engine_differential.rs`
//! at the workspace root) enforces across every safety mode and pointer
//! encoding.
//!
//! ```
//! use hardbound_core::MachineConfig;
//! use hardbound_isa::{FunctionBuilder, Program, Reg};
//!
//! let mut f = FunctionBuilder::new("main", 0);
//! f.li(Reg::A0, 0);
//! f.halt();
//! let program = Program::with_entry(vec![f.finish()]);
//! let out = hardbound_exec::run_program(program, MachineConfig::default());
//! assert!(out.is_success());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod block;
pub mod engine;
pub mod ir;
pub mod opt;
pub mod service;
mod slru;
pub mod uop;

pub use block::{Block, BlockCacheStats, Fnv64, ProgramId, SharedBlockCache};
pub use engine::{run_program, Engine, EngineStats};
pub use opt::{optimize, OptConfig, OptStats};
pub use service::{
    config_fingerprint, CorpusService, Job, ResultStore, ResultStoreStats, ServiceStats, StoreKey,
};
pub use uop::{decode_block, decode_inst, Uop};
