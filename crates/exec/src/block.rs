//! The decoded-block cache.
//!
//! Blocks are keyed by entry point `(function, instruction index)`. The
//! index is a dense per-function table rather than a hash map — a lookup on
//! the block-transition path is two array reads. Decoded blocks may overlap
//! (jumping into the middle of a previously decoded run simply decodes a
//! new block starting there); this keeps decode single-pass with no leader
//! analysis, exactly like a hardware µop trace cache.

use hardbound_isa::{FuncId, Program};

use crate::uop::Uop;

/// A decoded basic block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Owning function.
    pub func: FuncId,
    /// Entry instruction index within the function.
    pub entry: u32,
    /// Pre-decoded µops; one per instruction, terminator last.
    pub uops: Box<[Uop]>,
}

/// Counters describing the cache's behaviour over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Lookups that found a resident decoded block.
    pub hits: u64,
    /// Blocks decoded (== lookup misses).
    pub decoded: u64,
    /// Blocks discarded by a capacity flush.
    pub evicted: u64,
    /// Blocks discarded by explicit invalidation.
    pub invalidated: u64,
}

impl BlockCacheStats {
    /// Lookup hit ratio in `[0, 1]`; `0` with no lookups.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.decoded;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Decoded blocks indexed by entry PC, with bounded capacity.
#[derive(Debug)]
pub struct BlockCache {
    /// `index[func][pc]` = block id + 1; `0` = not decoded.
    index: Vec<Vec<u32>>,
    blocks: Vec<Block>,
    capacity: usize,
    stats: BlockCacheStats,
}

impl BlockCache {
    /// Default capacity in blocks; far beyond any single program image, so
    /// capacity flushes only occur when a caller asks for a small cache.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates an empty cache shaped for `program`.
    #[must_use]
    pub fn new(program: &Program, capacity: usize) -> BlockCache {
        assert!(capacity > 0, "block cache needs room for at least 1 block");
        BlockCache {
            index: program
                .functions
                .iter()
                .map(|f| vec![0; f.insts.len()])
                .collect(),
            blocks: Vec::new(),
            capacity,
            stats: BlockCacheStats::default(),
        }
    }

    /// Id of the resident block decoded at `(func, pc)`, if any. Counts a
    /// hit. Ids are only stable until the next insert or invalidation —
    /// resolve them with [`BlockCache::block`] immediately.
    #[inline]
    pub fn lookup(&mut self, func: FuncId, pc: u32) -> Option<usize> {
        let id = self.index[func.0 as usize][pc as usize];
        if id == 0 {
            return None;
        }
        self.stats.hits += 1;
        Some(id as usize - 1)
    }

    /// Inserts a freshly decoded block and returns its id. Counts a
    /// decode; flushes everything first when at capacity.
    pub fn insert(&mut self, func: FuncId, entry: u32, uops: Box<[Uop]>) -> usize {
        if self.blocks.len() >= self.capacity {
            self.stats.evicted += self.blocks.len() as u64;
            self.flush();
        }
        self.stats.decoded += 1;
        self.blocks.push(Block { func, entry, uops });
        let id = self.blocks.len() as u32; // id + 1 encoding
        self.index[func.0 as usize][entry as usize] = id;
        id as usize - 1
    }

    /// The block for an id returned by [`BlockCache::lookup`] /
    /// [`BlockCache::insert`].
    #[inline]
    #[must_use]
    pub fn block(&self, id: usize) -> &Block {
        &self.blocks[id]
    }

    /// Drops every decoded block containing `func`'s code (e.g. after
    /// patching a function image), counting them as invalidated. That
    /// includes blocks of *other* functions that inlined `func` as a
    /// straight-line leaf callee ([`Uop::InlineCall`]) — their µop arrays
    /// embed `func`'s decoded body.
    pub fn invalidate_function(&mut self, func: FuncId) {
        let before = self.blocks.len();
        self.blocks.retain(|b| {
            b.func != func
                && !b
                    .uops
                    .iter()
                    .any(|u| matches!(u, Uop::InlineCall { func: f, .. } if *f == func))
        });
        self.stats.invalidated += (before - self.blocks.len()) as u64;
        self.rebuild_index();
    }

    /// Drops every decoded block, counting them as invalidated.
    pub fn invalidate_all(&mut self) {
        self.stats.invalidated += self.blocks.len() as u64;
        self.flush();
    }

    fn flush(&mut self) {
        self.blocks.clear();
        for per_fn in &mut self.index {
            per_fn.fill(0);
        }
    }

    fn rebuild_index(&mut self) {
        for per_fn in &mut self.index {
            per_fn.fill(0);
        }
        for (i, b) in self.blocks.iter().enumerate() {
            self.index[b.func.0 as usize][b.entry as usize] = i as u32 + 1;
        }
    }

    /// Number of resident decoded blocks.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.blocks.len()
    }

    /// Accumulated cache counters.
    #[must_use]
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_isa::{FunctionBuilder, Reg};

    fn two_function_program() -> Program {
        let mut a = FunctionBuilder::new("a", 0);
        a.li(Reg::A0, 1);
        a.halt();
        let mut b = FunctionBuilder::new("b", 0);
        b.li(Reg::A0, 2);
        b.ret();
        Program::with_entry(vec![a.finish(), b.finish()])
    }

    fn uops() -> Box<[Uop]> {
        vec![Uop::Nop, Uop::Ret].into_boxed_slice()
    }

    #[test]
    fn insert_then_lookup_hits() {
        let p = two_function_program();
        let mut c = BlockCache::new(&p, 8);
        assert!(c.lookup(FuncId(0), 0).is_none());
        let id = c.insert(FuncId(0), 0, uops());
        assert_eq!(c.lookup(FuncId(0), 0), Some(id));
        assert_eq!(c.block(id).entry, 0);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().decoded, 1);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_flush_counts_evictions() {
        let p = two_function_program();
        let mut c = BlockCache::new(&p, 1);
        c.insert(FuncId(0), 0, uops());
        c.insert(FuncId(0), 1, uops());
        assert_eq!(c.stats().evicted, 1);
        assert_eq!(c.resident(), 1);
        assert!(c.lookup(FuncId(0), 0).is_none(), "flushed block is gone");
        assert!(c.lookup(FuncId(0), 1).is_some());
    }

    #[test]
    fn function_invalidation_is_selective() {
        let p = two_function_program();
        let mut c = BlockCache::new(&p, 8);
        c.insert(FuncId(0), 0, uops());
        c.insert(FuncId(1), 0, uops());
        c.invalidate_function(FuncId(0));
        assert_eq!(c.stats().invalidated, 1);
        assert!(c.lookup(FuncId(0), 0).is_none());
        assert!(c.lookup(FuncId(1), 0).is_some());
        c.invalidate_all();
        assert_eq!(c.stats().invalidated, 2);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn invalidation_covers_inlined_leaf_bodies() {
        let p = two_function_program();
        let mut c = BlockCache::new(&p, 8);
        // A block of fn#0 whose superblock inlined fn#1's body.
        c.insert(
            FuncId(0),
            0,
            vec![
                Uop::InlineCall {
                    func: FuncId(1),
                    ret: 1,
                },
                Uop::Nop,
                Uop::InlineRet,
                Uop::Ret,
            ]
            .into_boxed_slice(),
        );
        c.insert(FuncId(0), 1, uops());
        c.invalidate_function(FuncId(1));
        assert_eq!(
            c.stats().invalidated,
            1,
            "the inlining block embeds fn#1's code and must go"
        );
        assert!(c.lookup(FuncId(0), 0).is_none());
        assert!(c.lookup(FuncId(0), 1).is_some(), "unrelated blocks survive");
    }
}
